"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy (non-PEP 517) editable installs — ``pip install -e .
--no-use-pep517`` — work in offline environments where the ``wheel`` package
is unavailable.
"""

from setuptools import setup

setup()
