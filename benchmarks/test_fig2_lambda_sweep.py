"""Figure 2 (Experiment 1): impact of the hyperparameter λ.

The paper compares milp / bcd / dp on the prefix estimation, similarity and
overall errors (absolute scale) and their running times as λ varies, for a
G = 6 synthetic problem.  Because the exact MILP here is solved by a pure-
Python branch-and-bound (instead of Gurobi), the instance is subsampled to a
few dozen stored elements — small enough for the MILP to certify optimality,
large enough for the bcd-vs-milp gap to be visible.

Expected shape (paper Figure 2): milp attains the smallest overall error,
bcd is close behind, dp attains the smallest estimation error regardless of
λ but a worse overall error for small λ; milp is orders of magnitude slower.
"""

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_lambda_sweep


def test_fig2_lambda_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_lambda_sweep(
            lambdas=(0.0, 0.25, 0.5, 0.75, 1.0),
            solvers=("bcd", "dp", "milp"),
            num_groups=6,
            fraction_seen=0.5,
            num_buckets=3,
            prefix_length=300,
            max_stored_elements=15,
            num_repetitions=2,
            milp_options={"time_limit": 15.0, "node_limit": 500},
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig2_lambda_sweep", result.render())

    overall = result.metrics["prefix_overall_error"]
    estimation = result.metrics["prefix_estimation_error"]
    elapsed = result.metrics["elapsed_time"]

    lambdas = (0.0, 0.25, 0.5, 0.75, 1.0)
    for index, lam in enumerate(lambdas):
        milp_overall = overall["milp"][index].mean
        bcd_overall = overall["bcd"][index].mean
        dp_overall = overall["dp"][index].mean
        # milp warm-starts from bcd and only ever improves on it.
        assert milp_overall <= bcd_overall + 1e-6
        if lam < 1.0:
            # dp ignores the similarity term, so away from lambda=1 its overall
            # error is worse than the solvers that optimize the full objective.
            assert milp_overall <= dp_overall + 1e-6
        # dp optimizes only the estimation error, so it is never beaten on it.
        assert estimation["dp"][index].mean <= estimation["bcd"][index].mean + 1e-6
        assert estimation["dp"][index].mean <= estimation["milp"][index].mean + 1e-6

    # dp's overall error at lambda=0 is dominated by the similarity term it
    # never optimized (the paper's key observation).
    assert overall["dp"][0].mean >= overall["milp"][0].mean
    # milp pays for exactness with runtime; dp stays sub-second.
    mean_milp_time = sum(p.mean for p in elapsed["milp"]) / len(elapsed["milp"])
    mean_bcd_time = sum(p.mean for p in elapsed["bcd"]) / len(elapsed["bcd"])
    mean_dp_time = sum(p.mean for p in elapsed["dp"]) / len(elapsed["dp"])
    assert mean_milp_time > mean_bcd_time
    assert mean_dp_time < 1.0
