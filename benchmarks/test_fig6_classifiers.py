"""Figure 6 (Experiment 5): comparison between classification methods.

With g0 = 0.33 and λ = 0.5, the paper compares logistic regression, CART and
random forest as the classifier routing unseen elements to buckets, and finds
that there is merit in non-linear classifiers on the group-structured
synthetic data.  The errors are measured on the elements that appear within
10·|S0| arrivals after the prefix.
"""

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_classifier_comparison


def test_fig6_classifier_comparison(benchmark):
    group_range = (4, 6, 8)
    classifiers = ("logreg", "cart", "rf")
    result = benchmark.pedantic(
        lambda: run_classifier_comparison(
            group_range=group_range,
            classifiers=classifiers,
            fraction_seen=0.33,
            lam=0.5,
            num_buckets=10,
            stream_multiplier=10,
            num_repetitions=2,
            classifier_options={
                "logreg": {"max_iter": 200},
                "rf": {"n_estimators": 20, "max_depth": 12},
            },
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig6_classifiers", result.render())

    overall = result.metrics["unseen_overall_error"]
    elapsed = result.metrics["elapsed_time"]

    # Every classifier produces finite, positive errors at every size.
    for name in classifiers:
        assert all(point.mean >= 0 for point in overall[name])

    # The paper's takeaway: non-linear classifiers (cart / rf) provide value —
    # at the largest problem size at least one of them beats logreg on the
    # overall unseen error.
    largest = len(group_range) - 1
    nonlinear_best = min(overall["cart"][largest].mean, overall["rf"][largest].mean)
    assert nonlinear_best <= overall["logreg"][largest].mean * 1.05 + 1e-6

    # Training-time ordering: the ensemble is the most expensive model.
    assert elapsed["rf"][largest].mean >= elapsed["cart"][largest].mean
