"""Resilience gates: WAL ingest overhead and single-worker recovery time.

Two costs the self-healing machinery is allowed to charge:

1. **WAL overhead** — end-to-end ingest throughput with the write-ahead
   log on must stay within 10% of WAL-off throughput.  The WAL append is
   one buffered write + flush per acked batch on the ack path; if it ever
   grows a sync or a copy it does not need, this gate catches it.
2. **Recovery time** — after SIGKILLing one shard worker of a 4-shard
   service mid-stream, the supervisor must detect, restart, restore, and
   WAL-replay the shard in at most 5 seconds (wall clock from kill to the
   service reporting healthy).

Results land in ``benchmarks/results/BENCH_resilience.json``.

Run explicitly (benchmarks are opt-in):
``PYTHONPATH=src pytest benchmarks/test_resilience.py -s``
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
import uuid
from pathlib import Path

import numpy as np

from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.sketches import CountMinSketch
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

TOTAL_BUCKETS = 1 << 16
DEPTH = 2
SEED = 31
NUM_SHARDS = 4
NUM_CLIENTS = 2
STREAM_LENGTH = 800_000  # total across clients, before scaling
ZIPF_SUPPORT = 50_000
CLIENT_BATCH = 32_768

#: Gate: WAL-on ingest must retain at least this fraction of WAL-off rate.
WAL_OVERHEAD_GATE = 0.90
#: Gate: one dead shard worker must be healthy again within this budget.
RECOVERY_SECONDS_GATE = 5.0


def _spec():
    return {
        "kind": "sharded",
        "inner": {
            "kind": "count_min",
            "total_buckets": TOTAL_BUCKETS,
            "depth": DEPTH,
            "seed": SEED,
        },
        "num_shards": NUM_SHARDS,
        "mode": "key-partition",
        "executor": "process",
        "transport": "shm",
    }


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:8]}.sock")


def _streams(total_length):
    per_client = total_length // NUM_CLIENTS
    rng = np.random.default_rng(23)
    return [
        ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=rng)
        .sample(per_client)
        .astype(np.int64)
        for _ in range(NUM_CLIENTS)
    ]


def _writer(sock, stream, results, index):
    acked = 0
    with StreamingClient.connect(unix_path=sock) as client:
        for start in range(0, len(stream), CLIENT_BATCH):
            acked += client.ingest(stream[start : start + CLIENT_BATCH])
    results[index] = acked


def _ingest_rate(streams, wal_dir=None, tmp_dir=None):
    sock = _socket_path()
    kwargs = {}
    if wal_dir is not None:
        kwargs["wal_dir"] = wal_dir
        kwargs["snapshot_path"] = os.path.join(tmp_dir, "bench.snap")
    with ServiceThread(StreamingService(_spec(), unix_path=sock, **kwargs)):
        acked = [0] * NUM_CLIENTS
        writers = [
            threading.Thread(target=_writer, args=(sock, stream, acked, index))
            for index, stream in enumerate(streams)
        ]
        start = time.perf_counter()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        with StreamingClient.connect(unix_path=sock) as client:
            client.flush()
        elapsed = time.perf_counter() - start
    assert sum(acked) == sum(len(stream) for stream in streams)
    return sum(acked) / elapsed


def test_resilience_gates(tmp_path):
    total_length = max(100_000, int(STREAM_LENGTH * benchmark_scale()))
    streams = _streams(total_length)

    # --- 1. WAL ingest overhead -------------------------------------
    # Warm-up run first: the initial service pays one-time costs (worker
    # spawn, import, page faults) that would otherwise be billed to
    # whichever variant runs first.  Then alternate off/on runs and take
    # the best of each — machine-level noise (thermal drift, CI neighbors)
    # swings individual runs far more than the WAL does, and best-of
    # compares the two variants at their common ceiling.
    _ingest_rate([stream[: CLIENT_BATCH * 2] for stream in streams])
    rates_off, rates_on = [], []
    for attempt in range(2):
        rates_off.append(_ingest_rate(streams))
        rates_on.append(
            _ingest_rate(
                streams,
                wal_dir=str(tmp_path / f"wal-bench-{attempt}"),
                tmp_dir=str(tmp_path),
            )
        )
    rate_off = max(rates_off)
    rate_on = max(rates_on)
    retained = rate_on / rate_off

    # --- 2. single-worker recovery at 4 shards ----------------------
    sock = _socket_path()
    service = StreamingService(
        _spec(),
        unix_path=sock,
        snapshot_path=str(tmp_path / "recovery.snap"),
        wal_dir=str(tmp_path / "wal-recovery"),
    )
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock) as client:
            for stream in streams:
                for start in range(0, len(stream), CLIENT_BATCH):
                    client.ingest(stream[start : start + CLIENT_BATCH])
            client.flush()
            victim = service.session.estimator._worker_pool._workers[1].process
            killed_at = time.perf_counter()
            os.kill(victim.pid, signal.SIGKILL)
            recovery_seconds = None
            while time.perf_counter() - killed_at < 60.0:
                stats = client.stats()
                if not stats.get("degraded") and stats["worker_restarts"] >= 1:
                    recovery_seconds = time.perf_counter() - killed_at
                    break
                time.sleep(0.02)
            assert recovery_seconds is not None, "shard never recovered"
            # Recovered exactly: drained estimates match a serial sketch.
            queries = np.arange(256, dtype=np.int64)
            client.flush()
            drained = client.estimate(queries)
    reference = CountMinSketch.from_total_buckets(
        TOTAL_BUCKETS, depth=DEPTH, seed=SEED
    )
    for stream in streams:
        reference.update_batch(stream)
    assert (drained == reference.estimate_batch(queries)).all()

    cores = os.cpu_count() or 1
    gate_enforced = cores >= 2
    record = {
        "stream_length": total_length,
        "num_shards": NUM_SHARDS,
        "client_batch": CLIENT_BATCH,
        "ingest_elements_per_sec_wal_off": round(rate_off),
        "ingest_elements_per_sec_wal_on": round(rate_on),
        "wal_throughput_retained": round(retained, 4),
        "wal_overhead_percent": round((1.0 - retained) * 100.0, 2),
        "recovery_seconds": round(recovery_seconds, 3),
        "cpu_cores": cores,
        "gates": {
            "wal_overhead": f"retained >= {WAL_OVERHEAD_GATE} of WAL-off rate",
            "recovery": f"<= {RECOVERY_SECONDS_GATE} s, 1 worker of "
            f"{NUM_SHARDS} shards",
        },
        "gate_enforced": gate_enforced,
        "recovered_bit_identical_to_serial": True,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_resilience.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        "resilience gates",
        f"  ingest rate WAL off : {rate_off:>12,.0f} elements/s",
        f"  ingest rate WAL on  : {rate_on:>12,.0f} elements/s"
        f"  ({(1.0 - retained) * 100.0:.1f}% overhead)",
        f"  recovery (1/{NUM_SHARDS} workers SIGKILL): "
        f"{recovery_seconds:.3f} s",
    ]
    save_result("resilience", "\n".join(lines))

    if gate_enforced:
        assert retained >= WAL_OVERHEAD_GATE, (
            f"WAL ingest overhead too high: retained {retained:.3f} "
            f"of WAL-off throughput (gate {WAL_OVERHEAD_GATE})"
        )
    assert recovery_seconds <= RECOVERY_SECONDS_GATE, (
        f"recovery took {recovery_seconds:.3f}s "
        f"(gate {RECOVERY_SECONDS_GATE}s)"
    )
