"""Figure 7: estimation error as a function of the estimator's size.

The paper streams 90 days of AOL queries and reports, after days 30 and 70,
the average (per element) absolute error and the expected magnitude of the
absolute error for opt-hash, the Learned CMS with an ideal heavy-hitter
oracle, and the Count-Min Sketch, across memory budgets from 1.2 KB to
120 KB.  This benchmark replays the same protocol on the scaled-down query
log (16 days, checkpoints at days 5 and 12, budgets 0.6-9.6 KB).

Expected shape: opt-hash < heavy-hitter ≤ count-min on both metrics, with the
largest gaps at the smallest memory budgets, and errors decreasing as memory
grows.
"""

from conftest import save_result
from repro.evaluation.querylog_experiments import run_error_vs_size

SIZES_KB = (0.6, 1.2, 2.4, 4.8, 9.6)
CHECKPOINTS = (5, 12)


def test_fig7_error_vs_size(benchmark, query_log_dataset):
    result = benchmark.pedantic(
        lambda: run_error_vs_size(
            query_log_dataset,
            sizes_kb=SIZES_KB,
            checkpoint_days=CHECKPOINTS,
            methods=("count-min", "heavy-hitter", "opt-hash"),
            count_min_depths=(1, 2, 4),
            heavy_hitter_depths=(1, 2),
            heavy_hitter_buckets=(10, 100, 1000),
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig7_error_vs_size", result.render())

    for day in CHECKPOINTS:
        average = result.metrics[f"average_error_day_{day}"]
        expected = result.metrics[f"expected_error_day_{day}"]
        for index in range(len(SIZES_KB)):
            # The headline result: opt-hash beats both baselines on the
            # average per-element error at every memory budget.
            assert average["opt-hash"][index].mean < average["heavy-hitter"][index].mean
            assert average["opt-hash"][index].mean < average["count-min"][index].mean
            # The learning-augmented baseline beats the purely random sketch.
            assert (
                average["heavy-hitter"][index].mean
                <= average["count-min"][index].mean + 1e-9
            )
        # At the smallest budget opt-hash also wins on the expected magnitude
        # of error, and by a wide margin on the average error (the paper
        # reports 1-2 orders of magnitude; we require at least 3x at this scale).
        assert expected["opt-hash"][0].mean < expected["heavy-hitter"][0].mean
        assert average["opt-hash"][0].mean * 3 < average["count-min"][0].mean
        # More memory helps the sketches: errors shrink from the smallest to
        # the largest budget.
        assert average["count-min"][-1].mean < average["count-min"][0].mean
        assert average["heavy-hitter"][-1].mean < average["heavy-hitter"][0].mean
