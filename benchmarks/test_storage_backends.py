"""Storage-backend gates: backend bit-identity and the shm-transport speedup.

Two acceptance properties of the PR-4 storage subsystem:

1. **Bit identity** — dense, shm and mmap tables (and both sharded process
   transports on top of them) produce byte-for-byte identical counters and
   estimates on the same stream.  Always asserted.
2. **Transport speedup** — 4-shard process-mode ingestion through the shm
   transport (persistent workers scattering into shared tables, zero-copy
   return leg) must be >= 2x the serialization transport (full table
   serialize/deserialize/merge per batch) on the same stream.  The wall
   clock comparison needs real parallel hardware, so on machines with fewer
   than 4 cores the numbers are recorded but the gate is skipped (CI
   runners provide 4 vCPUs).

Results land in ``benchmarks/results/BENCH_backend.json``.

Run explicitly (benchmarks are opt-in):
``PYTHONPATH=src pytest benchmarks/test_storage_backends.py -s``
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import replay
from repro.core.sharding import ShardedEstimator
from repro.sketches import CountMinSketch
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

NUM_SHARDS = 4
STREAM_LENGTH = 4_000_000
ZIPF_SUPPORT = 100_000
#: Big table on purpose: the serialization transport's per-batch cost is the
#: table round-trip, so a production-sized table is exactly the regime the
#: shm transport exists for (2^20 int64 counters = 8 MB per shard).
TOTAL_BUCKETS = 1 << 20
DEPTH = 2
SEED = 17
#: Large sub-batches amortize submit/pickle overhead for both transports.
BATCH_SIZE = 1 << 20

SPEC = {
    "kind": "count_min",
    "total_buckets": TOTAL_BUCKETS,
    "depth": DEPTH,
    "seed": SEED,
}


def _zipf_stream(length: int) -> np.ndarray:
    sampler = ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=np.random.default_rng(13))
    return sampler.sample(length).astype(np.int64)


def test_backends_bit_identical_end_to_end(tmp_path):
    """dense == shm == mmap, single-sketch and under both shard transports."""
    keys = _zipf_stream(200_000)
    queries = np.unique(keys)[:5_000]

    dense = CountMinSketch.from_total_buckets(8192, depth=2, seed=3)
    dense.update_batch(keys)
    reference = dense.estimate_batch(queries)

    shm = CountMinSketch.from_total_buckets(8192, depth=2, seed=3, storage="shm")
    shm.update_batch(keys)
    mmap = CountMinSketch.from_total_buckets(
        8192, depth=2, seed=3, storage="mmap", storage_path=str(tmp_path / "t.bin")
    )
    mmap.update_batch(keys)
    try:
        assert (shm.counters() == dense.counters()).all()
        assert (mmap.counters() == dense.counters()).all()
        assert (shm.estimate_batch(queries) == reference).all()
        assert (mmap.estimate_batch(queries) == reference).all()
    finally:
        shm.close()
        mmap.close()

    spec = {"kind": "count_min", "total_buckets": 8192, "depth": 2, "seed": 3}
    for transport in ("serialization", "shm"):
        with ShardedEstimator(
            spec, 2, mode="round-robin", executor="process", transport=transport
        ) as sharded:
            sharded.update_batch(keys)
            assert (sharded.collapse().counters() == dense.counters()).all()
            assert (sharded.estimate_batch(queries) == reference).all()


def _timed_sharded_ingest(keys: np.ndarray, transport: str) -> float:
    """Elements/sec through a 4-shard process-mode ShardedEstimator."""
    with ShardedEstimator(
        SPEC,
        NUM_SHARDS,
        mode="round-robin",
        executor="process",
        transport=transport,
    ) as sharded:
        sharded.warm_up()
        start = time.perf_counter()
        replay(sharded, keys, batch_size=BATCH_SIZE)
        sharded._drain_pending()
        elapsed = time.perf_counter() - start
        merged = sharded.collapse()
    return len(keys) / elapsed, merged


def test_shm_transport_speedup_at_least_2x():
    """Gate: shm transport >= 2x the serialization transport at 4 shards."""
    length = max(400_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)

    single = CountMinSketch.from_total_buckets(TOTAL_BUCKETS, depth=DEPTH, seed=SEED)
    replay(single, keys)

    serialization_rate, serialization_merged = _timed_sharded_ingest(
        keys, "serialization"
    )
    shm_rate, shm_merged = _timed_sharded_ingest(keys, "shm")

    # The speedup must not cost exactness: both transports bit-identical.
    assert (serialization_merged.counters() == single.counters()).all()
    assert (shm_merged.counters() == single.counters()).all()

    speedup = shm_rate / serialization_rate
    cores = os.cpu_count() or 1
    record = {
        "stream_length": length,
        "num_shards": NUM_SHARDS,
        "total_buckets": TOTAL_BUCKETS,
        "depth": DEPTH,
        "mode": "round-robin",
        "executor": "process",
        "cpu_cores": cores,
        "serialization_transport_elements_per_sec": round(serialization_rate),
        "shm_transport_elements_per_sec": round(shm_rate),
        "speedup": round(speedup, 3),
        "gate": ">=2x shm over serialization transport with 4 process shards",
        "gate_enforced": cores >= NUM_SHARDS,
        "backends_bit_identical": True,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_backend.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"Sharded process-mode transports ({NUM_SHARDS} shards, "
        f"{TOTAL_BUCKETS:,}-bucket CMS)",
        f"  stream length            : {length:,} elements",
        f"  serialization transport  : {serialization_rate:>12,.0f} elements/sec",
        f"  shm transport            : {shm_rate:>12,.0f} elements/sec",
        f"  speedup                  : {speedup:>12,.2f}x (gate: >= 2x)",
        f"  merged state             : bit-identical across transports",
    ]
    save_result("storage_backends", "\n".join(lines))
    if cores < NUM_SHARDS:
        pytest.skip(
            f"only {cores} CPU core(s): the transport-speedup gate needs "
            f">= {NUM_SHARDS}; measured {speedup:.2f}x "
            "(recorded in BENCH_backend.json)"
        )
    assert speedup >= 2.0
