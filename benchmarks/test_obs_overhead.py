"""Observability gate: instrumentation must cost ≤5% of ingest throughput.

The metrics registry is threaded through every runtime layer (service →
session → sharded estimator → worker pool), all at batch granularity.  This
gate runs the same sustained socket-ingest workload twice — once with
``instrument=False`` (null metrics) and once with the full registry live —
interleaved over several repeats to ride out machine noise, and asserts the
instrumented rate stays within 5% of the plain one.

Results land in ``benchmarks/results/BENCH_obs.json``.

Run explicitly (benchmarks are opt-in):
``PYTHONPATH=src pytest benchmarks/test_obs_overhead.py -s``
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from pathlib import Path

import numpy as np
import pytest

from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

NUM_CLIENTS = 2
STREAM_LENGTH = 1_000_000  # total across clients, before scaling
ZIPF_SUPPORT = 100_000
CLIENT_BATCH = 65_536
REPEATS = 3
#: The gate: instrumented ingest must retain at least this fraction of the
#: un-instrumented rate (i.e. ≤5% overhead).
MIN_RATE_RATIO = 0.95

SPEC = {
    "kind": "sharded",
    "inner": {"kind": "count_min", "total_buckets": 1 << 18, "depth": 2, "seed": 31},
    "num_shards": 2,
    "mode": "round-robin",
    "executor": "process",
    "transport": "shm",
}


def _writer(sock, stream, results, index):
    acked = 0
    with StreamingClient.connect(unix_path=sock) as client:
        for start in range(0, len(stream), CLIENT_BATCH):
            acked += client.ingest(stream[start : start + CLIENT_BATCH])
    results[index] = acked


def _run_once(streams, instrument: bool) -> float:
    """One full service lifecycle; returns the ingest rate (elements/sec)."""
    sock = os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:8]}.sock")
    with ServiceThread(
        StreamingService(SPEC, unix_path=sock, instrument=instrument)
    ) as service:
        acked = [0] * len(streams)
        writers = [
            threading.Thread(target=_writer, args=(sock, stream, acked, index))
            for index, stream in enumerate(streams)
        ]
        start = time.perf_counter()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        with StreamingClient.connect(unix_path=sock) as client:
            client.flush()
        elapsed = time.perf_counter() - start
        service.stop()
    assert sum(acked) == sum(len(stream) for stream in streams)
    return sum(acked) / elapsed


def test_instrumentation_overhead_gate():
    total_length = max(200_000, int(STREAM_LENGTH * benchmark_scale()))
    per_client = total_length // NUM_CLIENTS
    rng = np.random.default_rng(29)
    streams = [
        ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=rng)
        .sample(per_client)
        .astype(np.int64)
        for _ in range(NUM_CLIENTS)
    ]

    # Interleave plain/instrumented repeats so drift (thermal, noisy
    # neighbors) hits both arms equally; compare best-of to measure the
    # code's cost rather than the machine's mood.
    plain_rates, instrumented_rates = [], []
    for _ in range(REPEATS):
        plain_rates.append(_run_once(streams, instrument=False))
        instrumented_rates.append(_run_once(streams, instrument=True))
    plain = max(plain_rates)
    instrumented = max(instrumented_rates)
    overhead_pct = (1.0 - instrumented / plain) * 100.0

    cores = os.cpu_count() or 1
    record = {
        "workload": "sustained socket ingest, 2 writers, 2 shm shards",
        "stream_length": total_length,
        "client_batch": CLIENT_BATCH,
        "repeats": REPEATS,
        "cpu_cores": cores,
        "plain_elements_per_sec": round(plain),
        "instrumented_elements_per_sec": round(instrumented),
        "overhead_pct": round(overhead_pct, 2),
        "gate": f"instrumented rate >= {MIN_RATE_RATIO:.0%} of plain rate",
        "gate_enforced": cores >= 2,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_obs.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        "Metrics instrumentation overhead (sustained socket ingest)",
        f"  plain (instrument=False) : {plain:>12,.0f} elements/sec",
        f"  instrumented             : {instrumented:>12,.0f} elements/sec",
        f"  overhead                 : {overhead_pct:>11.2f}%  (gate: <= 5%)",
    ]
    save_result("obs_overhead", "\n".join(lines))
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s): the overhead gate needs >= 2; "
            f"measured {overhead_pct:.2f}% (recorded in BENCH_obs.json)"
        )
    assert instrumented >= MIN_RATE_RATIO * plain, (
        f"instrumentation costs {overhead_pct:.2f}% of ingest throughput "
        f"(plain {plain:,.0f} el/s vs instrumented {instrumented:,.0f} el/s)"
    )
