"""Figure 3 (Experiment 2): bcd vs dp in the λ = 1 case.

For λ = 1 the dynamic program is exact, so it lower-bounds bcd's per-element
estimation error at every problem size; the paper observes bcd stays near-
optimal up to G ≈ 10 and then starts to degrade, while dp remains fast.
"""

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_bcd_vs_dp


def test_fig3_bcd_vs_dp(benchmark):
    group_range = (4, 6, 8, 10)
    result = benchmark.pedantic(
        lambda: run_bcd_vs_dp(
            group_range=group_range,
            fraction_seen=0.5,
            num_buckets=10,
            num_repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig3_bcd_vs_dp", result.render())

    estimation = result.metrics["prefix_estimation_error"]
    elapsed = result.metrics["elapsed_time"]
    for index in range(len(group_range)):
        # dp is provably optimal for the lambda=1 estimation error.
        assert estimation["dp"][index].mean <= estimation["bcd"][index].mean + 1e-6
        # bcd remains close to optimal at these problem sizes (within 2x).
        assert estimation["bcd"][index].mean <= 2.0 * estimation["dp"][index].mean + 0.5

    # The per-element estimation error grows with the problem size for both
    # methods (larger groups squeeze more elements into the same 10 buckets).
    assert estimation["dp"][-1].mean > estimation["dp"][0].mean
    # dp stays fast even at the largest size.
    assert elapsed["dp"][-1].mean < 5.0
