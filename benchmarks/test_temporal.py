"""Temporal gate: windowed ingestion must stay within 2x of a plain CMS.

The sliding-window ring defers all merge work to query time (updates
touch only the head pane and set a dirty bit), so batch ingestion through
the window should cost about the same as ingesting into the underlying
sketch directly.  The gate is deliberately loose — windowed batch ingest
must sustain at least 0.5x the plain-CMS rate on the same stream — to
catch an accidental eager-merge (or per-update pane scan) sneaking into
the hot path, not to benchmark the hardware.

Also measured, recorded but not gated: query-side overhead (the merged
cache amortizes the pane merge across queries) and tick cost.  Results
land in ``benchmarks/results/BENCH_temporal.json``.

Run explicitly (benchmarks are opt-in):
``PYTHONPATH=src pytest benchmarks/test_temporal.py -s``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.api import SketchSpec, WindowedSpec, build
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

STREAM_LENGTH = 1_000_000
ZIPF_SUPPORT = 100_000
CHUNK = 8_192
CMS = {"kind": "count_min", "total_buckets": 1 << 16, "depth": 2, "seed": 17}
NUM_PANES = 8
#: Windowed batch ingest must sustain at least this fraction of the plain
#: CMS rate on the identical stream.
GATE_RELATIVE_RATE = 0.5


def _zipf_stream(length: int) -> np.ndarray:
    sampler = ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=np.random.default_rng(17))
    return sampler.sample(length).astype(np.int64)


def _ingest_rate(sketch, keys: np.ndarray) -> float:
    start = time.perf_counter()
    for begin in range(0, len(keys), CHUNK):
        sketch.update_batch(keys[begin : begin + CHUNK])
    return len(keys) / (time.perf_counter() - start)


def test_windowed_ingest_keeps_pace_with_plain_cms():
    length = max(50_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)
    probe = np.unique(keys)[:4_096]

    inner = SketchSpec(CMS["kind"], **{k: v for k, v in CMS.items() if k != "kind"})
    plain = build(inner)
    plain_rate = _ingest_rate(plain, keys)

    windowed = build(WindowedSpec(inner, num_panes=NUM_PANES))
    windowed_rate = _ingest_rate(windowed, keys)

    # query-side: first query pays the pane merge, repeats hit the cache
    start = time.perf_counter()
    windowed.estimate_batch(probe)
    first_query_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(10):
        windowed.estimate_batch(probe)
    cached_query_seconds = (time.perf_counter() - start) / 10

    start = time.perf_counter()
    windowed.tick()
    tick_seconds = time.perf_counter() - start

    relative = windowed_rate / plain_rate
    record = {
        "stream_length": length,
        "num_panes": NUM_PANES,
        "plain_cms_elements_per_sec": round(plain_rate),
        "windowed_elements_per_sec": round(windowed_rate),
        "relative_rate": round(relative, 3),
        "gate": f">= {GATE_RELATIVE_RATE}x plain CMS batch ingest",
        "first_query_seconds": round(first_query_seconds, 6),
        "cached_query_seconds": round(cached_query_seconds, 6),
        "tick_seconds": round(tick_seconds, 6),
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_temporal.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"Windowed ingestion ({NUM_PANES}-pane ring over Count-Min)",
        f"  stream length     : {length:,} elements",
        f"  plain CMS         : {plain_rate:>12,.0f} elements/sec",
        f"  windowed          : {windowed_rate:>12,.0f} elements/sec",
        f"  relative          : {relative:>12,.2f}x (gate: >= {GATE_RELATIVE_RATE}x)",
        f"  first query       : {first_query_seconds * 1e3:>12,.2f} ms (pays the pane merge)",
        f"  cached query      : {cached_query_seconds * 1e3:>12,.2f} ms",
        f"  tick              : {tick_seconds * 1e3:>12,.2f} ms",
    ]
    save_result("temporal_throughput", "\n".join(lines))
    assert relative >= GATE_RELATIVE_RATE
