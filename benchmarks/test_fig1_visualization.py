"""Figure 1: visualization of the learned hash code.

The paper's Figure 1 shows (a) the synthetic element groups, (b) the prefix
frequencies, (c) the learned hash code for seen elements, and (d) the hash
code the classifier predicts for unseen elements.  This benchmark regenerates
the underlying data and reports, per learned bucket, the number of elements
and the dominant element group — the textual equivalent of the scatter plots.
"""

import numpy as np

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_visualization_experiment


def _render(result) -> str:
    lines = ["=== Figure 1: learned hash code for seen and unseen elements ==="]
    lines.append(
        f"seen elements: {len(result.seen_buckets)}, "
        f"unseen elements: {len(result.unseen_buckets)}, "
        f"buckets: {result.num_buckets}"
    )
    header = f"{'bucket':>6}  {'#seen':>6}  {'#unseen':>8}  {'mean prefix freq':>17}  {'dominant group':>15}"
    lines.append(header)
    for bucket in range(result.num_buckets):
        seen_mask = result.seen_buckets == bucket
        unseen_mask = result.unseen_buckets == bucket
        if seen_mask.any():
            mean_freq = result.seen_frequencies[seen_mask].mean()
            groups = result.seen_groups[seen_mask]
            dominant = int(np.bincount(groups).argmax())
        else:
            mean_freq, dominant = 0.0, -1
        lines.append(
            f"{bucket:>6}  {int(seen_mask.sum()):>6}  {int(unseen_mask.sum()):>8}  "
            f"{mean_freq:>17.2f}  {dominant:>15}"
        )
    return "\n".join(lines)


def test_fig1_visualization(benchmark):
    result = benchmark.pedantic(
        lambda: run_visualization_experiment(
            num_groups=10,
            fraction_seen=0.33,
            prefix_length=1000,
            num_buckets=10,
            lam=0.5,
            classifier="cart",
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig1_visualization", _render(result))

    # Every bucket index stays within range and the seen/unseen split covers
    # the whole universe (G=10, G0=2 -> 2^3 + ... + 2^12 elements).
    assert result.seen_buckets.max() < 10
    assert result.unseen_buckets.max() < 10
    universe_size = sum(2 ** (2 + g) for g in range(1, 11))
    assert len(result.seen_buckets) + len(result.unseen_buckets) == universe_size

    # The learned code separates frequency scales: the bucket holding the most
    # frequent elements has a much higher mean prefix frequency than the one
    # holding the least frequent ones (Figure 1c's colour gradient).
    bucket_means = [
        result.seen_frequencies[result.seen_buckets == bucket].mean()
        for bucket in range(10)
        if (result.seen_buckets == bucket).any()
    ]
    assert max(bucket_means) > 3 * min(bucket_means)
