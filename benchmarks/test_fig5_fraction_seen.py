"""Figure 5 (Experiment 4): impact of the fraction of elements seen in the prefix.

The paper varies ``g0`` (the fraction of each group eligible to appear in the
prefix) for G = 10 and reports estimation / similarity errors on the prefix
elements and on unseen elements after 10·|S0| further arrivals, for bcd
(λ = 0.5) and dp (λ = 1).  Seeing more of the universe in the prefix lowers
the estimation error on unseen elements at the cost of a higher similarity
error.
"""

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_fraction_seen


def test_fig5_fraction_seen(benchmark):
    fractions = (0.1, 0.3, 0.5, 0.7, 0.9)
    result = benchmark.pedantic(
        lambda: run_fraction_seen(
            fractions=fractions,
            num_groups=8,
            num_buckets=10,
            stream_multiplier=10,
            classifier="cart",
            num_repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig5_fraction_seen", result.render())

    unseen_estimation = result.metrics["unseen_estimation_error"]
    prefix_similarity = result.metrics["prefix_similarity_error"]

    for solver in ("bcd", "dp"):
        series = unseen_estimation[solver]
        # Observing most of the universe in the prefix yields a lower unseen
        # estimation error than observing almost none of it (Figure 5c).
        assert series[-1].mean <= series[0].mean + 1e-6
        # All error series stay non-negative and finite.
        assert all(point.mean >= 0 for point in series)

    # bcd (lambda=0.5) trades some estimation error for feature-coherent
    # buckets, so its prefix similarity error is at most dp's (which ignores
    # features entirely).
    for index in range(len(fractions)):
        assert (
            prefix_similarity["bcd"][index].mean
            <= prefix_similarity["dp"][index].mean + 1e-6
        )
