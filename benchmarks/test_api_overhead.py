"""Declarative-API overhead gate: specs + Session must be (nearly) free.

The facade's promise is convenience without a tax: building through
``repro.api.build`` and streaming through ``Session.ingest`` must cost no
more than 5% over constructing the sketch directly and driving its raw
``update_batch`` with the same chunking.  The gate times both paths
(spec construction + build + ingest vs. constructor + chunk loop),
best-of-``REPEATS`` to shed scheduler noise, and records the measurements
in ``benchmarks/results/BENCH_api.json``.

Run with::

    PYTHONPATH=src pytest benchmarks/test_api_overhead.py -s
"""

from __future__ import annotations

import json
import time

import numpy as np

import repro.api as api
from repro.sketches import CountMinSketch
from conftest import RESULTS_DIR, benchmark_scale

TOTAL_BUCKETS = 8192
DEPTH = 2
SEED = 1
CHUNK = 65536
REPEATS = 5
MAX_OVERHEAD = 0.05


def _stream_keys() -> np.ndarray:
    n = max(200_000, int(1_000_000 * benchmark_scale()))
    return np.random.default_rng(0).integers(0, 100_000, size=n, dtype=np.int64)


def _time_direct(keys: np.ndarray) -> float:
    start = time.perf_counter()
    sketch = CountMinSketch.from_total_buckets(TOTAL_BUCKETS, depth=DEPTH, seed=SEED)
    for begin in range(0, len(keys), CHUNK):
        sketch.update_batch(keys[begin : begin + CHUNK])
    return time.perf_counter() - start


def _time_session(keys: np.ndarray) -> float:
    start = time.perf_counter()
    spec = api.SketchSpec(
        "count_min", total_buckets=TOTAL_BUCKETS, depth=DEPTH, seed=SEED
    )
    session = api.open(spec)
    session.ingest(keys, batch_size=CHUNK)
    return time.perf_counter() - start


def test_spec_build_and_session_ingest_overhead():
    keys = _stream_keys()
    # Warm both paths once (imports, allocator, branch caches) off the clock.
    _time_direct(keys[:CHUNK])
    _time_session(keys[:CHUNK])

    # Interleave the repeats: timing one path's whole block and then the
    # other's lets slow clock drift (thermal, noisy neighbours on CI boxes)
    # masquerade as API overhead; alternating cancels it, and min-of-N sheds
    # scheduler spikes.
    direct_times, session_times = [], []
    for _ in range(REPEATS):
        direct_times.append(_time_direct(keys))
        session_times.append(_time_session(keys))
    direct = min(direct_times)
    session = min(session_times)
    overhead = (session - direct) / direct

    record = {
        "stream_length": int(len(keys)),
        "chunk_size": CHUNK,
        "repeats": REPEATS,
        "direct_seconds": round(direct, 6),
        "session_seconds": round(session, 6),
        "overhead_fraction": round(overhead, 6),
        "gate_max_overhead": MAX_OVERHEAD,
        "elements_per_second_session": int(len(keys) / session),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_api.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\ndirect update_batch: {direct:.4f}s   spec+Session: {session:.4f}s   "
        f"overhead: {overhead:+.2%}  [saved to {path}]"
    )

    assert overhead <= MAX_OVERHEAD, (
        f"spec build + Session ingest cost {overhead:.2%} over direct "
        f"update_batch (gate: {MAX_OVERHEAD:.0%}); records: {record}"
    )
