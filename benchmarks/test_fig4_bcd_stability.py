"""Figure 4 (Experiment 3): bcd from multiple starting points at λ = 0.5.

The paper's observation is that bcd is robust to its random initialization:
re-running it from several random starting points yields nearly identical
error values (small standard deviations relative to the means).
"""

from conftest import save_result
from repro.evaluation.synthetic_experiments import run_bcd_stability


def test_fig4_bcd_stability(benchmark):
    group_range = (4, 6, 8, 10)
    result = benchmark.pedantic(
        lambda: run_bcd_stability(
            group_range=group_range,
            lam=0.5,
            fraction_seen=0.5,
            num_buckets=10,
            num_starts=5,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig4_bcd_stability", result.render())

    overall = result.metrics["prefix_overall_error"]["bcd"]
    estimation = result.metrics["prefix_estimation_error"]["bcd"]
    for point in overall:
        # Stability: the spread across restarts is small relative to the mean.
        assert point.std <= 0.35 * point.mean + 1e-6
    for point in estimation:
        assert point.std <= 0.5 * point.mean + 0.1
    # Errors remain finite and positive across the sweep.
    assert all(point.mean > 0 for point in overall)
