"""Ingestion throughput: vectorized batch path vs element-at-a-time scalar.

Replays a 10^6-element Zipf stream (the scale of the paper's query-log
experiments) through the sketches and reports elements/sec for the scalar
``update`` loop and the chunked ``update_batch`` path.  The acceptance gate
is the Count-Min comparison: the batch path must ingest at least 10× more
elements per second than the scalar path on the same stream.

Run explicitly (benchmarks are opt-in): ``PYTHONPATH=src pytest benchmarks/test_throughput.py -s``
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import DEFAULT_REPLAY_BATCH_SIZE, replay
from repro.sketches import (
    AmsSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    IdealHeavyHitterOracle,
    LearnedCountMinSketch,
)
from repro.streams.stream import Element
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

STREAM_LENGTH = 1_000_000
ZIPF_SUPPORT = 100_000
#: Scalar ingestion is measured on a prefix this long and reported as a rate;
#: replaying all 10^6 arrivals one Python call at a time would add minutes of
#: runtime without changing the measured elements/sec.
SCALAR_SAMPLE = 50_000


def _zipf_stream(length: int) -> np.ndarray:
    sampler = ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=np.random.default_rng(7))
    return sampler.sample(length).astype(np.int64)


def _scalar_rate(sketch, keys: np.ndarray) -> float:
    start = time.perf_counter()
    for key in keys:
        sketch.update(Element(key=key))
    return len(keys) / (time.perf_counter() - start)


def _batch_rate(sketch, keys: np.ndarray) -> float:
    start = time.perf_counter()
    replay(sketch, keys, batch_size=DEFAULT_REPLAY_BATCH_SIZE)
    return len(keys) / (time.perf_counter() - start)


def test_count_min_batch_speedup_at_least_10x():
    """The acceptance gate: >= 10x elements/sec on a 10^6-element Zipf stream."""
    length = max(100_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)

    scalar_sketch = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    scalar_keys = keys[:SCALAR_SAMPLE]
    scalar_rate = _scalar_rate(scalar_sketch, scalar_keys)

    batch_sketch = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    batch_rate = _batch_rate(batch_sketch, keys)

    # The two paths must agree exactly on the common prefix they both saw.
    reference = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    reference.update_batch(scalar_keys)
    assert (reference.counters() == scalar_sketch.counters()).all()

    speedup = batch_rate / scalar_rate
    lines = [
        "Count-Min ingestion throughput (Zipf stream, depth=2, 8192 buckets)",
        f"  stream length        : {length:,} elements",
        f"  scalar update loop   : {scalar_rate:>12,.0f} elements/sec"
        f" (measured on {len(scalar_keys):,} arrivals)",
        f"  batch update_batch   : {batch_rate:>12,.0f} elements/sec"
        f" (chunks of {DEFAULT_REPLAY_BATCH_SIZE:,})",
        f"  speedup              : {speedup:>12,.0f}x (gate: >= 10x)",
    ]
    save_result("throughput_count_min", "\n".join(lines))
    assert speedup >= 10.0


def test_batch_throughput_across_sketches():
    """Record batch elements/sec for every vectorized sketch (no gate)."""
    length = max(100_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)
    unique, counts = np.unique(keys, return_counts=True)
    frequencies = dict(zip(unique.tolist(), counts.tolist()))

    sketches = {
        "count-min (d=2)": CountMinSketch.from_total_buckets(8192, depth=2, seed=1),
        "count-min conservative (d=2)": CountMinSketch.from_total_buckets(
            8192, depth=2, seed=1, conservative=True
        ),
        "count-sketch (d=3)": CountSketch.from_total_buckets(8192, depth=3, seed=1),
        "learned-cms (ideal oracle)": LearnedCountMinSketch(
            8192,
            num_heavy_buckets=512,
            oracle=IdealHeavyHitterOracle.from_frequencies(frequencies, 512),
            depth=2,
            seed=1,
        ),
        "ams (64 estimators)": AmsSketch(64, 8, seed=1),
        "bloom filter (k=4)": BloomFilter(1 << 20, num_hashes=4, seed=1),
    }
    lines = [f"Batch ingestion throughput on {length:,} Zipf arrivals"]
    for name, sketch in sketches.items():
        ingest = sketch.add_batch if isinstance(sketch, BloomFilter) else None
        start = time.perf_counter()
        if ingest is not None:
            for chunk_start in range(0, length, DEFAULT_REPLAY_BATCH_SIZE):
                ingest(keys[chunk_start : chunk_start + DEFAULT_REPLAY_BATCH_SIZE])
        else:
            replay(sketch, keys)
        rate = length / (time.perf_counter() - start)
        lines.append(f"  {name:<32s}: {rate:>12,.0f} elements/sec")
        assert rate > 0
    save_result("throughput_all_sketches", "\n".join(lines))
