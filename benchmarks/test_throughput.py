"""Ingestion throughput: vectorized batch path vs element-at-a-time scalar.

Replays a 10^6-element Zipf stream (the scale of the paper's query-log
experiments) through the sketches and reports elements/sec for the scalar
``update`` loop and the chunked ``update_batch`` path.  The acceptance gate
is the Count-Min comparison: the batch path must ingest at least 10× more
elements per second than the scalar path on the same stream.

A second gate covers the sharded subsystem: 4 process shards ingesting a
10^7-element Zipf stream must beat single-shard batch ingestion by ≥ 2×
(parallel hashing across cores; the serialization transport only ships the
constant-size blank shard and the keys).  Results land in
``benchmarks/results/BENCH_shard.json``.

Run explicitly (benchmarks are opt-in): ``PYTHONPATH=src pytest benchmarks/test_throughput.py -s``
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import DEFAULT_REPLAY_BATCH_SIZE, replay
from repro.core.sharding import ShardedEstimator
from repro.sketches import (
    AmsSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    IdealHeavyHitterOracle,
    LearnedCountMinSketch,
)
from repro.streams.stream import Element
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

STREAM_LENGTH = 1_000_000
ZIPF_SUPPORT = 100_000
#: Scalar ingestion is measured on a prefix this long and reported as a rate;
#: replaying all 10^6 arrivals one Python call at a time would add minutes of
#: runtime without changing the measured elements/sec.
SCALAR_SAMPLE = 50_000


def _zipf_stream(length: int) -> np.ndarray:
    sampler = ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=np.random.default_rng(7))
    return sampler.sample(length).astype(np.int64)


def _scalar_rate(sketch, keys: np.ndarray) -> float:
    start = time.perf_counter()
    for key in keys:
        sketch.update(Element(key=key))
    return len(keys) / (time.perf_counter() - start)


def _batch_rate(sketch, keys: np.ndarray) -> float:
    start = time.perf_counter()
    replay(sketch, keys, batch_size=DEFAULT_REPLAY_BATCH_SIZE)
    return len(keys) / (time.perf_counter() - start)


def test_count_min_batch_speedup_at_least_10x():
    """The acceptance gate: >= 10x elements/sec on a 10^6-element Zipf stream."""
    length = max(100_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)

    scalar_sketch = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    scalar_keys = keys[:SCALAR_SAMPLE]
    scalar_rate = _scalar_rate(scalar_sketch, scalar_keys)

    batch_sketch = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    batch_rate = _batch_rate(batch_sketch, keys)

    # The two paths must agree exactly on the common prefix they both saw.
    reference = CountMinSketch.from_total_buckets(8192, depth=2, seed=1)
    reference.update_batch(scalar_keys)
    assert (reference.counters() == scalar_sketch.counters()).all()

    speedup = batch_rate / scalar_rate
    lines = [
        "Count-Min ingestion throughput (Zipf stream, depth=2, 8192 buckets)",
        f"  stream length        : {length:,} elements",
        f"  scalar update loop   : {scalar_rate:>12,.0f} elements/sec"
        f" (measured on {len(scalar_keys):,} arrivals)",
        f"  batch update_batch   : {batch_rate:>12,.0f} elements/sec"
        f" (chunks of {DEFAULT_REPLAY_BATCH_SIZE:,})",
        f"  speedup              : {speedup:>12,.0f}x (gate: >= 10x)",
    ]
    save_result("throughput_count_min", "\n".join(lines))
    assert speedup >= 10.0


def test_batch_throughput_across_sketches():
    """Record batch elements/sec for every vectorized sketch (no gate)."""
    length = max(100_000, int(STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)
    unique, counts = np.unique(keys, return_counts=True)
    frequencies = dict(zip(unique.tolist(), counts.tolist()))

    sketches = {
        "count-min (d=2)": CountMinSketch.from_total_buckets(8192, depth=2, seed=1),
        "count-min conservative (d=2)": CountMinSketch.from_total_buckets(
            8192, depth=2, seed=1, conservative=True
        ),
        "count-sketch (d=3)": CountSketch.from_total_buckets(8192, depth=3, seed=1),
        "learned-cms (ideal oracle)": LearnedCountMinSketch(
            8192,
            num_heavy_buckets=512,
            oracle=IdealHeavyHitterOracle.from_frequencies(frequencies, 512),
            depth=2,
            seed=1,
        ),
        "ams (64 estimators)": AmsSketch(64, 8, seed=1),
        "bloom filter (k=4)": BloomFilter(1 << 20, num_hashes=4, seed=1),
    }
    lines = [f"Batch ingestion throughput on {length:,} Zipf arrivals"]
    for name, sketch in sketches.items():
        ingest = sketch.add_batch if isinstance(sketch, BloomFilter) else None
        start = time.perf_counter()
        if ingest is not None:
            for chunk_start in range(0, length, DEFAULT_REPLAY_BATCH_SIZE):
                ingest(keys[chunk_start : chunk_start + DEFAULT_REPLAY_BATCH_SIZE])
        else:
            replay(sketch, keys)
        rate = length / (time.perf_counter() - start)
        lines.append(f"  {name:<32s}: {rate:>12,.0f} elements/sec")
        assert rate > 0
    save_result("throughput_all_sketches", "\n".join(lines))


# ----------------------------------------------------------------------
# sharded ingestion gate
# ----------------------------------------------------------------------
SHARD_STREAM_LENGTH = 10_000_000
NUM_SHARDS = 4
#: The sharded path feeds much larger chunks than the single-sketch replay:
#: each update_batch fans out to the process pool, so fewer/bigger round
#: trips amortize the task submission and key-pickling overhead (workers
#: re-chunk locally to the cache-friendly size; see WORKER_CHUNK_SIZE).
SHARD_BATCH_SIZE = 1 << 21


def test_sharded_ingestion_speedup_at_least_2x():
    """Gate: 4 process shards ingest ≥ 2× faster than a single shard.

    Also asserts the merged shard state is bit-identical to the single
    sketch — the speedup must not come at the cost of exactness.  The
    speedup assertion needs real parallel hardware, so on machines with
    fewer than ``NUM_SHARDS`` cores the numbers are still measured and
    recorded, but the ≥ 2× gate is skipped (CI runners provide 4 vCPUs).
    """
    length = max(500_000, int(SHARD_STREAM_LENGTH * benchmark_scale()))
    keys = _zipf_stream(length)
    factory = lambda: CountMinSketch.from_total_buckets(8192, depth=2, seed=1)

    # The single shard runs at its own best configuration (the default
    # cache-friendly chunk size) so the gate measures a fair baseline.
    single = factory()
    start = time.perf_counter()
    replay(single, keys, batch_size=DEFAULT_REPLAY_BATCH_SIZE)
    single_rate = length / (time.perf_counter() - start)

    # Round-robin block splits: the cheapest partitioning (zero-copy views,
    # no routing pass) and still bit-identical for a linear sketch.  The
    # timer runs through collapse() because process-mode update_batch
    # returns before the workers finish; collapse drains and merges.
    with ShardedEstimator(
        factory, NUM_SHARDS, mode="round-robin", executor="process"
    ) as sharded:
        sharded.warm_up()
        start = time.perf_counter()
        replay(sharded, keys, batch_size=SHARD_BATCH_SIZE)
        merged = sharded.collapse()
        sharded_rate = length / (time.perf_counter() - start)

    assert (merged.counters() == single.counters()).all()

    speedup = sharded_rate / single_rate
    cores = os.cpu_count() or 1
    record = {
        "stream_length": length,
        "num_shards": NUM_SHARDS,
        "mode": "round-robin",
        "executor": "process",
        "cpu_cores": cores,
        "single_shard_elements_per_sec": round(single_rate),
        "sharded_elements_per_sec": round(sharded_rate),
        "speedup": round(speedup, 3),
        "gate": ">=2x with 4 process shards",
        "gate_enforced": cores >= NUM_SHARDS,
        "merged_bit_identical_to_serial": True,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_shard.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"Sharded ingestion ({NUM_SHARDS} process shards, round-robin)",
        f"  stream length        : {length:,} elements",
        f"  single shard         : {single_rate:>12,.0f} elements/sec",
        f"  sharded              : {sharded_rate:>12,.0f} elements/sec",
        f"  speedup              : {speedup:>12,.2f}x (gate: >= 2x)",
        f"  merged state         : bit-identical to serial ingestion",
    ]
    save_result("throughput_sharded", "\n".join(lines))
    if cores < NUM_SHARDS:
        pytest.skip(
            f"only {cores} CPU core(s): parallel speedup gate needs "
            f">= {NUM_SHARDS}; measured {speedup:.2f}x (recorded in BENCH_shard.json)"
        )
    assert speedup >= 2.0


# ----------------------------------------------------------------------
# query-path micro-regressions (PR-4 satellite)
# ----------------------------------------------------------------------
def test_estimate_batch_reuses_cached_index_buffers():
    """`estimate_batch` must not re-materialize its broadcast/scratch arrays.

    Guards the PR-4 micro-optimizations: the `_levels[:, None]` gather index
    is built once at construction, and `_positions` writes into a
    preallocated scratch buffer instead of `np.stack`-allocating per call.
    A regression here silently taxes every query batch.
    """
    from repro.kernels import get_backend

    # The buffers now live on the sketch's KernelPlan (relocated with the
    # NumPy reference kernels in PR 10); the guarantees are unchanged.
    sketch = CountMinSketch.from_total_buckets(8192, depth=3, seed=1, backend="numpy")
    keys = _zipf_stream(50_000)
    sketch.update_batch(keys)
    plan = sketch._plan

    # The cached gather index is a view of the cached levels array.
    levels_col_before = plan.levels_col
    assert levels_col_before.base is plan.levels

    # Repeated same-size queries reuse one per-thread scratch buffer (no
    # per-call np.stack allocation)...
    numpy_backend = get_backend("numpy")
    first = numpy_backend._positions(plan, keys[:4096])
    buffer_after_first = plan._scratch.buffer
    second = numpy_backend._positions(plan, keys[:4096])
    assert plan._scratch.buffer is buffer_after_first
    assert first.base is second.base is buffer_after_first
    # ... and querying does not rebuild the cached index either.
    sketch.estimate_batch(keys[:4096])
    assert plan.levels_col is levels_col_before

    # Correctness is untouched: batch estimates equal the scalar path.
    probe = keys[:256]
    batch = sketch.estimate_batch(probe)
    scalar = np.array([sketch.estimate(Element(key=key)) for key in probe])
    assert (batch == scalar).all()


def test_estimate_batch_faster_than_restack_baseline():
    """Record the measured query throughput of the cached-buffer path."""
    sketch = CountMinSketch.from_total_buckets(65536, depth=4, seed=1)
    keys = _zipf_stream(200_000)
    sketch.update_batch(keys)
    start = time.perf_counter()
    for chunk_start in range(0, len(keys), 8192):
        sketch.estimate_batch(keys[chunk_start : chunk_start + 8192])
    rate = len(keys) / (time.perf_counter() - start)
    save_result(
        "throughput_query_path",
        f"Count-Min estimate_batch (depth=4, 65,536 buckets, cached index "
        f"buffers): {rate:,.0f} queries/sec",
    )
    assert rate > 0
