"""Kernel-backend speedup gate: compiled ingest must beat NumPy by >= 5x.

Measures CMS / CountSketch batch ingest (the service hot path) and the
query paths on every available compiled backend against the NumPy
reference, asserts the ingest gate, and records the per-kernel trajectory
in ``benchmarks/results/BENCH_kernels.json``.  Where no compiler / Numba
is available the gate *skips* (recording why) — it never fails for a
missing toolchain, matching the no-compiled CI leg.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import benchmark_scale, save_result
from repro import kernels
from repro.sketches import CountMinSketch, CountSketch

INGEST_GATE = 5.0


def _zipf_keys(num: int, support: int = 50_000, seed: int = 3) -> np.ndarray:
    from repro.streams.zipf import ZipfSampler

    rng = np.random.default_rng(seed)
    return ZipfSampler(support, rng=rng).sample(num).astype(np.int64)


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(backend: str, keys: np.ndarray, chunk: int = 65_536) -> dict:
    """Ingest/query rates (elements/sec) for both gated sketches."""

    def run(factory, method):
        sketch = factory()
        if method == "query":
            sketch.update_batch(keys)

        def body():
            op = sketch.update_batch if method == "ingest" else sketch.estimate_batch
            for start in range(0, len(keys), chunk):
                op(keys[start : start + chunk])

        return len(keys) / _best_seconds(body)

    def cms():
        return CountMinSketch(width=16_384, depth=4, seed=1, backend=backend)

    def cs():
        return CountSketch(width=16_384, depth=4, seed=1, backend=backend)

    return {
        "cms_ingest": round(run(cms, "ingest")),
        "cms_query": round(run(cms, "query")),
        "cs_ingest": round(run(cs, "ingest")),
        "cs_query": round(run(cs, "query")),
    }


def test_compiled_ingest_speedup_gate():
    compiled = [name for name in kernels.available_backends() if name != "numpy"]
    num_keys = max(200_000, int(2_000_000 * benchmark_scale()))
    keys = _zipf_keys(num_keys)

    record = {
        "workload": f"{num_keys:,} zipf int64 keys, width=16384 depth=4",
        "gate": f">= {INGEST_GATE}x over numpy for cms/cs batch ingest",
        "available_backends": list(kernels.available_backends()),
        "backends": {"numpy": _measure("numpy", keys)},
    }
    numpy_rates = record["backends"]["numpy"]

    speedups = {}
    for backend in compiled:
        rates = _measure(backend, keys)
        record["backends"][backend] = rates
        speedups[backend] = {
            op: round(rates[op] / numpy_rates[op], 2) for op in numpy_rates
        }
    record["speedups_vs_numpy"] = speedups

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_kernels.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    lines = [f"Kernel backends ({record['workload']})"]
    for backend, rates in record["backends"].items():
        lines.append(f"  {backend}:")
        for op, rate in rates.items():
            note = (
                f"  ({speedups[backend][op]:.1f}x numpy)"
                if backend in speedups
                else ""
            )
            lines.append(f"    {op:<11}: {rate:>14,.0f} el/s{note}")
    save_result("kernel_backends", "\n".join(lines))

    if not compiled:
        reasons = {
            name: kernels.unavailable_reason(name)
            for name in kernels.BACKEND_NAMES
            if name != "numpy"
        }
        pytest.skip(f"no compiled kernel backend available: {reasons}")
    for backend in compiled:
        for op in ("cms_ingest", "cs_ingest"):
            assert speedups[backend][op] >= INGEST_GATE, (
                f"{backend} {op} speedup {speedups[backend][op]:.2f}x "
                f"< {INGEST_GATE}x gate (see BENCH_kernels.json)"
            )
