"""Service gate: sustained ingest throughput under concurrent live queries.

The acceptance property of the streaming ingestion service: with four
concurrent writer streams pushing binary key batches through the socket
while a reader continuously issues live ``estimate`` queries, the service
must sustain a healthy end-to-end ingest rate — socket framing, micro-batch
coalescing, shard routing, and shm worker scatters included — and the
drained result must stay bit-identical to a serial reference sketch.

The absolute rate is hardware-bound (the shard workers need real cores),
so on machines with fewer than 2 cores the numbers are recorded but the
rate gate is skipped, mirroring the other transport gates.

Results land in ``benchmarks/results/BENCH_service.json``.

Run explicitly (benchmarks are opt-in):
``PYTHONPATH=src pytest benchmarks/test_service.py -s``
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from pathlib import Path

import numpy as np
import pytest

from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.sketches import CountMinSketch
from repro.streams.zipf import ZipfSampler

from conftest import benchmark_scale, save_result

NUM_CLIENTS = 4
STREAM_LENGTH = 2_000_000  # total across clients, before scaling
ZIPF_SUPPORT = 100_000
TOTAL_BUCKETS = 1 << 18
DEPTH = 2
SEED = 31
CLIENT_BATCH = 65_536
#: Minimum sustained end-to-end ingest rate with live queries running.
#: Conservative on purpose: CI runners vary, and the gate exists to catch
#: order-of-magnitude regressions (e.g. JSON sneaking back into the hot
#: path), not to benchmark the hardware.
GATE_ELEMENTS_PER_SEC = 100_000

SPEC = {
    "kind": "sharded",
    "inner": {
        "kind": "count_min",
        "total_buckets": TOTAL_BUCKETS,
        "depth": DEPTH,
        "seed": SEED,
    },
    "num_shards": 2,
    "mode": "round-robin",
    "executor": "process",
    "transport": "shm",
}


def _writer(sock, stream, results, index):
    acked = 0
    with StreamingClient.connect(unix_path=sock) as client:
        for start in range(0, len(stream), CLIENT_BATCH):
            acked += client.ingest(stream[start : start + CLIENT_BATCH])
    results[index] = acked


def test_service_sustained_ingest_with_concurrent_queries():
    total_length = max(200_000, int(STREAM_LENGTH * benchmark_scale()))
    per_client = total_length // NUM_CLIENTS
    rng = np.random.default_rng(23)
    streams = [
        ZipfSampler(ZIPF_SUPPORT, exponent=1.0, rng=rng)
        .sample(per_client)
        .astype(np.int64)
        for _ in range(NUM_CLIENTS)
    ]
    queries = np.arange(256, dtype=np.int64)
    sock = os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:8]}.sock")

    with ServiceThread(StreamingService(SPEC, unix_path=sock)) as service:
        acked = [0] * NUM_CLIENTS
        writers = [
            threading.Thread(target=_writer, args=(sock, stream, acked, index))
            for index, stream in enumerate(streams)
        ]
        query_count = 0
        start = time.perf_counter()
        for writer in writers:
            writer.start()
        with StreamingClient.connect(unix_path=sock) as reader:
            while any(writer.is_alive() for writer in writers):
                reader.estimate(queries)
                query_count += 1
            for writer in writers:
                writer.join()
            reader.flush()
            ingest_elapsed = time.perf_counter() - start
            drained = reader.estimate(queries)
        service.stop()

    assert sum(acked) == NUM_CLIENTS * per_client
    rate = sum(acked) / ingest_elapsed

    reference = CountMinSketch.from_total_buckets(TOTAL_BUCKETS, depth=DEPTH, seed=SEED)
    for stream in streams:
        reference.update_batch(stream)
    assert (drained == reference.estimate_batch(queries)).all()

    cores = os.cpu_count() or 1
    record = {
        "num_clients": NUM_CLIENTS,
        "stream_length": sum(acked),
        "client_batch": CLIENT_BATCH,
        "num_shards": SPEC["num_shards"],
        "total_buckets": TOTAL_BUCKETS,
        "depth": DEPTH,
        "transport": "shm",
        "cpu_cores": cores,
        "ingest_elements_per_sec": round(rate),
        "concurrent_live_queries": query_count,
        "live_queries_per_sec": round(query_count / ingest_elapsed, 1),
        "gate": f">={GATE_ELEMENTS_PER_SEC} elements/sec sustained with "
        "concurrent live queries",
        "gate_enforced": cores >= 2,
        "drained_bit_identical_to_serial": True,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"Streaming service ({NUM_CLIENTS} concurrent writers, "
        f"{SPEC['num_shards']} shm shards, live reads throughout)",
        f"  ingested                 : {sum(acked):>12,} arrivals",
        f"  sustained ingest rate    : {rate:>12,.0f} elements/sec",
        f"  live queries served      : {query_count:>12,} "
        f"({query_count / ingest_elapsed:,.1f}/sec)",
        f"  drained state            : bit-identical to serial reference",
    ]
    save_result("service", "\n".join(lines))
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s): the service rate gate needs >= 2; "
            f"measured {rate:,.0f} el/s (recorded in BENCH_service.json)"
        )
    assert rate >= GATE_ELEMENTS_PER_SEC
