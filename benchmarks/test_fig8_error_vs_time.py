"""Figure 8: estimation error as a function of time.

The paper fixes two memory configurations (4 KB and 120 KB) and tracks both
error metrics day by day over the 90-day period: all methods degrade as more
traffic accumulates, opt-hash stays the most accurate throughout, and its
advantage is much larger in the low-memory configuration.  This benchmark
replays the protocol on the scaled-down query log with a small (1.2 KB) and a
large (9.6 KB) configuration.
"""

from conftest import save_result
from repro.evaluation.querylog_experiments import run_error_vs_time

SIZES_KB = (1.2, 9.6)
CHECKPOINTS = (2, 5, 8, 11, 14)


def test_fig8_error_vs_time(benchmark, query_log_dataset):
    result = benchmark.pedantic(
        lambda: run_error_vs_time(
            query_log_dataset,
            sizes_kb=SIZES_KB,
            checkpoint_days=CHECKPOINTS,
            methods=("count-min", "heavy-hitter", "opt-hash"),
            count_min_depths=(1, 2, 4),
            heavy_hitter_depths=(1, 2),
            heavy_hitter_buckets=(10, 100, 1000),
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig8_error_vs_time", result.render())

    for size_kb in SIZES_KB:
        average = result.metrics[f"average_error_{size_kb}kb"]
        for index in range(len(CHECKPOINTS)):
            # opt-hash stays the most accurate method at every point in time.
            assert average["opt-hash"][index].mean < average["heavy-hitter"][index].mean
            assert average["opt-hash"][index].mean < average["count-min"][index].mean
        # Errors deteriorate with time for the random sketch (more mass keeps
        # landing in every bucket), mirroring the paper's upward curves.
        assert average["count-min"][-1].mean >= average["count-min"][0].mean

    # The low-memory configuration shows the larger relative advantage.
    small = result.metrics[f"average_error_{SIZES_KB[0]}kb"]
    large = result.metrics[f"average_error_{SIZES_KB[1]}kb"]
    small_gap = small["count-min"][-1].mean / max(small["opt-hash"][-1].mean, 1e-9)
    large_gap = large["count-min"][-1].mean / max(large["opt-hash"][-1].mean, 1e-9)
    assert small_gap > 1.0
    assert large_gap > 1.0
