"""Table 1: average error as a percentage of the query's frequency.

After the full period, the paper reports opt-hash's absolute error at the
1st / 10th / 100th / 1,000th / 10,000th most frequent query as a percentage
of that query's true frequency: the error percentage is tiny for the head
(0.01% at rank 1) and grows down the tail (~20% at rank 10,000).  This
benchmark regenerates the table on the scaled-down query log; the monotone
growth of the error percentage with rank is the asserted shape.
"""

from conftest import save_result
from repro.evaluation.querylog_experiments import run_rank_error_table

RANKS = (1, 10, 100, 1000)


def test_table1_rank_error(benchmark, query_log_dataset):
    result = benchmark.pedantic(
        lambda: run_rank_error_table(
            query_log_dataset,
            size_kb=9.6,
            ranks=RANKS,
            num_repetitions=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("table1_rank_error", result.render())

    percentages = result.series_means("error_percentage", "opt-hash")
    frequencies = result.series_means("query_frequency", "opt-hash")
    assert len(percentages) == len(RANKS)

    # Frequencies decrease with rank (sanity of the workload).
    assert all(
        frequencies[i] >= frequencies[i + 1] for i in range(len(frequencies) - 1)
    )
    # Head queries are estimated almost exactly; tail queries are much harder.
    assert percentages[0] < 5.0
    assert percentages[-1] >= percentages[0]
    # The overall trend is non-decreasing with rank, allowing small wobbles.
    assert percentages[-1] > percentages[1] * 0.5
