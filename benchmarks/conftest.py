"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation at
a laptop-friendly scale, prints the resulting rows/series (run pytest with
``-s`` to see them inline), and writes them to ``benchmarks/results/``.

Absolute numbers differ from the paper (different hardware, scaled-down
workloads, pure-Python substrates), but the qualitative shape — which method
wins, roughly by how much, and how the curves move with memory / time /
problem size — is asserted in each benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.streams.querylog import QueryLogConfig, QueryLogGenerator

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


def benchmark_scale() -> float:
    """Global scale knob for the benchmark workloads.

    Set ``REPRO_BENCH_SCALE`` (default 1.0) to shrink or enlarge every
    workload, e.g. ``REPRO_BENCH_SCALE=0.25 pytest benchmarks/`` for a quick
    smoke run.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def query_log_dataset():
    """The scaled-down AOL-like query log shared by the Section 7 benchmarks.

    The paper's dataset has 3.8M unique queries over 90 days; this one keeps
    the Zipfian shape and day-over-day persistence at a size a pure-Python
    simulation can stream in minutes.  Day checkpoints are scaled
    accordingly (the paper's day 30 / day 70 become day 5 / day 12).
    """
    scale = benchmark_scale()
    config = QueryLogConfig(
        num_unique_queries=max(500, int(5000 * scale)),
        num_days=16,
        arrivals_per_day=max(500, int(4000 * scale)),
        zipf_exponent=0.8,
        daily_churn_fraction=0.02,
        seed=7,
    )
    return QueryLogGenerator(config).generate_dataset()
