"""Design-choice ablations (beyond the paper's figures).

DESIGN.md calls out three design choices worth quantifying:

* the initialization strategy of the block coordinate descent (random vs
  sorted vs heavy-hitter vs dp warm start, Section 4.3/4.4);
* conservative-update vs vanilla Count-Min Sketch as the random baseline;
* the static opt-hash estimator vs the adaptive (Bloom-filter) extension of
  Section 5.3 on streams with many unseen elements.
"""

import numpy as np

from conftest import save_result
from repro.core.pipeline import OptHashConfig, train_opt_hash
from repro.evaluation.metrics import average_absolute_error
from repro.evaluation.results import ExperimentResult
from repro.optimize.bcd import block_coordinate_descent
from repro.sketches.count_min import CountMinSketch
from repro.streams.stream import Element
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


def _bcd_initialization_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: BCD initialization strategies (lambda = 0.5, G = 8)",
        x_label="strategy_index",
    )
    generator = SyntheticGenerator(SyntheticConfig(num_groups=8, fraction_seen=0.5, seed=1))
    prefix = generator.generate_prefix()
    _, features, frequencies = prefix.training_arrays()
    strategies = ("random", "sorted", "heavy_hitter", "dp")
    for index, strategy in enumerate(strategies):
        overall_values = []
        iteration_counts = []
        for seed in range(3):
            run = block_coordinate_descent(
                frequencies,
                features,
                num_buckets=10,
                lam=0.5,
                initialization=strategy,
                random_state=seed,
            )
            overall_values.append(run.objective.overall)
            iteration_counts.append(run.iterations)
        result.add_point("overall_error", strategy, index, overall_values)
        result.add_point("iterations_to_converge", strategy, index, iteration_counts)
    result.metadata["strategies"] = list(strategies)
    return result


def _conservative_cms_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: vanilla vs conservative-update Count-Min Sketch",
        x_label="total_buckets",
    )
    generator = SyntheticGenerator(SyntheticConfig(num_groups=8, fraction_seen=1.0, seed=2))
    stream = generator.generate_stream(20_000)
    truth = stream.frequencies()
    lookup = {element.key: element for element in generator.universe}
    for total_buckets in (64, 256, 1024):
        errors = {"vanilla": [], "conservative": []}
        for seed in range(2):
            for name, conservative in (("vanilla", False), ("conservative", True)):
                sketch = CountMinSketch.from_total_buckets(
                    total_buckets, depth=2, seed=seed, conservative=conservative
                )
                sketch.update_many(stream)
                errors[name].append(
                    average_absolute_error(sketch, truth, element_lookup=lookup)
                )
        for name in errors:
            result.add_point("average_error", name, total_buckets, errors[name])
    return result


def _adaptive_vs_static_ablation() -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: static opt-hash vs adaptive (Bloom filter) extension",
        x_label="fraction_seen",
    )
    for fraction in (0.2, 0.5):
        static_errors, adaptive_errors = [], []
        for seed in range(2):
            generator = SyntheticGenerator(
                SyntheticConfig(num_groups=6, fraction_seen=fraction, seed=seed)
            )
            prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=5)
            base_config = dict(num_buckets=10, lam=0.5, solver="bcd", seed=seed)
            static = train_opt_hash(prefix, OptHashConfig(**base_config)).estimator
            adaptive = train_opt_hash(
                prefix,
                OptHashConfig(adaptive=True, expected_distinct=5000, **base_config),
            ).estimator
            for element in stream:
                static.update(element)
                adaptive.update(element)
            prefix_keys = set(prefix.distinct_keys())
            unseen = [
                element
                for element in stream.distinct_elements()
                if element.key not in prefix_keys
            ]
            truth = stream.frequencies()
            static_errors.append(
                float(np.mean([abs(static.estimate(e) - truth[e.key]) for e in unseen]))
            )
            adaptive_errors.append(
                float(np.mean([abs(adaptive.estimate(e) - truth[e.key]) for e in unseen]))
            )
        result.add_point("unseen_average_error", "static", fraction, static_errors)
        result.add_point("unseen_average_error", "adaptive", fraction, adaptive_errors)
    return result


def test_ablation_bcd_initialization(benchmark):
    result = benchmark.pedantic(_bcd_initialization_ablation, rounds=1, iterations=1)
    save_result("ablation_bcd_initialization", result.render())
    overall = result.metrics["overall_error"]
    # Every strategy reaches a sensible local optimum; the dp warm start is
    # never the worst option.
    means = {name: series[0].mean for name, series in overall.items()}
    assert means["dp"] <= max(means.values()) + 1e-6
    assert all(value > 0 for value in means.values())


def test_ablation_conservative_count_min(benchmark):
    result = benchmark.pedantic(_conservative_cms_ablation, rounds=1, iterations=1)
    save_result("ablation_conservative_cms", result.render())
    average = result.metrics["average_error"]
    for index in range(3):
        # Conservative update never hurts the average error.
        assert average["conservative"][index].mean <= average["vanilla"][index].mean + 1e-9


def test_ablation_adaptive_vs_static(benchmark):
    result = benchmark.pedantic(_adaptive_vs_static_ablation, rounds=1, iterations=1)
    save_result("ablation_adaptive_vs_static", result.render())
    series = result.metrics["unseen_average_error"]
    # When most elements are unseen in the prefix (fraction 0.2), actually
    # counting them (adaptive) is at least competitive with the static scheme.
    assert series["adaptive"][0].mean <= series["static"][0].mean * 1.5 + 5.0
