"""Search-query frequency estimation (the paper's Section 7 case study).

This example mirrors the real-world experiment at laptop scale:

* a synthetic AOL-like query log (Zipfian popularity, realistic query text,
  day-over-day persistence) plays the role of the proprietary AOL dataset;
* day 0 is the observed prefix used to learn the hashing scheme, with the
  bucket budget split between stored query IDs and buckets via the ratio
  ``c`` of Section 7.3;
* a bag-of-words + counts featurizer and a random forest route queries that
  never appeared on day 0;
* the remaining days are streamed through opt-hash, the Learned CMS with an
  ideal heavy-hitter oracle, and the Count-Min Sketch, all using the same
  4 KB of memory.

Run with::

    python examples/search_query_estimation.py
"""

from __future__ import annotations

import repro
from repro.evaluation.metrics import average_absolute_error, expected_magnitude_error
from repro.evaluation.querylog_experiments import build_estimator, spec_for_method
from repro.streams.querylog import QueryLogConfig, QueryLogGenerator
from repro.streams.stream import Element

MEMORY_KB = 4.0
NUM_DAYS = 10


def main() -> None:
    # ------------------------------------------------------------------
    # Workload: a scaled-down 10-day query log.
    # ------------------------------------------------------------------
    dataset = QueryLogGenerator(
        QueryLogConfig(
            num_unique_queries=4000,
            num_days=NUM_DAYS,
            arrivals_per_day=3000,
            zipf_exponent=0.8,
            seed=1,
        )
    ).generate_dataset()
    prefix = dataset.prefix()
    print(f"day 0 (prefix): {len(prefix)} arrivals, {len(prefix.distinct_elements())} unique queries")

    # ------------------------------------------------------------------
    # All three methods are declarative specs under the same 4 KB budget.
    # opt-hash splits the budget between stored IDs and buckets (ratio c of
    # Section 7.3) and trains on day 0 with the bag-of-words featurizer;
    # the Learned CMS gets an ideal oracle over the whole period's top
    # queries, exactly as the paper benchmarks it.
    # ------------------------------------------------------------------
    final_day = NUM_DAYS - 1
    truth = dataset.cumulative_frequencies(final_day)
    opt_hash_options = {
        "ratio": 0.3,
        "lam": 1.0,
        "solver": "dp",
        "solver_options": {"center": "median"},
        "classifier": "rf",
        "classifier_options": {"n_estimators": 10, "max_depth": 12},
    }
    specs = {
        "opt-hash": spec_for_method("opt-hash", MEMORY_KB, opt_hash_options, seed=1),
        "heavy-hitter": spec_for_method(
            "heavy-hitter",
            MEMORY_KB,
            {"depth": 1, "num_heavy_buckets": 200},
            oracle_frequencies=dict(truth.items()),
            seed=1,
        ),
        "count-min": spec_for_method("count-min", MEMORY_KB, {"depth": 2}, seed=1),
    }
    opt_hash = build_estimator(specs["opt-hash"], dataset, vocabulary_size=200)
    learned_cms = build_estimator(specs["heavy-hitter"])
    count_min = build_estimator(specs["count-min"])
    print(
        f"opt-hash: {opt_hash.scheme.num_stored_ids} stored IDs + "
        f"{opt_hash.scheme.num_buckets} buckets ({opt_hash.size_kb:.2f} KB), "
        "classifier = random forest"
    )

    # ------------------------------------------------------------------
    # Stream the remaining days (the baselines also see day 0; opt-hash
    # absorbed it during training).
    # ------------------------------------------------------------------
    count_min.update_many(dataset.days[0])
    learned_cms.update_many(dataset.days[0])
    after_prefix = list(dataset.arrivals_after_prefix(final_day))
    for estimator in (opt_hash, learned_cms, count_min):
        estimator.update_many(after_prefix)

    # ------------------------------------------------------------------
    # Report both error metrics over every query seen during the period,
    # plus a few example queries across the popularity spectrum.
    # ------------------------------------------------------------------
    keys = list(truth.keys())
    opt_hash.scheme.precompute([Element(key=key) for key in keys])

    print(f"\nafter day {final_day} ({truth.total} arrivals, {len(truth)} unique queries):")
    header = f"{'method':>14} | {'avg |error|':>12} | {'expected |error|':>16}"
    print(header)
    print("-" * len(header))
    for name, estimator in (
        ("opt-hash", opt_hash),
        ("heavy-hitter", learned_cms),
        ("count-min", count_min),
    ):
        avg = average_absolute_error(estimator, truth)
        exp = expected_magnitude_error(estimator, truth)
        print(f"{name:>14} | {avg:12.2f} | {exp:16.2f}")

    print("\nper-query estimates (rank, true frequency, opt-hash estimate):")
    ranked = truth.most_common()
    for rank in (1, 10, 100, 1000):
        if rank <= len(ranked):
            key, frequency = ranked[rank - 1]
            estimate = opt_hash.estimate(Element(key=key))
            print(f"  #{rank:<5} {key[:40]:<42} true={frequency:<7} est={estimate:.1f}")

    # ------------------------------------------------------------------
    # Interpretability (paper Section 7.4): the random forest's most
    # important features should be the four text counts plus navigational
    # tokens such as "www"/"com"/"google".  Refitting the featurizer on the
    # same prefix reproduces exactly the vocabulary build_estimator used
    # (the fit is deterministic), which gives us the feature names back.
    # ------------------------------------------------------------------
    classifier = opt_hash.scheme.classifier
    if classifier is not None and hasattr(classifier, "feature_importances_"):
        from repro.ml.text import QueryFeaturizer

        featurizer = QueryFeaturizer(vocabulary_size=200)
        featurizer.fit([element.key for element in prefix.distinct_elements()])
        names = featurizer.feature_names()
        importances = classifier.feature_importances_
        top = sorted(zip(importances, names), reverse=True)[:8]
        print("\nmost important classifier features:")
        for importance, name in top:
            print(f"  {name:<20} {importance:.3f}")


if __name__ == "__main__":
    main()
