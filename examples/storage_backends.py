"""Counter-storage backends: dense vs shm vs mmap, and the shm shard transport.

Demonstrates the PR-4 storage subsystem end to end:

1. the same stream ingested on all three backends gives bit-identical
   estimates (``storage=`` is purely a placement decision);
2. a ``transport="shm"`` sharded session: persistent worker processes
   scatter directly into shared-memory tables — nothing is serialized on
   the return leg — and collapse-mode queries still match the single-sketch
   run bit for bit;
3. mmap persistence: a live (zero-copy) snapshot records the table *path*;
   restoring reattaches the file and picks up exactly where the session
   left off — the crash-recovery story.

Run: ``PYTHONPATH=src python examples/storage_backends.py``
"""

import os
import tempfile

import numpy as np

import repro.api as api

STREAM_LENGTH = 200_000
UNIVERSE = 20_000


def main() -> None:
    rng = np.random.default_rng(11)
    keys = rng.zipf(1.3, size=STREAM_LENGTH).astype(np.int64) % UNIVERSE
    probe = np.unique(keys)[:2_000]
    base = {"kind": "count_min", "total_buckets": 16_384, "depth": 2, "seed": 7}

    # ------------------------------------------------------------------
    # 1. One stream, three backends, one answer.
    # ------------------------------------------------------------------
    table_path = os.path.join(tempfile.gettempdir(), "repro-example-table.bin")
    estimates = {}
    for backend in ("dense", "shm", "mmap"):
        spec = dict(base, storage=backend)
        if backend == "mmap":
            spec["storage_path"] = table_path
        with api.open(spec) as session:
            session.ingest(keys)
            estimates[backend] = session.estimate(probe)
            print(
                f"storage={backend:<6} -> mean estimate "
                f"{estimates[backend].mean():8.2f}  "
                f"(backend={session.estimator.storage_backend})"
            )
    assert np.array_equal(estimates["dense"], estimates["shm"])
    assert np.array_equal(estimates["dense"], estimates["mmap"])
    print("dense == shm == mmap, bit for bit.\n")

    # ------------------------------------------------------------------
    # 2. Sharded ingestion over the shm transport (zero-copy return leg).
    # ------------------------------------------------------------------
    sharded_spec = {
        "kind": "sharded",
        "inner": base,
        "num_shards": 2,
        "mode": "round-robin",
        "executor": "process",
        "transport": "shm",
    }
    with api.open(sharded_spec) as session:
        session.ingest(keys)
        sharded_estimates = session.estimate(probe)
    assert np.array_equal(sharded_estimates, estimates["dense"])
    print(
        "2 persistent shm shard workers reproduced the single-sketch "
        "estimates bit for bit."
    )

    # ------------------------------------------------------------------
    # 3. mmap persistence: zero-copy snapshot, reattach, keep counting.
    # ------------------------------------------------------------------
    # Part 1 left its table on disk (that persistence is the backend's
    # point, and a fresh blank table refuses to clobber it) — start clean.
    os.unlink(table_path)
    with api.open(dict(base, storage="mmap", storage_path=table_path)) as session:
        session.ingest(keys)
        blob = session.snapshot()  # references the table file; O(1) size
        print(f"\nlive mmap snapshot: {len(blob)} bytes (table stays on disk)")
    restored = api.restore(blob)
    assert np.array_equal(restored.estimate(probe), estimates["dense"])
    restored.ingest(keys[:1_000])
    print("restored session reattached the table file and kept ingesting.")
    restored.close()
    os.unlink(table_path)


if __name__ == "__main__":
    main()
