"""Quickstart: learn a hashing scheme from a stream prefix and answer count queries.

This example walks through the full opt-hash workflow on a small synthetic
workload:

1. generate a group-structured stream (Section 6.1 of the paper);
2. train the learned hashing scheme on the observed prefix;
3. process the remaining stream in a single pass;
4. answer point (count) queries for seen and unseen elements and compare
   against a Count-Min Sketch using the same memory budget.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CountMinSketch, OptHashConfig, train_opt_hash
from repro.evaluation.metrics import average_absolute_error, expected_magnitude_error
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Generate a synthetic workload: G = 6 groups of elements, a prefix
    #    in which only half of each group may appear, and a stream that is
    #    ten times longer than the prefix.
    # ------------------------------------------------------------------
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=6, fraction_seen=0.5, seed=0)
    )
    prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=10)
    print(f"prefix arrivals:  {len(prefix):>6}  (distinct: {len(prefix.distinct_elements())})")
    print(f"stream arrivals:  {len(stream):>6}")

    # ------------------------------------------------------------------
    # 2. Learning phase: optimize the bucket assignment of the prefix
    #    elements (block coordinate descent, lambda = 0.5) and train a CART
    #    classifier that routes unseen elements to buckets by their features.
    # ------------------------------------------------------------------
    config = OptHashConfig(num_buckets=16, lam=0.5, solver="bcd", classifier="cart", seed=0)
    training = train_opt_hash(prefix, config)
    estimator = training.estimator
    print(
        "learned scheme:   "
        f"{training.scheme.num_stored_ids} stored IDs -> {config.num_buckets} buckets, "
        f"objective = {training.solver_result.objective.overall:.1f}"
    )

    # A Count-Min Sketch with the same total budget (stored IDs count as
    # bucket-equivalents, following the paper's accounting).
    budget = config.num_buckets + training.scheme.num_stored_ids
    sketch = CountMinSketch.from_total_buckets(budget, depth=2, seed=0)
    sketch.update_many(prefix)

    # ------------------------------------------------------------------
    # 3. Streaming phase: a single pass over the remaining stream.
    # ------------------------------------------------------------------
    for element in stream:
        estimator.update(element)
        sketch.update(element)

    # ------------------------------------------------------------------
    # 4. Query phase: point queries and aggregate error metrics.
    # ------------------------------------------------------------------
    truth = prefix.frequencies()
    for element in stream:
        truth.increment(element.key)
    lookup = {element.key: element for element in generator.universe}

    print("\nsample point queries (true -> opt-hash / count-min):")
    for element in generator.universe[:3] + generator.universe[-3:]:
        print(
            f"  element {element.key:>5}: {truth[element.key]:>6} -> "
            f"{estimator.estimate(element):>9.2f} / {sketch.estimate(element):>7.1f}"
        )

    opt_avg = average_absolute_error(estimator, truth, element_lookup=lookup)
    cms_avg = average_absolute_error(sketch, truth, element_lookup=lookup)
    opt_exp = expected_magnitude_error(estimator, truth, element_lookup=lookup)
    cms_exp = expected_magnitude_error(sketch, truth, element_lookup=lookup)
    print(f"\naverage |error| per element:  opt-hash = {opt_avg:8.2f}   count-min = {cms_avg:8.2f}")
    print(f"expected magnitude of error:  opt-hash = {opt_exp:8.2f}   count-min = {cms_exp:8.2f}")
    print(f"memory: opt-hash = {estimator.size_kb:.2f} KB, count-min = {sketch.size_kb:.2f} KB")


if __name__ == "__main__":
    main()
