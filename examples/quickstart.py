"""Quickstart: learn a hashing scheme from a stream prefix and answer count queries.

This example walks through the full opt-hash workflow on a small synthetic
workload, driven entirely through the declarative ``repro.api`` layer:

1. generate a group-structured stream (Section 6.1 of the paper);
2. describe both estimators as specs — the learned scheme as an
   :class:`~repro.api.specs.OptHashSpec`, the Count-Min baseline as a
   :class:`~repro.api.specs.SketchSpec` with the same memory budget;
3. open sessions, ingest the remaining stream in one pass;
4. answer point (count) queries for seen and unseen elements and compare
   the two estimators.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.evaluation.metrics import average_absolute_error, expected_magnitude_error
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Generate a synthetic workload: G = 6 groups of elements, a prefix
    #    in which only half of each group may appear, and a stream that is
    #    ten times longer than the prefix.
    # ------------------------------------------------------------------
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=6, fraction_seen=0.5, seed=0)
    )
    prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=10)
    print(f"prefix arrivals:  {len(prefix):>6}  (distinct: {len(prefix.distinct_elements())})")
    print(f"stream arrivals:  {len(stream):>6}")

    # ------------------------------------------------------------------
    # 2. Declare both estimators.  The opt-hash spec carries the whole
    #    learning-phase configuration (solver and classifier by name); the
    #    learning itself runs when the session opens on the prefix.
    # ------------------------------------------------------------------
    opt_spec = repro.OptHashSpec(
        num_buckets=16, lam=0.5, solver="bcd", classifier="cart", seed=0
    )
    session = repro.open(opt_spec, prefix=prefix)
    estimator = session.estimator
    print(
        "learned scheme:   "
        f"{estimator.scheme.num_stored_ids} stored IDs -> {opt_spec.num_buckets} buckets"
    )

    # A Count-Min Sketch with the same total budget (stored IDs count as
    # bucket-equivalents, following the paper's accounting).
    budget = opt_spec.num_buckets + estimator.scheme.num_stored_ids
    cms_spec = repro.SketchSpec("count_min", total_buckets=budget, depth=2, seed=0)
    baseline = repro.open(cms_spec)
    baseline.ingest(prefix)

    # ------------------------------------------------------------------
    # 3. Streaming phase: a single chunked pass over the remaining stream.
    # ------------------------------------------------------------------
    session.ingest(stream)
    baseline.ingest(stream)

    # ------------------------------------------------------------------
    # 4. Query phase: point queries and aggregate error metrics.
    # ------------------------------------------------------------------
    truth = prefix.frequencies()
    for element in stream:
        truth.increment(element.key)
    lookup = {element.key: element for element in generator.universe}

    print("\nsample point queries (true -> opt-hash / count-min):")
    for element in generator.universe[:3] + generator.universe[-3:]:
        print(
            f"  element {element.key:>5}: {truth[element.key]:>6} -> "
            f"{session.estimator.estimate(element):>9.2f} / "
            f"{baseline.estimate_key(element.key):>7.1f}"
        )

    opt_avg = average_absolute_error(session.estimator, truth, element_lookup=lookup)
    cms_avg = average_absolute_error(baseline.estimator, truth, element_lookup=lookup)
    opt_exp = expected_magnitude_error(session.estimator, truth, element_lookup=lookup)
    cms_exp = expected_magnitude_error(baseline.estimator, truth, element_lookup=lookup)
    print(f"\naverage |error| per element:  opt-hash = {opt_avg:8.2f}   count-min = {cms_avg:8.2f}")
    print(f"expected magnitude of error:  opt-hash = {opt_exp:8.2f}   count-min = {cms_exp:8.2f}")
    print(
        f"memory: opt-hash = {session.size_bytes / 1000:.2f} KB, "
        f"count-min = {baseline.size_bytes / 1000:.2f} KB"
    )

    # The baseline session snapshots to one buffer (spec + counters) and
    # resumes bit-identically — the deployment path for linear sketches.
    resumed = repro.restore(baseline.snapshot())
    assert resumed.estimate_key(generator.universe[0].key) == baseline.estimate_key(
        generator.universe[0].key
    )
    print("snapshot/restore: OK")


if __name__ == "__main__":
    main()
