"""Windowed counting under drift: detect, re-optimize, hot-swap.

The paper trains its hashing scheme once, on a prefix, and assumes the
stream keeps looking like that prefix.  This example runs the full
closed loop the temporal subsystem adds when that assumption fails:

1. a **sliding-window sketch** (a ring of mergeable panes over a plain
   CMS) answers "how often *recently*?" — old panes expire exactly,
   unlike an ever-growing flat sketch;
2. a **drift detector** scores each stream segment against the learned
   scheme's training profile (bucket mass shift + within-bucket error
   growth);
3. when the score crosses the threshold, a **re-optimizer** re-runs the
   whole learning phase on the fresh counts and **hot-swaps** the new
   estimator into the live session — queries never stop.

The workload is piecewise-Zipf: at every change-point the rank-to-key
permutation rotates, so yesterday's heavy hitters go cold and the
learned scheme's routing goes stale.  Element features encode the
*initial* rank on purpose — stale features are exactly what the
detector must notice.

Run with::

    python examples/windowed_counting.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.api import SketchSpec, WindowedSpec
from repro.streams.synthetic import DriftingStreamGenerator, DriftingZipfConfig
from repro.temporal import DriftDetector, ReOptimizer


def mean_abs_error(estimates: np.ndarray, truth: np.ndarray) -> float:
    return float(np.mean(np.abs(estimates - truth)))


def main() -> None:
    generator = DriftingStreamGenerator(
        DriftingZipfConfig(
            universe_size=300, segment_length=4000, num_segments=4, seed=13
        )
    )
    prefix = generator.generate_prefix()

    # ------------------------------------------------------------------
    # 1. windowed vs flat counting on the raw drifting stream
    # ------------------------------------------------------------------
    cms = SketchSpec("count_min", total_buckets=2048, depth=2, seed=13)
    flat = repro.api.build(cms)
    # two panes + one tick per segment boundary = the window always holds
    # the current segment plus the one before it, nothing older
    windowed = repro.api.build(WindowedSpec(cms, num_panes=2))

    print("windowed vs flat CMS, per segment (MAE on in-segment counts):")
    for segment_index in range(generator.config.num_segments):
        segment = generator.generate_segment(segment_index)
        keys = [element.key for element in segment.arrivals]
        flat.update_batch(keys)
        windowed.update_batch(keys)
        truth = segment.frequencies()
        probe = list(truth)
        true_counts = np.array([truth[key] for key in probe], dtype=float)
        flat_mae = mean_abs_error(flat.estimate_batch(probe), true_counts)
        win_mae = mean_abs_error(windowed.estimate_batch(probe), true_counts)
        print(
            f"  segment {segment_index}: flat MAE {flat_mae:7.2f}   "
            f"windowed MAE {win_mae:7.2f}"
        )
        windowed.tick()  # close the pane at the segment boundary
    print("  (the flat sketch drags every stale segment along; the window expires them)")

    # ------------------------------------------------------------------
    # 2. the learned scheme: drift detection + live re-optimization
    # ------------------------------------------------------------------
    spec = repro.OptHashSpec(
        num_buckets=10, lam=0.5, solver="bcd", classifier="cart", seed=13
    )
    training = repro.api.train(spec, prefix)
    session = repro.open(spec, prefix=prefix)
    stale = repro.open(spec, prefix=prefix)  # control: never re-optimized
    detector = DriftDetector(training.scheme, training, threshold=0.25)
    reoptimizer = ReOptimizer(spec)

    print("\nlearned scheme under drift (threshold 0.25):")
    for segment_index in range(generator.config.num_segments):
        segment = generator.generate_segment(segment_index)
        session.ingest(segment)
        stale.ingest(segment)
        detector.observe(segment)
        signal = detector.check(reset=True)
        line = (
            f"  segment {segment_index}: drift score {signal.score:5.2f} "
            f"(mass shift {signal.mass_shift:4.2f}, "
            f"error growth {signal.error_growth:4.2f})"
        )
        if signal:
            # Re-run the full learning phase on the counts that tripped the
            # detector and swap the fresh estimator in; the session object
            # (and anyone holding it) never notices beyond better answers.
            observed = {}
            features = {}
            for element in segment.arrivals:
                observed[element.key] = observed.get(element.key, 0) + 1
                features.setdefault(element.key, tuple(element.features))
            reoptimizer.reoptimize(session, observed, features)
            detector = DriftDetector(
                session.estimator.scheme,
                reoptimizer.retrain(observed, features),
                threshold=0.25,
            )
            line += "  -> drifted: retrained + hot-swapped"
        print(line)

    # the swapped-in scheme answers for the freshest segment; the stale
    # control keeps routing by segment-0 ranks
    last = generator.generate_segment(generator.config.num_segments - 1)
    truth = last.frequencies()
    probe = list(last.distinct_elements())[:50]
    true_counts = np.array([truth[e.key] for e in probe], dtype=float)
    swapped = np.array([session.estimator.estimate(e) for e in probe])
    stale_est = np.array([stale.estimator.estimate(e) for e in probe])
    print(
        f"\nMAE on the freshest segment ({len(probe)} distinct keys): "
        f"re-optimized {mean_abs_error(swapped, true_counts):.2f} vs "
        f"stale scheme {mean_abs_error(stale_est, true_counts):.2f}"
    )
    session.close()
    stale.close()


if __name__ == "__main__":
    main()
