"""Heavy-hitter detection on a query stream.

The paper motivates frequency estimation through pattern detection such as
finding "heavy hitters" — elements appearing far more often than the rest
(e.g. candidate denial-of-service sources in network monitoring).  This
example compares three classic single-pass summaries on a Zipfian query
stream, all implemented in :mod:`repro.sketches`:

* Misra–Gries (deterministic, under-estimates),
* Space-Saving (deterministic, over-estimates),
* Count-Min Sketch + threshold (randomized),

and reports precision/recall against the exact heavy-hitter set, plus the
AMS sketch's estimate of the stream's second frequency moment (its "skew").

Run with::

    python examples/heavy_hitters.py
"""

from __future__ import annotations

import numpy as np

import repro.api as api
from repro.streams.querylog import QueryLogConfig, QueryLogGenerator
from repro.streams.stream import Element

THRESHOLD = 0.01  # an element is "heavy" if it exceeds 1% of all arrivals
NUM_COUNTERS = 200


def main() -> None:
    dataset = QueryLogGenerator(
        QueryLogConfig(num_unique_queries=5000, num_days=1, arrivals_per_day=40_000, seed=3)
    ).generate_dataset()
    stream = dataset.days[0]
    truth = stream.frequencies()
    total = truth.total
    true_heavy = {key for key, count in truth.items() if count > THRESHOLD * total}
    print(
        f"stream: {total} arrivals, {len(truth)} unique queries, "
        f"{len(true_heavy)} true heavy hitters (> {THRESHOLD:.1%} of arrivals)\n"
    )

    # All four single-pass summaries are declarative specs; every session
    # replays the same stream through the chunked batch path.
    sessions = {
        name: api.open(spec)
        for name, spec in {
            "misra-gries": api.SketchSpec("misra_gries", num_counters=NUM_COUNTERS),
            "space-saving": api.SketchSpec("space_saving", num_counters=NUM_COUNTERS),
            "count-min": api.SketchSpec(
                "count_min", total_buckets=10 * NUM_COUNTERS, depth=4, seed=3
            ),
            "ams": api.SketchSpec("ams", num_estimators=128, means_groups=8, seed=3),
        }.items()
    }
    for session in sessions.values():
        session.ingest(stream)
    misra_gries = sessions["misra-gries"].estimator
    space_saving = sessions["space-saving"].estimator
    count_min = sessions["count-min"].estimator
    ams = sessions["ams"].estimator

    def report(name, candidates):
        candidates = set(candidates)
        true_positives = len(candidates & true_heavy)
        precision = true_positives / len(candidates) if candidates else 1.0
        recall = true_positives / len(true_heavy) if true_heavy else 1.0
        print(f"{name:>14}: reported {len(candidates):>3}  precision={precision:.2f}  recall={recall:.2f}")

    report("misra-gries", [key for key, _ in misra_gries.heavy_hitters(THRESHOLD)])
    report("space-saving", [key for key, _ in space_saving.heavy_hitters(THRESHOLD)])
    cms_candidates = [
        key for key in truth.keys()
        if count_min.estimate(Element(key=key)) > THRESHOLD * total
    ]
    report("count-min", cms_candidates)

    exact_f2 = float(np.sum(np.array(list(truth.values()), dtype=float) ** 2))
    estimate_f2 = ams.estimate_second_moment()
    print(
        f"\nsecond frequency moment (skew): exact = {exact_f2:.3e}, "
        f"AMS estimate = {estimate_f2:.3e} "
        f"(relative error {abs(estimate_f2 - exact_f2) / exact_f2:.1%})"
    )
    print(
        f"\nmemory: misra-gries = {misra_gries.size_kb:.2f} KB, "
        f"space-saving = {space_saving.size_kb:.2f} KB, "
        f"count-min = {count_min.size_kb:.2f} KB"
    )


if __name__ == "__main__":
    main()
