"""Streaming ingestion service: concurrent writers, live reads, restart.

The "millions of users" deployment shape on a laptop scale: a
:class:`~repro.service.StreamingService` serves one sharded, shm-backed
Count-Min session over a Unix socket while

1. four concurrent client streams ingest a Zipf workload,
2. a reader issues live ``estimate`` / ``top_k`` queries mid-stream,
3. the service drains, snapshots, and stops gracefully,
4. a second service instance restarts from the snapshot and answers
   bit-identically to a serial reference sketch.

Run: ``PYTHONPATH=src python examples/streaming_service.py``
"""

import os
import tempfile
import threading
import uuid

import numpy as np

import repro
from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.streams.zipf import ZipfSampler

NUM_CLIENTS = 4
KEYS_PER_CLIENT = 100_000
SUPPORT = 20_000
SPEC = {
    "kind": "sharded",
    "inner": {"kind": "count_min", "total_buckets": 1 << 16, "depth": 3, "seed": 29},
    "num_shards": 2,
    "mode": "round-robin",
    "executor": "process",
    "transport": "shm",
}


def client_stream(seed: int) -> np.ndarray:
    sampler = ZipfSampler(SUPPORT, exponent=1.05, rng=np.random.default_rng(seed))
    return sampler.sample(KEYS_PER_CLIENT).astype(np.int64)


def run_writer(sock: str, stream: np.ndarray, batch: int = 8_192) -> None:
    with StreamingClient.connect(unix_path=sock) as client:
        for start in range(0, len(stream), batch):
            client.ingest(stream[start : start + batch])


def main() -> None:
    sock = os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:8]}.sock")
    snap = os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:8]}.snap")
    streams = [client_stream(seed) for seed in range(NUM_CLIENTS)]
    hot_keys = np.arange(10, dtype=np.int64)

    print(f"serving {SPEC['num_shards']}-shard shm Count-Min on {sock}")
    with ServiceThread(
        StreamingService(SPEC, unix_path=sock, snapshot_path=snap)
    ) as service:
        writers = [
            threading.Thread(target=run_writer, args=(sock, stream))
            for stream in streams
        ]
        for writer in writers:
            writer.start()

        with StreamingClient.connect(unix_path=sock) as reader:
            live_samples = 0
            while any(writer.is_alive() for writer in writers):
                live = reader.estimate(hot_keys)
                live_samples += 1
                if live_samples in (1, 5, 25):
                    print(
                        f"  live mid-ingest (sample {live_samples}): "
                        f"key 0 ≈ {live[0]:,.0f}"
                    )
            for writer in writers:
                writer.join()
            flush = reader.flush()
            print(
                f"  drained: {flush['applied_keys']:,} arrivals from "
                f"{NUM_CLIENTS} concurrent streams"
            )
            top = reader.top_k(5, candidates=list(range(100)))
            print(f"  top-5 of the first 100 keys: {top}")
            final = reader.estimate(hot_keys)
            stats = reader.stats()
        print(
            f"  stats: accepted={stats['accepted_keys']:,} "
            f"applied={stats['applied_keys']:,} buffered={stats['buffered_keys']}"
        )
        service.stop()  # graceful drain -> snapshot -> close (idempotent)
    print(f"snapshot written: {snap} ({os.path.getsize(snap):,} bytes)")

    reference = repro.CountMinSketch.from_total_buckets(
        SPEC["inner"]["total_buckets"],
        depth=SPEC["inner"]["depth"],
        seed=SPEC["inner"]["seed"],
    )
    for stream in streams:
        reference.update_batch(stream)
    assert (final == reference.estimate_batch(hot_keys)).all()

    with ServiceThread(StreamingService(SPEC, unix_path=sock, snapshot_path=snap)):
        with StreamingClient.connect(unix_path=sock) as client:
            assert client.stats()["restored"] is True
            restored = client.estimate(hot_keys)
    assert (restored == reference.estimate_batch(hot_keys)).all()
    print("restart from snapshot: estimates bit-identical to a serial sketch ✓")

    os.unlink(snap)


if __name__ == "__main__":
    main()
