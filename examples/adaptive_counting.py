"""Adaptive counting: tracking elements that never appeared in the prefix.

The static opt-hash estimator only updates its counters for elements seen in
the training prefix; anything else is answered from the prefix statistics of
the bucket the classifier picks.  The adaptive extension (paper Section 5.3)
adds a Bloom filter so that *every* arrival updates its bucket and first-time
arrivals also grow the bucket's element count.

Both variants are one flag apart in the declarative API: the same
:class:`~repro.api.specs.OptHashSpec` with ``adaptive=True`` builds the
Bloom-filter extension.  This example opens both on a workload where only
20% of each element group may appear in the prefix, streams ten times the
prefix length, and compares the error on the elements the prefix never saw.

Run with::

    python examples/adaptive_counting.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


def main() -> None:
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=6, fraction_seen=0.2, seed=4)
    )
    prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=10)
    print(
        f"prefix: {len(prefix)} arrivals over {len(prefix.distinct_elements())} elements; "
        f"stream: {len(stream)} arrivals over {len(stream.distinct_elements())} elements"
    )

    base = dict(num_buckets=12, lam=0.5, solver="bcd", classifier="cart", seed=4)
    static = repro.open(repro.OptHashSpec(**base), prefix=prefix)
    adaptive = repro.open(
        repro.OptHashSpec(
            adaptive=True, expected_distinct=10_000, bloom_bits=40_000, **base
        ),
        prefix=prefix,
    )

    static.ingest(stream)
    adaptive.ingest(stream)

    truth = stream.frequencies()
    prefix_keys = set(prefix.distinct_keys())
    seen = [e for e in stream.distinct_elements() if e.key in prefix_keys]
    unseen = [e for e in stream.distinct_elements() if e.key not in prefix_keys]

    def mean_error(session, elements):
        return float(
            np.mean([abs(session.estimator.estimate(e) - truth[e.key]) for e in elements])
        )

    print(f"\nelements seen in the prefix ({len(seen)}):")
    print(f"  static   mean |error| = {mean_error(static, seen):8.2f}")
    print(f"  adaptive mean |error| = {mean_error(adaptive, seen):8.2f}")
    print(f"elements unseen in the prefix ({len(unseen)}):")
    print(f"  static   mean |error| = {mean_error(static, unseen):8.2f}")
    print(f"  adaptive mean |error| = {mean_error(adaptive, unseen):8.2f}")
    bloom = adaptive.estimator.bloom_filter
    print(
        f"\nmemory: static = {static.size_bytes / 1000:.2f} KB, "
        f"adaptive = {adaptive.size_bytes / 1000:.2f} KB "
        f"(includes a {bloom.num_bits}-bit Bloom filter, "
        f"~{bloom.estimated_false_positive_rate():.2%} false-positive rate)"
    )
    print(f"\nadaptive session describe(): {adaptive.describe()['kind']}")


if __name__ == "__main__":
    main()
