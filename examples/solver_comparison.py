"""Comparing the three hashing-scheme solvers on one problem instance.

The learning phase can use three solvers (paper Section 4): the exact MILP
reformulation, the block coordinate descent heuristic, and (for λ = 1) the
dynamic program.  In the declarative API the solver is just a field of the
:class:`~repro.api.specs.OptHashSpec`, so the comparison is a spec grid:
three specs differing only in ``solver``, trained with
:func:`repro.api.train` on the same small synthetic prefix — small enough
(12 stored IDs) for the branch-and-bound MILP to certify optimality.  The
exhaustive-enumeration optimum over the same stored instance is reported as
ground truth.

Run with::

    python examples/solver_comparison.py
"""

from __future__ import annotations

import time

import repro.api as api
from repro.optimize import evaluate_assignment, solve_exact_enumeration
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

LAM = 0.5
NUM_BUCKETS = 3
NUM_ELEMENTS = 12


def main() -> None:
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=4, fraction_seen=0.5, seed=2)
    )
    prefix = generator.generate_prefix(400)

    # The spec grid: one OptHashSpec per solver, identical otherwise.  The
    # shared seed makes every spec sample the same 12 stored elements, so
    # all solvers (and the enumeration) see one problem instance.
    grid = [
        api.OptHashSpec(
            num_buckets=NUM_BUCKETS,
            lam=LAM,
            solver=solver,
            solver_options=options,
            classifier=None,
            max_stored_elements=NUM_ELEMENTS,
            seed=0,
        )
        for solver, options in (
            ("dp", {}),
            ("bcd", {"num_restarts": 3}),
            ("milp", {"time_limit": 30.0}),
        )
    ]

    header = f"{'solver':>12} | {'estimation':>10} | {'similarity':>10} | {'overall':>9} | {'time (s)':>8}"
    first_training = None
    for spec in grid:
        start = time.monotonic()
        training = api.train(spec, prefix)
        elapsed = time.monotonic() - start
        if first_training is None:
            first_training = training
            print(
                f"instance: {NUM_ELEMENTS} elements -> {NUM_BUCKETS} buckets, "
                f"lambda = {LAM}\n"
                f"frequencies: {training.stored_frequencies.astype(int).tolist()}\n"
            )
            print(header)
            print("-" * len(header))
        objective = training.solver_result.objective
        print(
            f"{spec.solver:>12} | {objective.estimation:10.2f} | {objective.similarity:10.2f} "
            f"| {objective.overall:9.2f} | {elapsed:8.2f}"
        )

    frequencies = first_training.stored_frequencies
    features = first_training.stored_features
    start = time.monotonic()
    best_assignment, best_value = solve_exact_enumeration(
        frequencies, features, NUM_BUCKETS, LAM
    )
    elapsed = time.monotonic() - start
    exact = evaluate_assignment(frequencies, features, best_assignment, LAM)
    print(
        f"{'enumeration':>12} | {exact.estimation:10.2f} | {exact.similarity:10.2f} "
        f"| {best_value:9.2f} | {elapsed:8.2f}"
    )
    print("\n(the MILP matches the enumeration optimum; dp ignores the similarity term)")


if __name__ == "__main__":
    main()
