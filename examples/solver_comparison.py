"""Comparing the three hashing-scheme solvers on one problem instance.

The learning phase can use three solvers (paper Section 4): the exact MILP
reformulation, the block coordinate descent heuristic, and (for λ = 1) the
dynamic program.  This example builds one small synthetic instance — small
enough for the branch-and-bound MILP to certify optimality — and reports
each solver's estimation / similarity / overall errors and runtime, along
with the exhaustive-enumeration optimum as ground truth.

Run with::

    python examples/solver_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.optimize import (
    evaluate_assignment,
    learn_hashing_scheme,
    solve_exact_enumeration,
)
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

LAM = 0.5
NUM_BUCKETS = 3
NUM_ELEMENTS = 12


def main() -> None:
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=4, fraction_seen=0.5, seed=2)
    )
    prefix = generator.generate_prefix(400)
    _, features, frequencies = prefix.training_arrays()

    # Keep the most frequent elements so the MILP instance stays tiny.
    order = np.argsort(frequencies)[::-1][:NUM_ELEMENTS]
    frequencies = frequencies[order]
    features = features[order]
    print(
        f"instance: {NUM_ELEMENTS} elements -> {NUM_BUCKETS} buckets, lambda = {LAM}\n"
        f"frequencies: {frequencies.astype(int).tolist()}\n"
    )

    header = f"{'solver':>12} | {'estimation':>10} | {'similarity':>10} | {'overall':>9} | {'time (s)':>8}"
    print(header)
    print("-" * len(header))
    for solver, options in (
        ("dp", {}),
        ("bcd", {"num_restarts": 3}),
        ("milp", {"time_limit": 30.0}),
    ):
        start = time.monotonic()
        result = learn_hashing_scheme(
            frequencies,
            features,
            num_buckets=NUM_BUCKETS,
            lam=LAM,
            solver=solver,
            random_state=0,
            **options,
        )
        elapsed = time.monotonic() - start
        objective = result.objective
        print(
            f"{solver:>12} | {objective.estimation:10.2f} | {objective.similarity:10.2f} "
            f"| {objective.overall:9.2f} | {elapsed:8.2f}"
        )

    start = time.monotonic()
    best_assignment, best_value = solve_exact_enumeration(
        frequencies, features, NUM_BUCKETS, LAM
    )
    elapsed = time.monotonic() - start
    exact = evaluate_assignment(frequencies, features, best_assignment, LAM)
    print(
        f"{'enumeration':>12} | {exact.estimation:10.2f} | {exact.similarity:10.2f} "
        f"| {best_value:9.2f} | {elapsed:8.2f}"
    )
    print("\n(the MILP matches the enumeration optimum; dp ignores the similarity term)")


if __name__ == "__main__":
    main()
