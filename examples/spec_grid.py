"""A paper-style experiment as a spec grid — no bespoke wiring.

The declarative API turns "compare these estimator configurations on this
workload" into data: every configuration is a JSON-safe spec dict, the grid
is a list of them, and one loop opens a session per spec, ingests the same
stream, and scores the result.  Adding a method or a budget to the
comparison is one more entry in the grid — the same shape as the paper's
error-vs-size figures.

The grid below sweeps Count-Min depths, a Count Sketch, a Space-Saving
summary and a 4-shard Count-Min (identical estimates to its unsharded twin,
demonstrated at the end) over one Zipfian stream.

Run with::

    python examples/spec_grid.py
"""

from __future__ import annotations

import numpy as np

import repro.api as api
from repro.streams.zipf import ZipfSampler

TOTAL_BUCKETS = 4096
NUM_KEYS = 50_000
STREAM_LENGTH = 500_000


def main() -> None:
    rng = np.random.default_rng(7)
    keys = ZipfSampler(NUM_KEYS, exponent=1.1, rng=rng).sample(STREAM_LENGTH)
    unique, true_counts = np.unique(keys, return_counts=True)
    print(
        f"stream: {STREAM_LENGTH} arrivals, {len(unique)} distinct keys, "
        f"budget {TOTAL_BUCKETS} buckets\n"
    )

    # ------------------------------------------------------------------
    # The grid: plain dicts — serializable, diffable, loggable.
    # ------------------------------------------------------------------
    grid = [
        *(
            spec.to_dict()
            for spec in api.iter_spec_grid(
                "count_min", total_buckets=TOTAL_BUCKETS, depth=[1, 2, 4], seed=7
            )
        ),
        {"kind": "count_sketch", "total_buckets": TOTAL_BUCKETS, "depth": 3, "seed": 7},
        {"kind": "space_saving", "num_counters": TOTAL_BUCKETS // 2},
        {
            "kind": "sharded",
            "inner": {"kind": "count_min", "total_buckets": TOTAL_BUCKETS, "depth": 2, "seed": 7},
            "num_shards": 4,
            "mode": "key-partition",
        },
    ]

    header = f"{'spec':>42} | {'mean |err|':>10} | {'p99 |err|':>10} | {'KB':>6}"
    print(header)
    print("-" * len(header))
    results = {}
    for spec_dict in grid:
        spec = api.spec_from_dict(spec_dict)
        with api.open(spec) as session:
            session.ingest(keys)
            errors = np.abs(session.estimate(unique) - true_counts)
            results[spec.to_json()] = errors
            label = spec.kind + (
                f"[{spec.inner.kind} x {spec.num_shards}]"
                if isinstance(spec, api.ShardedSpec)
                else "(" + ", ".join(
                    f"{k}={v}" for k, v in spec.to_dict().items()
                    if k not in ("kind", "seed")
                ) + ")"
            )
            print(
                f"{label:>42} | {errors.mean():10.3f} | "
                f"{np.quantile(errors, 0.99):10.1f} | "
                f"{session.size_bytes / 1000:6.1f}"
            )

    # ------------------------------------------------------------------
    # Sharded == unsharded for linear sketches, bit for bit.
    # ------------------------------------------------------------------
    single = next(
        errors
        for spec_json, errors in results.items()
        if '"depth":2' in spec_json and '"kind":"count_min"' in spec_json
    )
    sharded = next(
        errors for spec_json, errors in results.items() if '"sharded"' in spec_json
    )
    assert np.array_equal(single, sharded), "sharded CMS must match unsharded"
    print("\n4-shard count_min estimates are bit-identical to the unsharded run.")


if __name__ == "__main__":
    main()
