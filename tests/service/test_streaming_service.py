"""End-to-end tests of the streaming ingestion service.

The acceptance story: several concurrent client streams ingest while live
``estimate`` queries are answered, then graceful drain → snapshot →
restart leaves a service that answers bit-identically (linear sketches).
Plus the lifecycle edges a daemon must survive: a shard worker dying
mid-stream surfaces to clients as an error response (never a hang),
double-close is idempotent, and SIGTERM during active ingest leaves a
restorable snapshot.
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid

import numpy as np
import pytest

import repro
from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.service.protocol import ServiceError

CMS_INNER = {"kind": "count_min", "total_buckets": 1 << 14, "depth": 3, "seed": 9}
SHM_SPEC = {
    "kind": "sharded",
    "inner": CMS_INNER,
    "num_shards": 2,
    "mode": "round-robin",
    "executor": "process",
    "transport": "shm",
}
UNIVERSE = 5_000


def _socket_path() -> str:
    # AF_UNIX paths are capped at ~107 bytes; pytest tmp_path can exceed
    # that, so sockets live directly under the system temp directory.
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


def _streams(num_clients: int, per_client: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, UNIVERSE, size=per_client).astype(np.int64)
        for _ in range(num_clients)
    ]


def _reference_cms(streams):
    reference = repro.CountMinSketch.from_total_buckets(
        CMS_INNER["total_buckets"], depth=CMS_INNER["depth"], seed=CMS_INNER["seed"]
    )
    for stream in streams:
        reference.update_batch(stream)
    return reference


def _run_writer(sock, stream, batch=4_000, errors=None):
    try:
        with StreamingClient.connect(unix_path=sock) as client:
            for start in range(0, len(stream), batch):
                client.ingest(stream[start : start + batch])
    except BaseException as error:  # collected, not swallowed
        (errors if errors is not None else []).append(error)


def test_concurrent_streams_with_live_queries_then_snapshot_restart(tmp_path):
    """The acceptance demo: 4 writers + live reads, then restart round-trip."""
    sock = _socket_path()
    snap = str(tmp_path / "service.snap")
    streams = _streams(4, 50_000)
    queries = np.arange(64, dtype=np.int64)
    reference = _reference_cms(streams)

    with ServiceThread(
        StreamingService(SHM_SPEC, unix_path=sock, snapshot_path=snap)
    ) as service:
        errors = []
        writers = [
            threading.Thread(target=_run_writer, args=(sock, stream, 4_000, errors))
            for stream in streams
        ]
        for writer in writers:
            writer.start()
        # Live reads while the writers stream: answers must be finite,
        # non-negative, and monotone non-decreasing (CMS counters only
        # grow; live_estimate reads the shards' current tables).
        with StreamingClient.connect(unix_path=sock) as reader:
            previous = np.zeros(len(queries))
            live_reads = 0
            while any(writer.is_alive() for writer in writers):
                live = reader.estimate(queries)
                assert live.shape == (len(queries),)
                assert (live >= previous).all()
                previous = live
                live_reads += 1
            assert live_reads > 0
        for writer in writers:
            writer.join()
        assert not errors, errors

        with StreamingClient.connect(unix_path=sock) as client:
            flush = client.flush()
            assert flush["applied_keys"] == sum(len(s) for s in streams)
            drained = client.estimate(queries)
            top = client.top_k(5, candidates=list(range(256)))
            stats = client.stats()
        # After the drain barrier the service answers exactly like one
        # serial CMS over the concatenated streams (linear sketch).
        assert (drained == reference.estimate_batch(queries)).all()
        expected_top = reference.estimate_batch(np.arange(256, dtype=np.int64))
        assert [estimate for _, estimate in top] == sorted(
            expected_top.tolist(), reverse=True
        )[:5]
        assert stats["accepted_keys"] == stats["applied_keys"]
        assert stats["buffered_keys"] == 0
    # context exit: graceful drain + snapshot + close

    assert os.path.exists(snap)
    # The snapshot alone rebuilds bit-identical state (counters, not just
    # estimates).
    with repro.load(snap) as restored:
        assert (
            restored.estimator.collapse().counters() == reference.counters()
        ).all()

    # And a restarted service resumes from it, answering identically and
    # accepting further ingest on top.
    with ServiceThread(
        StreamingService(SHM_SPEC, unix_path=sock, snapshot_path=snap)
    ):
        with StreamingClient.connect(unix_path=sock) as client:
            assert client.stats()["restored"] is True
            assert (
                client.estimate(queries) == reference.estimate_batch(queries)
            ).all()
            client.ingest(np.array([7, 7, 7], dtype=np.int64))
            client.flush()
            bumped = client.estimate(np.array([7], dtype=np.int64))
    reference.update_batch(np.array([7, 7, 7], dtype=np.int64))
    assert bumped[0] == reference.estimate_batch(np.array([7], dtype=np.int64))[0]


def test_weighted_and_string_key_ingest_paths():
    """JSON string keys and weighted binary batches hit the same tables."""
    sock = _socket_path()
    spec = {"kind": "count_min", "total_buckets": 4096, "depth": 2, "seed": 4}
    with ServiceThread(StreamingService(spec, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            client.ingest(["alpha", "beta", "alpha"])
            client.ingest(np.array([10, 11], dtype=np.int64), counts=[5, 2])
            client.flush()
            strings = client.estimate(["alpha", "beta", "gamma"])
            ints = client.estimate([10, 11])
    reference = repro.CountMinSketch.from_total_buckets(4096, depth=2, seed=4)
    reference.update_batch(["alpha", "beta", "alpha"])
    reference.update_batch(np.array([10, 11], dtype=np.int64), np.array([5, 2]))
    assert (
        strings == reference.estimate_batch(["alpha", "beta", "gamma"])
    ).all()
    assert (ints == reference.estimate_batch([10, 11])).all()


def test_tcp_endpoint_and_ping():
    with ServiceThread(
        StreamingService(CMS_INNER, host="127.0.0.1", port=0)
    ) as service:
        host, port = service.service.endpoint
        with StreamingClient.connect(host=host, port=port) as client:
            assert client.ping()
            client.ingest(np.arange(100, dtype=np.int64))
            client.flush()
            assert client.estimate([1])[0] >= 1.0


def test_protocol_errors_keep_the_connection_alive():
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_INNER, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._request(b'{"op":"frobnicate"}\n')
            with pytest.raises(ServiceError):
                client._request(b'{"op":"estimate","keys":[]}\n')
            with pytest.raises(ServiceError, match="snapshot_path"):
                client.snapshot()  # service has no snapshot path configured
            # The same connection still serves requests afterwards.
            assert client.ping()


def test_worker_death_surfaces_as_error_response_not_a_hang():
    """A dead shard worker must turn into ``ok: false``, within bounded time."""
    sock = _socket_path()
    spec = dict(SHM_SPEC, num_shards=1)
    with ServiceThread(StreamingService(spec, unix_path=sock)) as service:
        pool = service.service.session.estimator._worker_pool
        assert pool is not None
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 60.0
        batch = np.arange(1_000, dtype=np.int64)
        with StreamingClient.connect(unix_path=sock) as client:
            with pytest.raises(ServiceError):
                while time.monotonic() < deadline:
                    client.ingest(batch)
                    client.flush()
                pytest.fail("worker death never surfaced to the client")
            # The service is parked, not wedged: it still answers, with
            # errors for ingestion and live stats reporting the failure.
            assert client.stats()["failure"] is not None
            with pytest.raises(ServiceError):
                client.ingest(batch)
        service.stop()  # drains nothing, skips the snapshot, must not raise


def test_double_stop_and_double_close_are_idempotent():
    sock = _socket_path()
    service = ServiceThread(StreamingService(CMS_INNER, unix_path=sock)).start()
    client = StreamingClient.connect(unix_path=sock)
    client.ingest(np.arange(10, dtype=np.int64))
    client.close()
    client.close()
    service.stop()
    service.stop()
    assert not os.path.exists(sock)  # the socket file is cleaned up


@pytest.mark.parametrize("signal_during_ingest", [True])
def test_sigterm_during_active_ingest_leaves_restorable_snapshot(
    tmp_path, signal_during_ingest
):
    """SIGTERM mid-stream: drain, snapshot atomically, exit 0, restore."""
    sock = _socket_path()
    snap = str(tmp_path / "sigterm.snap")
    spec_json = __import__("json").dumps(SHM_SPEC)
    env = dict(os.environ, PYTHONPATH="src")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--spec",
            spec_json,
            "--unix",
            sock,
            "--snapshot",
            snap,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    try:
        assert "listening" in daemon.stdout.readline()
        rng = np.random.default_rng(3)
        acked_keys = 0
        client = StreamingClient.connect(unix_path=sock)
        batch = rng.integers(0, UNIVERSE, size=2_000).astype(np.int64)
        # Ensure real ingestion is underway before the signal...
        for _ in range(5):
            acked_keys += client.ingest(batch)
        daemon.send_signal(signal.SIGTERM)
        # ...and keep streaming across the SIGTERM until the service
        # refuses or the connection drops.  Only acknowledged batches
        # count: those are the service's durability promise.
        try:
            while True:
                acked_keys += client.ingest(batch)
        except (ServiceError, OSError):
            pass
        client.close()
        assert daemon.wait(timeout=120) == 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    assert os.path.exists(snap)
    with repro.load(snap) as restored:
        collapsed = restored.estimator.collapse()
        # One CMS row counts every arrival exactly once, so the row sum is
        # the total ingested weight — every acknowledged key must be there
        # (un-acked final sends may legitimately also have landed).
        total = int(collapsed.counters()[0].sum())
        assert total >= acked_keys > 0
        # And the restored session keeps serving.
        estimates = restored.estimate(np.arange(32, dtype=np.int64))
        assert estimates.shape == (32,)
        assert float(estimates.sum()) > 0.0
