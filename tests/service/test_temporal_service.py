"""Temporal behavior of the streaming service: timed pane rotation and
live estimator hot-swaps.

Two acceptance stories:

* a service started with ``rotation_interval`` rotates the pane ring off
  the pump's own flush timer — counts expire on wall-clock schedule, the
  ``stats`` op and ``/metrics`` expose the window configuration and pane
  ages, and a flat (non-windowed) spec is rejected at startup;
* a hot-swap against a live, actively-ingesting service loses nothing:
  every acknowledged key is applied to exactly one of the old and new
  estimators (exact counters on both sides make the audit exact).
"""

import os
import tempfile
import threading
import time
import urllib.request
import uuid

import numpy as np
import pytest

import repro
from repro.api import SketchSpec, WindowedSpec
from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.sketches import ExactCounter
from repro.temporal import ReOptimizer, prefix_from_counts


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


WINDOWED_CMS = WindowedSpec(
    SketchSpec("count_min", total_buckets=1024, depth=2, seed=3), num_panes=4
)


class TestTimedRotation:
    def test_counts_expire_on_schedule(self):
        sock = _socket_path()
        service = StreamingService(
            WINDOWED_CMS,
            unix_path=sock,
            rotation_interval=0.15,
            flush_interval=0.02,
        )
        with ServiceThread(service):
            with StreamingClient.connect(unix_path=sock) as client:
                client.ingest(["a"] * 10 + ["b"] * 3)
                client.flush()
                assert client.estimate(["a"])[0] >= 10.0
                stats = client.stats()
                assert stats["window"]["num_panes"] == 4
                assert stats["window"]["rotation_interval"] == 0.15
                assert len(stats["window"]["pane_age_seconds"]) == 4
                # > num_panes rotations: everything ingested above expires
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    stats = client.stats()
                    if stats["window"]["service_rotations"] >= 5:
                        break
                    time.sleep(0.05)
                assert stats["window"]["service_rotations"] >= 5
                assert client.estimate(["a", "b"]).tolist() == [0.0, 0.0]

    def test_rotation_keeps_recent_panes_live(self):
        sock = _socket_path()
        service = StreamingService(
            WINDOWED_CMS,
            unix_path=sock,
            rotation_interval=60.0,  # never fires during the test
            flush_interval=0.02,
        )
        with ServiceThread(service):
            with StreamingClient.connect(unix_path=sock) as client:
                client.ingest(np.arange(100, dtype=np.int64))
                client.flush()
                assert (client.estimate(np.arange(100, dtype=np.int64)) >= 1).all()
                stats = client.stats()
                assert stats["window"]["service_rotations"] == 0
                assert stats["window"]["next_rotation_seconds"] > 0

    def test_metrics_expose_the_pane_ring(self):
        sock = _socket_path()
        service = StreamingService(
            WINDOWED_CMS,
            unix_path=sock,
            rotation_interval=0.2,
            flush_interval=0.02,
            metrics_port=0,
        )
        with ServiceThread(service):
            with StreamingClient.connect(unix_path=sock) as client:
                client.ingest(["x"] * 7)
                client.flush()
                exposition = client.metrics()["text"]
            assert "repro_service_window_rotations_total" in exposition
            assert 'repro_service_window_pane_arrivals{age="0"}' in exposition
            assert 'repro_service_window_pane_age_seconds{age="0"}' in exposition
            assert "repro_service_window_head_fill" in exposition
            host, port = service.metrics_endpoint
            scraped = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ).read().decode()
            assert "repro_service_window_head_fill" in scraped

    def test_flat_spec_with_rotation_interval_fails_to_start(self):
        service = StreamingService(
            SketchSpec("count_min", total_buckets=64, depth=1, seed=0),
            unix_path=_socket_path(),
            rotation_interval=1.0,
        )
        with pytest.raises(RuntimeError):
            ServiceThread(service).start(timeout=60)

    def test_rotation_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamingService(
                WINDOWED_CMS, unix_path=_socket_path(), rotation_interval=0.0
            )

    def test_stats_omit_window_for_flat_kinds(self):
        sock = _socket_path()
        service = StreamingService(
            SketchSpec("count_min", total_buckets=64, depth=1, seed=0), unix_path=sock
        )
        with ServiceThread(service):
            with StreamingClient.connect(unix_path=sock) as client:
                assert client.stats()["window"] is None


class TestHotSwap:
    def test_zero_loss_swap_under_active_ingest(self):
        """Acceptance: swap mid-stream, audit that acked == old + new.

        Exact counters serve on both sides of the swap, so 'no key was
        acked then lost' is checked by exact arithmetic, not estimates.
        """
        sock = _socket_path()
        total_keys = 60_000
        batch = 500
        service = StreamingService(
            SketchSpec("exact_counter"), unix_path=sock, flush_interval=0.01
        )
        with ServiceThread(service) as thread:
            errors = []
            acked = []

            def writer():
                try:
                    with StreamingClient.connect(unix_path=sock) as client:
                        rng = np.random.default_rng(7)
                        sent = 0
                        while sent < total_keys:
                            keys = rng.integers(0, 1000, size=batch)
                            acked.append(client.ingest(keys))
                            sent += batch
                            time.sleep(0.001)  # keep the stream mid-flight
                except BaseException as error:
                    errors.append(error)

            pump = threading.Thread(target=writer)
            pump.start()
            # swap mid-stream, after the old estimator has provably
            # absorbed some of the acked keys
            while service._applied_keys < total_keys // 3:
                time.sleep(0.002)
            old = thread.hot_swap(
                SketchSpec("exact_counter"), ExactCounter(), close_old=False
            )
            # a post-swap tranche from this thread guarantees the new
            # estimator sees traffic even if the writer raced to the end
            post_swap = 1_000
            with StreamingClient.connect(unix_path=sock) as client:
                acked.append(client.ingest(np.arange(post_swap, dtype=np.int64)))
            pump.join()
            assert not errors, errors
            with StreamingClient.connect(unix_path=sock) as client:
                client.flush()
                stats = client.stats()
            assert stats["hot_swaps"] == 1
            assert sum(acked) == total_keys + post_swap
            old_applied = sum(old._counts.values())
            new_applied = sum(service.session.estimator._counts.values())
            # zero loss, zero duplication: every acked key applied exactly
            # once, to exactly one side of the swap
            assert old_applied + new_applied == total_keys + post_swap
            assert old_applied > 0 and new_applied >= post_swap

    def test_reoptimizer_drives_the_service_swap(self, toy_prefix, toy_stream):
        spec = repro.OptHashSpec(
            num_buckets=3, lam=0.5, solver="bcd", classifier="cart", seed=4
        )
        sock = _socket_path()
        service = StreamingService(
            spec, unix_path=sock, prefix=toy_prefix, flush_interval=0.01
        )
        with ServiceThread(service) as thread:
            with StreamingClient.connect(unix_path=sock) as client:
                client.ingest([element.key for element in toy_stream.arrivals])
                client.flush()
                counts = {}
                for element in toy_stream.arrivals:
                    counts[element.key] = counts.get(element.key, 0) + 1
                features = {
                    element.key: tuple(element.features)
                    for element in toy_stream.arrivals
                }
                result = ReOptimizer(spec).reoptimize(
                    thread, counts, features, close_old=True
                )
                assert service.session.estimator is result.estimator
                assert client.stats()["hot_swaps"] == 1
                # the swapped-in estimator serves immediately
                client.ingest([toy_stream.arrivals[0].key])
                client.flush()
                assert client.estimate([toy_stream.arrivals[0].key])[0] > 0

    def test_swap_rejects_tickless_estimator_on_rotating_service(self):
        sock = _socket_path()
        service = StreamingService(
            WINDOWED_CMS, unix_path=sock, rotation_interval=60.0
        )
        with ServiceThread(service) as thread:
            with pytest.raises(ValueError):
                thread.hot_swap(SketchSpec("exact_counter"), ExactCounter())

    def test_swap_on_stopped_thread_raises(self):
        service = StreamingService(
            SketchSpec("exact_counter"), unix_path=_socket_path()
        )
        thread = ServiceThread(service)
        with pytest.raises(RuntimeError):
            thread.hot_swap(SketchSpec("exact_counter"), ExactCounter())
