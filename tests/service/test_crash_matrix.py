"""Crash-recovery matrix: SIGKILL the whole service at injection points.

A child process runs the service + a client, ingesting batches of known
disjoint key ranges and printing ``ACK i`` after each acknowledged batch.
A fail point armed through ``REPRO_FAILPOINTS`` SIGKILLs the child at a
chosen site; the parent then restarts the service over the same snapshot +
WAL and checks the recovered counter table is **bit-identical** to a serial
reference over exactly some prefix of batches — a prefix that contains
every batch whose ack reached the client:

- ``wal.append.mid``  — mid-WAL-append: the torn batch was never acked and
  is not recovered; everything acked before it is.
- ``service.ingest.acked`` — post-ack, (possibly) pre-apply: the ack was
  sent, so the batch must be recovered from the WAL even though the pump
  may never have applied it.
- ``session.save`` — mid-snapshot: the rename never happened, so restart
  sees the old (absent) snapshot and replays the full WAL.
"""

import os
import subprocess
import sys
import tempfile
import uuid
from pathlib import Path

import numpy as np

import repro
from repro.service import ServiceThread, StreamingClient, StreamingService

SPEC = {"kind": "count_min", "total_buckets": 4096, "depth": 2, "seed": 7}
NUM_BATCHES = 8
BATCH = 500

CHILD = """
import os, sys
import numpy as np
from repro.service import ServiceThread, StreamingClient, StreamingService

sock, snap, wal, op = sys.argv[1:5]
SPEC = {"kind": "count_min", "total_buckets": 4096, "depth": 2, "seed": 7}
service = StreamingService(SPEC, unix_path=sock, snapshot_path=snap, wal_dir=wal)
ServiceThread(service).start()
client = StreamingClient.connect(unix_path=sock)
for i in range(%(num_batches)d):
    keys = np.arange(i * %(batch)d, (i + 1) * %(batch)d, dtype=np.int64)
    client.ingest(keys)
    print(f"ACK {i}", flush=True)
if op == "snapshot":
    client.snapshot()
print("DONE", flush=True)
os._exit(0)
""" % {"num_batches": NUM_BATCHES, "batch": BATCH}


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


def _run_child(tmp_path, failpoint_spec, op="ingest"):
    sock = _socket_path()
    snap = str(tmp_path / "service.snap")
    wal = str(tmp_path / "wal")
    script = tmp_path / "crash_child.py"
    script.write_text(CHILD)
    env = dict(os.environ)
    env["REPRO_FAILPOINTS"] = failpoint_spec
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script), sock, snap, wal, op],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    acks = [
        int(line.split()[1])
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    ]
    done = "DONE" in proc.stdout
    return proc, acks, done, snap, wal


def _recovered_counters(snap, wal):
    """Restart the service over the same snapshot + WAL; return its table."""
    sock = _socket_path()
    service = StreamingService(SPEC, unix_path=sock, snapshot_path=snap, wal_dir=wal)
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock) as client:
            client.flush()
        counters = np.array(service.session.estimator.counters(), copy=True)
    return counters


def _reference_counters(prefix):
    reference = repro.CountMinSketch.from_total_buckets(
        SPEC["total_buckets"], depth=SPEC["depth"], seed=SPEC["seed"]
    )
    for index in range(prefix):
        reference.update_batch(
            np.arange(index * BATCH, (index + 1) * BATCH, dtype=np.int64)
        )
    return np.asarray(reference.counters())


def _matching_prefix(counters):
    """The batch prefix the recovered table equals bit-for-bit, else None."""
    for prefix in range(NUM_BATCHES + 1):
        if (counters == _reference_counters(prefix)).all():
            return prefix
    return None


def test_sigkill_mid_wal_append(tmp_path):
    proc, acks, done, snap, wal = _run_child(tmp_path, "wal.append.mid=4*kill")
    assert proc.returncode == -9, proc.stderr
    assert not done
    # The 4th append died with a torn record: exactly 3 batches were acked.
    assert acks == [0, 1, 2]
    prefix = _matching_prefix(_recovered_counters(snap, wal))
    assert prefix == 3  # every acked batch, and only acked batches


def test_sigkill_post_ack_pre_apply(tmp_path):
    proc, acks, done, snap, wal = _run_child(tmp_path, "service.ingest.acked=4*kill")
    assert proc.returncode == -9, proc.stderr
    assert not done
    # The 4th ack was drained to the socket before the kill; whether the
    # client's print raced the kill, the batch itself is durable.
    assert set(acks) <= {0, 1, 2, 3}
    prefix = _matching_prefix(_recovered_counters(snap, wal))
    assert prefix == 4
    assert prefix >= len(acks)
    # Recovery wrote a snapshot whose embedded marks cover the replayed
    # records: a second restart must not double-count them.
    again = _recovered_counters(snap, wal)
    assert (again == _reference_counters(4)).all()


def test_sigkill_mid_snapshot(tmp_path):
    proc, acks, done, snap, wal = _run_child(
        tmp_path, "session.save=1*kill", op="snapshot"
    )
    assert proc.returncode == -9, proc.stderr
    assert not done
    assert acks == list(range(NUM_BATCHES))  # all acked before the snapshot
    # The kill landed before the atomic rename: no (possibly torn) snapshot.
    assert not os.path.exists(snap)
    prefix = _matching_prefix(_recovered_counters(snap, wal))
    assert prefix == NUM_BATCHES  # the full WAL replays onto a fresh table


def test_no_failpoint_graceful_baseline(tmp_path):
    """Sanity: without chaos the child exits 0 and everything is recovered."""
    proc, acks, done, snap, wal = _run_child(tmp_path, "", op="snapshot")
    assert proc.returncode == 0, proc.stderr
    assert done and acks == list(range(NUM_BATCHES))
    assert os.path.exists(snap)
    prefix = _matching_prefix(_recovered_counters(snap, wal))
    assert prefix == NUM_BATCHES
