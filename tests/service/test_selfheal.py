"""Self-healing service: SIGKILL a shard worker, recover without data loss.

The chaos acceptance story: with a WAL and supervision, killing one shard
worker mid-ingest (under concurrent live queries) leaves a service that
answers degraded instead of erroring, restarts the worker under its
budget, replays that shard's WAL slice, and afterwards answers
bit-identically to a serial reference over every acknowledged key.  The
client side: retried ingests carry idempotency IDs, so an ack lost in
flight is re-acknowledged from the dedup window, never double-counted.
"""

import os
import signal
import socket as socket_module
import tempfile
import threading
import time
import uuid

import numpy as np
import pytest

import repro
from repro.resilience import RestartBudget, RetryPolicy, failpoints
from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.service.client import ConnectionLost
from repro.service.protocol import ServiceError

CMS_INNER = {"kind": "count_min", "total_buckets": 1 << 14, "depth": 3, "seed": 9}


def _shm_spec(num_shards):
    return {
        "kind": "sharded",
        "inner": CMS_INNER,
        "num_shards": num_shards,
        "mode": "key-partition",
        "executor": "process",
        "transport": "shm",
    }


UNIVERSE = 5_000
POLICY = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=1.0)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


def _reference(streams):
    reference = repro.CountMinSketch.from_total_buckets(
        CMS_INNER["total_buckets"], depth=CMS_INNER["depth"], seed=CMS_INNER["seed"]
    )
    for stream in streams:
        reference.update_batch(stream)
    return reference


def _worker_process(service, shard_index):
    return service.session.estimator._worker_pool._workers[shard_index].process


def _writer(sock, stream, errors, batch=2_000, pause=0.002):
    try:
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            for start in range(0, len(stream), batch):
                client.ingest(stream[start : start + batch])
                time.sleep(pause)
    except BaseException as error:
        errors.append(error)


def test_sigkill_one_worker_midstream_selfheals(tmp_path):
    """The tentpole acceptance test: kill → degrade → restart → exact."""
    sock = _socket_path()
    rng = np.random.default_rng(1)
    streams = [
        rng.integers(0, UNIVERSE, size=24_000).astype(np.int64) for _ in range(3)
    ]
    queries = np.arange(64, dtype=np.int64)
    reference = _reference(streams)

    service = StreamingService(
        _shm_spec(4),
        unix_path=sock,
        snapshot_path=str(tmp_path / "service.snap"),
        wal_dir=str(tmp_path / "wal"),
    )
    with ServiceThread(service):
        errors = []
        writers = [
            threading.Thread(target=_writer, args=(sock, stream, errors))
            for stream in streams
        ]
        for writer in writers:
            writer.start()
        time.sleep(0.3)  # let ingest get going before the chaos
        os.kill(_worker_process(service, 1).pid, signal.SIGKILL)

        # Live queries during the outage + rebuild: every response is a
        # well-formed answer (possibly degraded), never an error or a hang.
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as reader:
            while any(writer.is_alive() for writer in writers):
                live = reader.estimate(queries)
                assert live.shape == (len(queries),)
                assert np.isfinite(live).all() and (live >= 0).all()
        for writer in writers:
            writer.join()
        assert not errors, errors

        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            for _ in range(200):  # wait out the rebuild
                stats = client.stats()
                if not stats.get("degraded") and stats["worker_restarts"] >= 1:
                    break
                time.sleep(0.05)
            assert stats["supervised"] is True
            assert stats["worker_restarts"] >= 1
            assert stats["failure"] is None

            flush = client.flush()
            assert flush["applied_keys"] == sum(len(s) for s in streams)
            # Post-recovery, estimates are bit-identical to a serial CMS
            # over the concatenated streams — acked keys survived the kill.
            drained = client.estimate(queries)
            assert (drained == reference.estimate_batch(queries)).all()

            samples = client.metrics()["samples"]
            assert samples["repro_service_worker_restarts_total"] >= 1
            assert samples["repro_service_failure"] == 0
            assert samples["repro_service_down_shards"] == 0
            assert samples["repro_service_wal_appended_batches_total"] > 0


def test_degraded_window_answers_from_survivors(tmp_path):
    """While a shard rebuilds, queries answer degraded; snapshots refuse."""
    sock = _socket_path()
    service = StreamingService(
        _shm_spec(2),
        unix_path=sock,
        snapshot_path=str(tmp_path / "service.snap"),
        wal_dir=str(tmp_path / "wal"),
    )
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            keys = np.arange(2_000, dtype=np.int64)
            client.ingest(keys)
            client.flush()
            # Stretch the pre-rebuild backoff so the degraded window is
            # wide enough to observe deterministically.
            service._budgets[1] = RestartBudget(
                max_restarts=5, window_seconds=60.0, base_delay=1.0, jitter=0.0
            )
            os.kill(_worker_process(service, 1).pid, signal.SIGKILL)

            from repro.service import protocol

            saw_degraded = False
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                response = client._request(
                    protocol.encode_frame(
                        {"op": "estimate", "keys": protocol.jsonable_keys([1, 2])}
                    )
                )
                if response.get("degraded"):
                    saw_degraded = True
                    assert response["down_shards"] == [1]
                    assert response["staleness_seconds"] >= 0
                    break
                time.sleep(0.01)
            assert saw_degraded, "never observed a degraded response"

            # A degraded snapshot would silently undercount — refused.
            with pytest.raises(ServiceError, match="degraded"):
                client.snapshot()
            # Degraded stats say so without counting as a degraded query.
            assert client.stats()["degraded"] is True

            for _ in range(200):
                stats = client.stats()
                if not stats.get("degraded"):
                    break
                time.sleep(0.05)
            assert stats.get("degraded") is None
            assert stats["worker_restarts"] >= 1
            assert stats["degraded_queries"] >= 1
            # Exact again after the rebuild replayed the WAL lane.
            reference = _reference([keys])
            assert (
                client.estimate(keys[:64])
                == reference.estimate_batch(keys[:64])
            ).all()


def test_retry_with_idempotency_never_double_counts(tmp_path):
    """A dropped ack triggers a client retry; the dedup window absorbs it."""
    sock = _socket_path()
    service = StreamingService(
        _shm_spec(2),
        unix_path=sock,
        snapshot_path=str(tmp_path / "service.snap"),
        wal_dir=str(tmp_path / "wal"),
    )
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            keys = np.arange(1_000, dtype=np.int64)
            # The service applies + WALs + acks the batch, then the
            # connection breaks before the ack reaches the client.
            failpoints.arm("service.drop_response", "raise")
            assert client.ingest(keys) == 1_000  # retried transparently
            flush = client.flush()
            assert flush["applied_keys"] == 1_000  # once, not twice
            reference = _reference([keys])
            assert (
                client.estimate(keys[:64])
                == reference.estimate_batch(keys[:64])
            ).all()
            stats = client.stats()
            assert stats["dedup_hits"] >= 1


def test_restart_budget_trips_and_parks_the_service(tmp_path, monkeypatch):
    """A shard that keeps dying opens the circuit breaker: park, don't loop."""
    sock = _socket_path()
    # Every spawned worker (initial and revived) kills itself on its first
    # ingest job — the shard can never be rebuilt.
    monkeypatch.setenv(failpoints.ENV_VAR, "worker.ingest=1*kill")
    service = StreamingService(
        _shm_spec(2),
        unix_path=sock,
        snapshot_path=str(tmp_path / "service.snap"),
        wal_dir=str(tmp_path / "wal"),
        max_restarts=2,
        restart_window=60.0,
    )
    failpoints.disarm_all()  # the ctor armed the parent from env; undo that
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock) as client:
            client.ingest(np.arange(1_000, dtype=np.int64))
            deadline = time.monotonic() + 30.0
            failure = None
            while time.monotonic() < deadline:
                try:
                    stats = client.stats()
                except ServiceError:
                    break
                failure = stats.get("failure")
                if failure:
                    break
                time.sleep(0.05)
            assert failure and "restart budget" in failure
            # Parked: requests error, they do not hang.
            with pytest.raises(ServiceError, match="restart budget"):
                client.ingest(np.arange(8, dtype=np.int64))
    monkeypatch.delenv(failpoints.ENV_VAR)


def test_supervised_recovery_clears_parked_failure_and_gauge(tmp_path):
    """Satellite fix: a successful supervised restart un-parks the service
    and resets the ``repro_service_failure`` gauge."""
    sock = _socket_path()
    service = StreamingService(
        _shm_spec(2),
        unix_path=sock,
        snapshot_path=str(tmp_path / "service.snap"),
        wal_dir=str(tmp_path / "wal"),
    )
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            client.ingest(np.arange(2_000, dtype=np.int64))
            client.flush()
            # Simulate a transient park (e.g. a failed drain) racing a
            # worker death, then let the supervisor heal both.
            service._failure = "injected transient failure"
            service._m_failure.set(1)
            os.kill(_worker_process(service, 0).pid, signal.SIGKILL)
            for _ in range(200):
                samples = client.metrics()["samples"]
                stats = client.stats()
                if stats["failure"] is None and stats["worker_restarts"] >= 1:
                    break
                time.sleep(0.05)
            assert stats["failure"] is None
            assert samples["repro_service_failure"] == 0
            keys = np.arange(2_000, dtype=np.int64)
            reference = _reference([keys])
            assert (
                client.estimate(keys[:64])
                == reference.estimate_batch(keys[:64])
            ).all()


# ----------------------------------------------------------------------
# client lifecycle regressions (satellite)
# ----------------------------------------------------------------------
def test_client_double_close_is_idempotent(tmp_path):
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_INNER, unix_path=sock)):
        client = StreamingClient.connect(unix_path=sock)
        assert client.ping()
        client.close()
        client.close()  # must not raise
        with pytest.raises(ConnectionLost):
            client.ping()  # closed without a policy: no silent reconnect


def test_client_context_manager_closes(tmp_path):
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_INNER, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            assert client.ping()
        assert client._sock is None


def test_client_close_after_connect_failure():
    missing = _socket_path()  # never created
    with pytest.raises(OSError):
        StreamingClient.connect(unix_path=missing)
    # With a retry policy the failure is ConnectionLost after retries...
    client = None
    try:
        client = StreamingClient.connect(
            unix_path=missing,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
    except OSError:
        pass
    assert client is None  # connect() never leaks a half-built client


def test_client_reconnects_through_a_dropped_connection(tmp_path):
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_INNER, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock, retry_policy=POLICY) as client:
            assert client.ping()
            # Sever the transport under the client; the next request must
            # transparently reconnect and succeed.
            client._sock.close()
            assert client.ping()
            client.close()
            client.close()  # idempotent even after a reconnect cycle
