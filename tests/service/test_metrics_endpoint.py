"""End-to-end tests of the observability surface of the streaming service:
the ``metrics`` protocol op, the plain-HTTP ``GET /metrics`` listener, and
agreement between the metrics registry and the ``stats`` counters.
"""

import http.client
import os
import tempfile
import uuid

import numpy as np

from repro.obs import EXPOSITION_CONTENT_TYPE, parse_exposition
from repro.service import ServiceThread, StreamingClient, StreamingService

CMS_SPEC = {"kind": "count_min", "total_buckets": 1 << 14, "depth": 2, "seed": 11}


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


def test_metrics_op_agrees_with_stats_after_known_workload():
    sock = _socket_path()
    keys = np.arange(10_000, dtype=np.int64)
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            for _ in range(3):
                client.ingest(keys)  # binary frames
            client.ingest(list(range(100)))  # one JSON frame
            client.flush()
            client.estimate([1, 2, 3])
            stats = client.stats()
            response = client.metrics()

    assert response["ok"] and response["op"] == "metrics"
    assert response["content_type"] == EXPOSITION_CONTENT_TYPE
    samples = response["samples"]
    # the registry and the legacy stats counters must tell the same story
    assert samples["repro_service_ingest_keys_total"] == stats["accepted_keys"]
    assert samples["repro_service_ingest_batches_total"] == stats["accepted_batches"]
    assert samples["repro_service_applied_keys_total"] == stats["applied_keys"]
    assert samples["repro_service_applied_batches_total"] == stats["applied_batches"]
    assert samples["repro_service_buffered_keys"] == stats["buffered_keys"] == 0
    assert samples["repro_service_failure"] == 0
    assert samples["repro_service_uptime_seconds"] > 0
    assert samples['repro_service_requests_total{op="ingest"}'] == 4
    assert samples['repro_service_requests_total{op="flush"}'] == 1
    assert samples['repro_service_requests_total{op="estimate"}'] == 1
    assert samples['repro_service_request_seconds_count{op="ingest"}'] == 4
    # wire accounting: 3 binary payloads of 10k int64 keys + all the frames
    assert samples["repro_service_ingest_bytes_total"] > 3 * 10_000 * 8
    # the text exposition carries exactly the same values
    assert parse_exposition(response["text"]) == samples


def test_http_metrics_listener():
    sock = _socket_path()
    service = StreamingService(CMS_SPEC, unix_path=sock, metrics_port=0)
    with ServiceThread(service):
        host, port = service.metrics_endpoint
        with StreamingClient.connect(unix_path=sock) as client:
            client.ingest(np.arange(500, dtype=np.int64))
            client.flush()

        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        assert response.status == 200
        assert response.getheader("Content-Type") == EXPOSITION_CONTENT_TYPE
        conn.close()
        scraped = parse_exposition(body)
        assert scraped["repro_service_ingest_keys_total"] == 500
        assert scraped['repro_service_requests_total{op="ingest"}'] == 1

        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
        conn.close()


def test_instrument_false_serves_empty_metrics():
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock, instrument=False)):
        with StreamingClient.connect(unix_path=sock) as client:
            client.ingest(np.arange(100, dtype=np.int64))
            response = client.metrics()
            stats = client.stats()
    assert response["ok"]
    assert response["text"] == ""
    assert response["samples"] == {}
    assert stats["accepted_keys"] == 100  # legacy counters still work


def test_request_errors_are_counted_per_op():
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            try:
                client.estimate([])  # protocol error: empty keys
            except Exception:
                pass
            samples = client.metrics()["samples"]
    assert samples['repro_service_request_errors_total{op="estimate"}'] == 1
    assert samples['repro_service_requests_total{op="estimate"}'] == 1
