"""Regression tests for the service correctness sweep.

Each test fails on the pre-fix code:

1. JSON frames over 64 KiB killed the connection (StreamReader's default
   64 KiB limit contradicted ``MAX_FRAME_BYTES``).
2. ``snapshot`` could pass the applied barrier while the last acked
   micro-batch was mid-apply — and return ok even though that apply failed,
   leaving a snapshot missing acked keys.
3. ``isinstance(True, int)`` let booleans through integer validation
   (``binary.count``, ``top_k.k``): a ``count: true`` header committed the
   server to a phantom 8-byte read and hung the connection.
4. ``ServiceThread.stop()`` after a failed ``start()`` scheduled a stop on
   a loop wedged in startup and hung until its own timeout.
"""

import os
import tempfile
import threading
import uuid

import numpy as np
import pytest

from repro.service import ServiceThread, StreamingClient, StreamingService
from repro.service import protocol
from repro.service.protocol import ServiceError

CMS_SPEC = {"kind": "count_min", "total_buckets": 1 << 14, "depth": 2, "seed": 7}


def _socket_path() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:12]}.sock")


def test_json_frames_over_64kib_are_accepted():
    """Bug 1: a >64 KiB JSON ingest frame must ingest, not kill the socket."""
    sock = _socket_path()
    keys = list(range(20_000))  # JSON frame well past the old 64 KiB reader cap
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            assert client.ingest(keys) == len(keys)
            client.flush()
            assert client.estimate([5])[0] >= 1.0


def test_frames_over_the_protocol_bound_get_an_error_response():
    """Past MAX_FRAME_BYTES the server answers ok=false before dropping."""
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock, timeout=30.0) as client:
            line = b'{"op": "ping", "pad": "' + b"x" * protocol.MAX_FRAME_BYTES
            line += b'"}\n'
            with pytest.raises(ServiceError, match="frame exceeds"):
                client._request(line)


def test_snapshot_fails_when_the_mid_apply_batch_is_lost(tmp_path):
    """Bug 2: an acked batch whose apply fails must fail the snapshot too."""
    sock = _socket_path()
    snap = str(tmp_path / "service.snap")
    service = StreamingService(
        CMS_SPEC, unix_path=sock, snapshot_path=snap, flush_interval=0.01
    )
    apply_started = threading.Event()
    release_apply = threading.Event()

    def blocked_failing_apply(keys, counts):
        apply_started.set()
        release_apply.wait(30.0)
        raise RuntimeError("shard worker died mid-apply")

    service._apply = blocked_failing_apply
    with ServiceThread(service):
        with StreamingClient.connect(unix_path=sock) as client:
            client.ingest(np.arange(256, dtype=np.int64))  # acked into the buffer
            assert apply_started.wait(10.0)
            # The batch is now in-flight: buffer empty, apply still running.
            # Pre-fix, snapshot sails through the barrier, queues its save
            # behind the blocked apply, and reports ok for a snapshot that
            # is missing the acked batch.
            threading.Timer(0.3, release_apply.set).start()
            with pytest.raises(ServiceError, match="ingestion failed"):
                client.snapshot()


def test_boolean_binary_count_is_rejected_not_hung():
    """Bug 3: {"count": true} must get an error response, not desync framing."""
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        # Short socket timeout: pre-fix the server blocks in readexactly(8)
        # waiting for a phantom payload and this client call times out.
        with StreamingClient.connect(unix_path=sock, timeout=5.0) as client:
            frame = protocol.encode_frame(
                {
                    "op": "ingest",
                    "binary": {"count": True, "dtype": "<i8", "with_counts": False},
                }
            )
            with pytest.raises(ServiceError, match="count"):
                client._request(frame)
            assert client.ping()  # connection survived


def test_boolean_top_k_is_rejected():
    """Bug 3 (audit): {"k": true} is not a positive integer."""
    sock = _socket_path()
    with ServiceThread(StreamingService(CMS_SPEC, unix_path=sock)):
        with StreamingClient.connect(unix_path=sock) as client:
            frame = protocol.encode_frame(
                {"op": "top_k", "k": True, "candidates": [1, 2, 3]}
            )
            with pytest.raises(ServiceError, match="positive integer"):
                client._request(frame)


def test_service_thread_stop_after_failed_start_is_a_noop():
    """Bug 4: stop() after a timed-out start() returns instead of hanging."""
    service = StreamingService(CMS_SPEC, unix_path=_socket_path())
    release_startup = threading.Event()

    def stuck_open_session():
        release_startup.wait(30.0)
        raise RuntimeError("startup aborted by test")

    service._open_session = stuck_open_session
    thread = ServiceThread(service)
    with pytest.raises(RuntimeError, match="failed to start in time"):
        thread.start(timeout=0.3)
    # Pre-fix this scheduled service.stop() onto the loop wedged inside
    # startup and blocked until future.result(timeout=...) raised.
    thread.stop(timeout=5.0)
    release_startup.set()
    thread._thread.join(timeout=10.0)
    assert not thread._thread.is_alive()
    service._estimator_executor.shutdown(wait=False)


def test_service_thread_stop_before_start_is_a_noop():
    service = StreamingService(CMS_SPEC, unix_path=_socket_path())
    thread = ServiceThread(service)
    thread.stop(timeout=1.0)  # never started: must return immediately
    service._estimator_executor.shutdown(wait=False)
