"""Unit tests of the service wire protocol (framing + binary payloads)."""

import numpy as np
import pytest

from repro.service import protocol
from repro.service.protocol import ProtocolError


def test_frame_round_trip():
    message = {"op": "ingest", "keys": [1, 2, 3], "counts": [1, 1, 2]}
    line = protocol.encode_frame(message)
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1  # one frame, one line
    assert protocol.decode_frame(line) == message


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2, 3]\n", b'"a string"\n', b"\xff\xfe\n"],
)
def test_malformed_frames_raise(line):
    with pytest.raises(ProtocolError):
        protocol.decode_frame(line)


def test_binary_round_trip_keys_only():
    keys = np.arange(1000, dtype=np.int64) * 7
    header, payload = protocol.binary_ingest_parts(keys)
    assert header["binary"]["count"] == 1000
    assert len(payload) == protocol.payload_nbytes(header["binary"])
    decoded_keys, decoded_counts = protocol.arrays_from_payload(
        header["binary"], payload
    )
    assert decoded_counts is None
    assert (decoded_keys == keys).all()
    assert decoded_keys.dtype == np.dtype("<i8").newbyteorder("=")


def test_binary_round_trip_with_counts():
    keys = np.arange(64, dtype=np.int64)
    counts = np.arange(64, dtype=np.int64) % 5
    header, payload = protocol.binary_ingest_parts(keys, counts)
    decoded_keys, decoded_counts = protocol.arrays_from_payload(
        header["binary"], payload
    )
    assert (decoded_keys == keys).all()
    assert (decoded_counts == counts).all()


def test_binary_rejects_object_dtype():
    with pytest.raises(ProtocolError):
        protocol.binary_ingest_parts(np.array(["a", "b"], dtype=object))


def test_binary_rejects_misaligned_counts():
    with pytest.raises(ProtocolError):
        protocol.binary_ingest_parts(
            np.arange(4, dtype=np.int64), np.ones(3, dtype=np.int64)
        )


@pytest.mark.parametrize(
    "binary",
    [
        {"count": 4, "dtype": "O"},
        {"count": -1, "dtype": "<i8"},
        {"count": "four", "dtype": "<i8"},
        "not an object",
        {"count": (protocol.MAX_FRAME_BYTES // 8) + 1, "dtype": "<i8"},
    ],
)
def test_bad_binary_declarations_raise(binary):
    with pytest.raises(ProtocolError):
        protocol.payload_nbytes(binary)


@pytest.mark.parametrize("count", [True, False])
def test_boolean_count_is_rejected(count):
    # isinstance(True, int) is True and True * 8 == 8: before the explicit
    # bool check a {"count": true} header committed the server to reading
    # 8 phantom payload bytes, desyncing the stream.
    with pytest.raises(ProtocolError, match="count"):
        protocol.payload_nbytes({"count": count, "dtype": "<i8"})


def test_payload_length_mismatch_raises():
    keys = np.arange(16, dtype=np.int64)
    header, payload = protocol.binary_ingest_parts(keys)
    with pytest.raises(ProtocolError):
        protocol.arrays_from_payload(header["binary"], payload[:-8])


def test_jsonable_keys_handles_numpy_scalars():
    assert protocol.jsonable_keys([np.int64(3), "q", np.float64(2.5)]) == [
        3,
        "q",
        2.5,
    ]
    assert protocol.jsonable_keys(np.arange(3)) == [0, 1, 2]
