"""Property-based merge-equivalence suite.

The core property of a mergeable sketch: split a stream into k parts any way
you like, ingest each part into its own (identically-seeded) sketch, merge,
and you must get back what a single sketch ingesting the whole stream would
hold — *bit-identically* for the linear sketches (Count-Min, Count Sketch,
AMS, Bloom, exact counter), and within the summary guarantees for the
order-dependent ones (Misra–Gries, Space-Saving, conservative CMS).

Hypothesis drives the stream content and split points; a seeded-random
parametrized sweep covers the cases hypothesis shrinks away from (many
shards, string keys).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import (
    AmsSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    ExactCounter,
    IdealHeavyHitterOracle,
    IncompatibleSketchError,
    LearnedCountMinSketch,
    MisraGries,
    SpaceSaving,
)
from repro.streams.stream import Element


def split_stream(keys, cut_points):
    """Split a key list at the (sorted, deduplicated) cut points."""
    bounds = [0] + sorted({min(cut, len(keys)) for cut in cut_points}) + [len(keys)]
    return [keys[start:end] for start, end in zip(bounds[:-1], bounds[1:])]


def ingest_split_and_merge(factory, parts):
    """One sketch per part, merged left to right."""
    sketches = []
    for part in parts:
        sketch = factory()
        if len(part):
            sketch.update_batch(part)
        sketches.append(sketch)
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged.merge(sketch)
    return merged


streams = st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=400)
cuts = st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=5)


class TestLinearSketchesBitIdentical:
    """Linear sketches: merged state equals single-sketch ingestion exactly."""

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_count_min(self, keys, cut_points):
        factory = lambda: CountMinSketch(64, depth=3, seed=7)
        serial = factory()
        serial.update_batch(keys)
        merged = ingest_split_and_merge(factory, split_stream(keys, cut_points))
        assert (merged.counters() == serial.counters()).all()

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_count_sketch(self, keys, cut_points):
        factory = lambda: CountSketch(64, depth=3, seed=7)
        serial = factory()
        serial.update_batch(keys)
        merged = ingest_split_and_merge(factory, split_stream(keys, cut_points))
        assert (merged.counters() == serial.counters()).all()

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_ams(self, keys, cut_points):
        factory = lambda: AmsSketch(16, means_groups=4, seed=7)
        serial = factory()
        serial.update_batch(keys)
        merged = ingest_split_and_merge(factory, split_stream(keys, cut_points))
        assert (merged._counters == serial._counters).all()
        assert merged.estimate_second_moment() == serial.estimate_second_moment()

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_exact_counter(self, keys, cut_points):
        serial = ExactCounter()
        serial.update_batch(keys)
        merged = ingest_split_and_merge(ExactCounter, split_stream(keys, cut_points))
        queries = sorted(set(keys))
        assert (merged.estimate_batch(queries) == serial.estimate_batch(queries)).all()

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_bloom_union(self, keys, cut_points):
        factory = lambda: BloomFilter(512, num_hashes=3, seed=7)
        serial = factory()
        for key in keys:
            serial.add(key)
        parts = split_stream(keys, cut_points)
        filters = []
        for part in parts:
            bloom = factory()
            for key in part:
                bloom.add(key)
            filters.append(bloom)
        merged = filters[0]
        for bloom in filters[1:]:
            merged.merge(bloom)
        assert (merged._bits == serial._bits).all()
        assert merged.num_inserted == serial.num_inserted
        # Union never loses a key: no false negatives after merging.
        assert all(key in merged for key in keys)


class TestLearnedCms:
    @settings(max_examples=20, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_merge_matches_serial_when_capacity_unbound(self, keys, cut_points):
        # Heavy capacity >= distinct heavy keys, so routing never overflows
        # and merged estimates must match serial ones exactly.
        heavy = [key for key in sorted(set(keys))[:8]]
        oracle = IdealHeavyHitterOracle(heavy)
        factory = lambda: LearnedCountMinSketch(
            128, num_heavy_buckets=8, oracle=oracle, depth=2, seed=7
        )
        serial = factory()
        serial.update_batch(keys)
        merged = ingest_split_and_merge(factory, split_stream(keys, cut_points))
        queries = sorted(set(keys))
        assert (merged.estimate_batch(queries) == serial.estimate_batch(queries)).all()


class TestCounterSummariesWithinGuarantees:
    """MG / Space-Saving merges keep their summary error guarantees."""

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_misra_gries_merge_guarantee(self, keys, cut_points):
        num_counters = 8
        merged = ingest_split_and_merge(
            lambda: MisraGries(num_counters), split_stream(keys, cut_points)
        )
        truth = ExactCounter()
        truth.update_batch(keys)
        bound = len(keys) / (num_counters + 1)
        assert len(merged.tracked_items()) <= num_counters
        assert merged._stream_length == len(keys)
        for key in set(keys):
            true_count = truth.estimate(Element(key=key))
            estimate = merged.estimate(Element(key=key))
            # Under-estimate, by at most N / (k + 1).
            assert estimate <= true_count
            assert true_count - estimate <= bound + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_space_saving_merge_guarantee(self, keys, cut_points):
        num_counters = 8
        merged = ingest_split_and_merge(
            lambda: SpaceSaving(num_counters), split_stream(keys, cut_points)
        )
        truth = ExactCounter()
        truth.update_batch(keys)
        assert len(merged.tracked_items()) <= num_counters
        assert merged._stream_length == len(keys)
        for key, count in merged.tracked_items().items():
            # Tracked estimates never under-estimate the true frequency.
            assert count >= truth.estimate(Element(key=key))


class TestConservativeCms:
    @settings(max_examples=25, deadline=None)
    @given(keys=streams, cut_points=cuts)
    def test_merge_keeps_one_sided_guarantee(self, keys, cut_points):
        factory = lambda: CountMinSketch(64, depth=3, seed=7, conservative=True)
        merged = ingest_split_and_merge(factory, split_stream(keys, cut_points))
        truth = ExactCounter()
        truth.update_batch(keys)
        queries = sorted(set(keys))
        # Merged conservative tables still never under-estimate.
        assert (
            merged.estimate_batch(queries) >= truth.estimate_batch(queries)
        ).all()


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("num_parts", [2, 4, 9])
@pytest.mark.parametrize("string_keys", [False, True])
def test_randomized_multi_way_merge_count_min(seed, num_parts, string_keys):
    """Many-way merges over larger streams than hypothesis explores."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1000, size=5000)
    if string_keys:
        keys = [f"query-{value}" for value in keys.tolist()]
    factory = lambda: CountMinSketch(256, depth=4, seed=seed, hash_scheme="universal")
    serial = factory()
    serial.update_batch(keys)
    bounds = np.linspace(0, len(keys), num_parts + 1).astype(int)
    parts = [keys[start:end] for start, end in zip(bounds[:-1], bounds[1:])]
    merged = ingest_split_and_merge(factory, parts)
    assert (merged.counters() == serial.counters()).all()


@pytest.mark.parametrize("hash_scheme", ["universal", "tabulation"])
def test_merge_works_for_both_hash_schemes(hash_scheme):
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 300, size=2000)
    factory = lambda: CountMinSketch(128, depth=3, seed=5, hash_scheme=hash_scheme)
    serial = factory()
    serial.update_batch(keys)
    merged = ingest_split_and_merge(factory, [keys[:900], keys[900:]])
    assert (merged.counters() == serial.counters()).all()


def test_weighted_batches_merge_bit_identically():
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 100, size=800)
    counts = rng.integers(0, 5, size=800)
    factory = lambda: CountSketch(64, depth=3, seed=2)
    serial = factory()
    serial.update_batch(keys, counts)
    first, second = factory(), factory()
    first.update_batch(keys[:400], counts[:400])
    second.update_batch(keys[400:], counts[400:])
    assert (first.merge(second).counters() == serial.counters()).all()


class TestIncompatibleConfigs:
    def test_different_seeds_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            CountMinSketch(64, depth=2, seed=1).merge(CountMinSketch(64, depth=2, seed=2))

    def test_different_shapes_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            CountMinSketch(64, depth=2, seed=1).merge(CountMinSketch(32, depth=2, seed=1))
        with pytest.raises(IncompatibleSketchError):
            CountSketch(64, depth=2, seed=1).merge(CountSketch(64, depth=3, seed=1))

    def test_different_hash_schemes_rejected(self):
        universal = CountMinSketch(64, depth=2, seed=1, hash_scheme="universal")
        tabulation = CountMinSketch(64, depth=2, seed=1, hash_scheme="tabulation")
        with pytest.raises(IncompatibleSketchError):
            universal.merge(tabulation)

    def test_conservative_flag_mismatch_rejected(self):
        plain = CountMinSketch(64, depth=2, seed=1)
        conservative = CountMinSketch(64, depth=2, seed=1, conservative=True)
        with pytest.raises(IncompatibleSketchError):
            plain.merge(conservative)

    def test_cross_type_merge_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            CountMinSketch(64, depth=2, seed=1).merge(CountSketch(64, depth=2, seed=1))
        with pytest.raises(IncompatibleSketchError):
            ExactCounter().merge(MisraGries(4))

    def test_summary_capacity_mismatch_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            MisraGries(4).merge(MisraGries(8))
        with pytest.raises(IncompatibleSketchError):
            SpaceSaving(4).merge(SpaceSaving(8))

    def test_ams_mismatches_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            AmsSketch(16, 4, seed=1).merge(AmsSketch(16, 4, seed=2))
        with pytest.raises(IncompatibleSketchError):
            AmsSketch(16, 4, seed=1).merge(AmsSketch(32, 4, seed=1))

    def test_bloom_mismatches_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            BloomFilter(128, num_hashes=3, seed=1).merge(
                BloomFilter(128, num_hashes=3, seed=2)
            )
        with pytest.raises(IncompatibleSketchError):
            BloomFilter(128, num_hashes=3, seed=1).merge(
                BloomFilter(256, num_hashes=3, seed=1)
            )

    def test_learned_cms_shadowed_overflow_rejected(self):
        # num_heavy_buckets=1 over heavy keys {A, B}: shard one tracks B and
        # overflows 100 arrivals of A into its CMS; shard two tracks A
        # exactly.  Merging would shadow the CMS-held mass of A behind the
        # exact count 1 (a silent 100x under-estimate), so it must raise.
        oracle = IdealHeavyHitterOracle(["A", "B"])
        first = LearnedCountMinSketch(64, 1, oracle, depth=2, seed=1)
        first.update_batch(["B"] + ["A"] * 100)
        second = LearnedCountMinSketch(64, 1, oracle, depth=2, seed=1)
        second.update_batch(["A"])
        with pytest.raises(IncompatibleSketchError, match="capacity"):
            first.merge(second)
        with pytest.raises(IncompatibleSketchError, match="capacity"):
            second.merge(first)

    def test_learned_cms_overflow_on_both_sides_merges_exactly(self):
        # The same overflow key held in the CMS on *both* sides is safe:
        # queries keep routing it to the (linear) CMS, so the merge matches
        # serial ingestion exactly.
        oracle = IdealHeavyHitterOracle(["A", "B"])
        factory = lambda: LearnedCountMinSketch(64, 1, oracle, depth=2, seed=1)
        stream = ["B"] + ["A"] * 50
        serial = factory()
        serial.update_batch(stream + stream)
        first, second = factory(), factory()
        first.update_batch(stream)
        second.update_batch(stream)
        first.merge(second)
        queries = ["A", "B"]
        assert (
            first.estimate_batch(queries) == serial.estimate_batch(queries)
        ).all()

    def test_learned_cms_merged_size_charges_extra_heavy_slots(self):
        # Disjoint heavy sets merge into more unique buckets than the
        # configured capacity; size_bytes must charge what is actually held.
        oracle = IdealHeavyHitterOracle([0, 1, 2, 3])
        factory = lambda: LearnedCountMinSketch(128, 2, oracle, depth=2, seed=1)
        first, second = factory(), factory()
        first.update_batch([0, 1])
        second.update_batch([2, 3])
        single_size = factory().size_bytes
        first.merge(second)
        assert first.num_heavy_tracked == 4
        assert first.size_bytes > single_size

    def test_learned_cms_oracle_mismatch_rejected(self):
        first = LearnedCountMinSketch(
            128, 4, IdealHeavyHitterOracle([1, 2]), depth=2, seed=1
        )
        second = LearnedCountMinSketch(
            128, 4, IdealHeavyHitterOracle([3, 4]), depth=2, seed=1
        )
        with pytest.raises(IncompatibleSketchError):
            first.merge(second)

    def test_merge_returns_self_for_chaining(self):
        first = CountMinSketch(64, depth=2, seed=1)
        second = CountMinSketch(64, depth=2, seed=1)
        assert first.merge(second) is first
