"""Tests for the Learned Count-Min Sketch (Hsu et al. baseline)."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier
from repro.sketches.learned_cms import (
    ClassifierHeavyHitterOracle,
    IdealHeavyHitterOracle,
    LearnedCountMinSketch,
)
from repro.streams.stream import Element


def zipf_stream(num_keys=200, arrivals=5000, seed=0):
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_keys + 1)
    weights /= weights.sum()
    keys = rng.choice(num_keys, size=arrivals, p=weights)
    return [Element(key=int(k)) for k in keys], np.bincount(keys, minlength=num_keys)


class TestIdealHeavyHitterOracle:
    def test_from_frequencies_takes_top_keys(self):
        oracle = IdealHeavyHitterOracle.from_frequencies({"a": 10, "b": 5, "c": 1}, 2)
        assert oracle.is_heavy(Element(key="a"))
        assert oracle.is_heavy(Element(key="b"))
        assert not oracle.is_heavy(Element(key="c"))
        assert len(oracle) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IdealHeavyHitterOracle.from_frequencies({"a": 1}, -1)

    def test_zero_heavy_hitters_allowed(self):
        oracle = IdealHeavyHitterOracle.from_frequencies({"a": 1}, 0)
        assert not oracle.is_heavy(Element(key="a"))


class TestClassifierHeavyHitterOracle:
    def test_wraps_fitted_classifier(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([1, 1, 0, 0])
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        oracle = ClassifierHeavyHitterOracle(tree)
        assert oracle.is_heavy(Element.with_features("hot", [0.05]))
        assert not oracle.is_heavy(Element.with_features("cold", [5.05]))

    def test_custom_featurizer(self):
        X = np.array([[1.0], [0.0]])
        y = np.array([1, 0])
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        oracle = ClassifierHeavyHitterOracle(
            tree, featurizer=lambda element: [1.0 if "www" in str(element.key) else 0.0]
        )
        assert oracle.is_heavy(Element(key="www.google.com"))
        assert not oracle.is_heavy(Element(key="rare query text"))


class TestLearnedCountMinSketch:
    def test_heavy_hitters_counted_exactly(self):
        stream, counts = zipf_stream()
        oracle = IdealHeavyHitterOracle.from_frequencies(
            {k: counts[k] for k in range(len(counts))}, 10
        )
        lcms = LearnedCountMinSketch(
            total_buckets=100, num_heavy_buckets=10, oracle=oracle, depth=1, seed=0
        )
        for element in stream:
            lcms.update(element)
        top10 = np.argsort(counts)[::-1][:10]
        for key in top10:
            assert lcms.estimate(Element(key=int(key))) == counts[key]

    def test_non_heavy_keys_never_underestimated(self):
        stream, counts = zipf_stream(seed=1)
        oracle = IdealHeavyHitterOracle.from_frequencies(
            {k: counts[k] for k in range(len(counts))}, 10
        )
        lcms = LearnedCountMinSketch(
            total_buckets=120, num_heavy_buckets=10, oracle=oracle, depth=2, seed=1
        )
        for element in stream:
            lcms.update(element)
        for key in range(len(counts)):
            assert lcms.estimate(Element(key=int(key))) >= counts[key]

    def test_unique_buckets_cost_double(self):
        oracle = IdealHeavyHitterOracle([])
        lcms = LearnedCountMinSketch(
            total_buckets=100, num_heavy_buckets=20, oracle=oracle, depth=1
        )
        # 20 unique buckets at 8 bytes + 60 CMS buckets at 4 bytes.
        assert lcms.size_bytes == 20 * 8 + 60 * 4

    def test_budget_overflow_rejected(self):
        oracle = IdealHeavyHitterOracle([])
        with pytest.raises(ValueError):
            LearnedCountMinSketch(
                total_buckets=20, num_heavy_buckets=10, oracle=oracle, depth=1
            )

    def test_heavy_bucket_capacity_enforced(self):
        # Oracle claims everything is heavy, but only 5 unique buckets exist.
        class AlwaysHeavy(IdealHeavyHitterOracle):
            def is_heavy(self, element):
                return True

        lcms = LearnedCountMinSketch(
            total_buckets=40, num_heavy_buckets=5, oracle=AlwaysHeavy([]), depth=1, seed=2
        )
        for key in range(20):
            lcms.update(Element(key=key))
        assert lcms.num_heavy_tracked == 5

    def test_beats_plain_cms_on_zipf_expected_error(self):
        from repro.sketches.count_min import CountMinSketch

        stream, counts = zipf_stream(num_keys=300, arrivals=8000, seed=2)
        total_buckets = 80
        frequencies = {k: counts[k] for k in range(len(counts))}
        oracle = IdealHeavyHitterOracle.from_frequencies(frequencies, 20)
        lcms = LearnedCountMinSketch(
            total_buckets=total_buckets, num_heavy_buckets=20, oracle=oracle, depth=1, seed=3
        )
        cms = CountMinSketch.from_total_buckets(total_buckets, depth=1, seed=3)
        for element in stream:
            lcms.update(element)
            cms.update(element)

        def expected_error(sketch):
            total = counts.sum()
            return sum(
                counts[k] * abs(sketch.estimate(Element(key=int(k))) - counts[k])
                for k in range(len(counts))
            ) / total

        assert expected_error(lcms) < expected_error(cms)
