"""Tests for the AMS second-moment sketch."""

import numpy as np
import pytest

from repro.sketches.ams import AmsSketch
from repro.streams.stream import Element


def second_moment(counts):
    return float(np.sum(np.asarray(counts, dtype=float) ** 2))


class TestAmsSketch:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AmsSketch(num_estimators=0)
        with pytest.raises(ValueError):
            AmsSketch(num_estimators=10, means_groups=3)

    def test_empty_stream_estimates_zero(self):
        sketch = AmsSketch(num_estimators=16, means_groups=4, seed=0)
        assert sketch.estimate_second_moment() == 0.0

    def test_single_heavy_key_estimated_exactly(self):
        sketch = AmsSketch(num_estimators=32, means_groups=4, seed=0)
        for _ in range(25):
            sketch.update(Element(key="only"))
        # With a single distinct key every counter is ±25, so F2 is exact.
        assert sketch.estimate_second_moment() == pytest.approx(625.0)

    def test_estimate_within_reasonable_relative_error(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=4000)
        counts = np.bincount(keys, minlength=50)
        sketch = AmsSketch(num_estimators=256, means_groups=16, seed=1)
        sketch.update_many(Element(key=int(k)) for k in keys)
        truth = second_moment(counts)
        estimate = sketch.estimate_second_moment()
        assert abs(estimate - truth) / truth < 0.35

    def test_more_estimators_reduce_error_on_average(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 100, size=3000)
        counts = np.bincount(keys, minlength=100)
        truth = second_moment(counts)

        def relative_error(num_estimators, seed):
            sketch = AmsSketch(num_estimators=num_estimators, means_groups=8, seed=seed)
            sketch.update_many(Element(key=int(k)) for k in keys)
            return abs(sketch.estimate_second_moment() - truth) / truth

        small = np.mean([relative_error(16, seed) for seed in range(5)])
        large = np.mean([relative_error(256, seed) for seed in range(5)])
        assert large <= small + 0.05

    def test_size_bytes(self):
        assert AmsSketch(num_estimators=64, means_groups=8).size_bytes == 256
