"""Tests for the Count Sketch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.count_sketch import CountSketch
from repro.streams.stream import Element


class TestConstruction:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CountSketch(width=0)
        with pytest.raises(ValueError):
            CountSketch(width=4, depth=0)

    def test_from_total_buckets(self):
        sketch = CountSketch.from_total_buckets(60, depth=3)
        assert sketch.width == 20
        assert sketch.total_buckets == 60
        assert sketch.size_bytes == 240

    def test_from_total_buckets_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            CountSketch.from_total_buckets(1, depth=2)


class TestEstimation:
    def test_exact_when_no_collisions(self):
        sketch = CountSketch(width=1024, depth=5, seed=0)
        for _ in range(9):
            sketch.update(Element(key="alpha"))
        for _ in range(2):
            sketch.update(Element(key="beta"))
        assert sketch.estimate(Element(key="alpha")) == 9
        assert sketch.estimate(Element(key="beta")) == 2

    def test_estimates_can_err_in_both_directions(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 200, size=3000)
        sketch = CountSketch(width=32, depth=1, seed=1)
        for key in keys:
            sketch.update(Element(key=int(key)))
        counts = np.bincount(keys, minlength=200)
        errors = np.array(
            [sketch.estimate(Element(key=int(k))) - counts[k] for k in range(200)]
        )
        assert (errors > 0).any()
        assert (errors < 0).any()

    def test_median_across_levels_reduces_error(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 300, size=5000)
        counts = np.bincount(keys, minlength=300)

        def mean_abs_error(depth):
            sketch = CountSketch(width=64, depth=depth, seed=3)
            for key in keys:
                sketch.update(Element(key=int(key)))
            return np.mean(
                [abs(sketch.estimate(Element(key=int(k))) - counts[k]) for k in range(300)]
            )

        assert mean_abs_error(5) <= mean_abs_error(1) + 1.0

    def test_counter_sum_is_signed(self):
        sketch = CountSketch(width=16, depth=2, seed=4)
        for key in range(100):
            sketch.update(Element(key=key))
        # Signed updates keep the total close to zero relative to 2*100.
        assert abs(sketch.counters().sum()) < 2 * 100


@given(keys=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200))
@settings(max_examples=25, deadline=None)
def test_count_sketch_is_unbiased_for_isolated_heavy_key(keys):
    """A key hashed with a wide sketch is estimated exactly (no collisions)."""
    sketch = CountSketch(width=4096, depth=3, seed=0)
    for key in keys:
        sketch.update(Element(key=key))
    target = keys[0]
    estimate = sketch.estimate(Element(key=target))
    assert estimate == pytest.approx(keys.count(target), abs=1e-9)
