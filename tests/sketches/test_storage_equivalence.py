"""Property suite: every storage backend is bit-identical and interchangeable.

For every table sketch and every ordered backend pair (src → dst), hypothesis
drives a weighted stream; the sketch is ingested on ``src``, serialized, and
loaded onto ``dst`` — counters, estimates, and subsequent ``merge()`` results
must all be bit-identical to a dense sketch that saw the same stream.  This
is the acceptance property of the storage subsystem: *where* the counters
live never changes *what* they say.
"""

import itertools
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.storage import STORAGE_BACKENDS
from repro.sketches import AmsSketch, BloomFilter, CountMinSketch, CountSketch

BACKEND_PAIRS = list(itertools.product(STORAGE_BACKENDS, STORAGE_BACKENDS))
PAIR_IDS = [f"{src}->{dst}" for src, dst in BACKEND_PAIRS]

streams = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200)
weights = st.integers(min_value=1, max_value=4)


def release(sketch) -> None:
    """Close a sketch's storage and delete its mmap file, if any."""
    path = sketch.storage_path
    sketch.close()
    if path is not None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


def roundtrip(sketch, cls, dst):
    """Serialize on the sketch's backend, load onto ``dst``."""
    loaded = cls.from_bytes(sketch.to_bytes(), storage=dst)
    assert loaded.storage_backend == dst
    return loaded


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize(("src", "dst"), BACKEND_PAIRS, ids=PAIR_IDS)
    @given(keys=streams, weight=weights)
    @settings(max_examples=12, deadline=None)
    def test_count_min(self, src, dst, keys, weight):
        counts = np.full(len(keys), weight, dtype=np.int64)
        dense = CountMinSketch(64, 2, seed=9)
        dense.update_batch(keys, counts)
        sketch = CountMinSketch(64, 2, seed=9, storage=src)
        sketch.update_batch(keys, counts)
        loaded = roundtrip(sketch, CountMinSketch, dst)
        try:
            assert (sketch.counters() == dense.counters()).all()
            assert (loaded.counters() == dense.counters()).all()
            queries = sorted(set(keys))
            assert (
                loaded.estimate_batch(queries) == dense.estimate_batch(queries)
            ).all()
            # merge() across backends is bit-identical to dense ⊕ dense.
            dense_twin = CountMinSketch(64, 2, seed=9)
            dense_twin.update_batch(keys[::2])
            expected = CountMinSketch(64, 2, seed=9)
            expected.update_batch(keys, counts)
            expected.update_batch(keys[::2])
            loaded.merge(dense_twin)
            assert (loaded.counters() == expected.counters()).all()
        finally:
            release(sketch)
            release(loaded)

    @pytest.mark.parametrize(("src", "dst"), BACKEND_PAIRS, ids=PAIR_IDS)
    @given(keys=streams)
    @settings(max_examples=10, deadline=None)
    def test_count_sketch(self, src, dst, keys):
        dense = CountSketch(64, 3, seed=11)
        dense.update_batch(keys)
        sketch = CountSketch(64, 3, seed=11, storage=src)
        sketch.update_batch(keys)
        loaded = roundtrip(sketch, CountSketch, dst)
        try:
            assert (loaded.counters() == dense.counters()).all()
            queries = sorted(set(keys))
            assert (
                loaded.estimate_batch(queries) == dense.estimate_batch(queries)
            ).all()
        finally:
            release(sketch)
            release(loaded)

    @pytest.mark.parametrize(("src", "dst"), BACKEND_PAIRS, ids=PAIR_IDS)
    @given(keys=streams)
    @settings(max_examples=10, deadline=None)
    def test_ams(self, src, dst, keys):
        dense = AmsSketch(16, 4, seed=13)
        dense.update_batch(keys)
        sketch = AmsSketch(16, 4, seed=13, storage=src)
        sketch.update_batch(keys)
        loaded = roundtrip(sketch, AmsSketch, dst)
        try:
            assert (loaded._counters == dense._counters).all()
            assert loaded.estimate_second_moment() == dense.estimate_second_moment()
            other = AmsSketch(16, 4, seed=13)
            other.update_batch(keys[:7])
            expected = AmsSketch(16, 4, seed=13)
            expected.update_batch(keys)
            expected.update_batch(keys[:7])
            loaded.merge(other)
            assert (loaded._counters == expected._counters).all()
        finally:
            release(sketch)
            release(loaded)

    @pytest.mark.parametrize(("src", "dst"), BACKEND_PAIRS, ids=PAIR_IDS)
    @given(keys=streams)
    @settings(max_examples=10, deadline=None)
    def test_bloom(self, src, dst, keys):
        dense = BloomFilter(512, num_hashes=3, seed=15)
        dense.add_batch(keys)
        sketch = BloomFilter(512, num_hashes=3, seed=15, storage=src)
        sketch.add_batch(keys)
        loaded = roundtrip(sketch, BloomFilter, dst)
        try:
            assert (loaded._bits == dense._bits).all()
            probes = list(range(60))
            assert (
                loaded.contains_batch(probes) == dense.contains_batch(probes)
            ).all()
            other = BloomFilter(512, num_hashes=3, seed=15)
            other.add_batch([k + 1 for k in keys])
            expected = BloomFilter(512, num_hashes=3, seed=15)
            expected.add_batch(keys)
            expected.add_batch([k + 1 for k in keys])
            loaded.merge(other)
            assert (loaded._bits == expected._bits).all()
        finally:
            release(sketch)
            release(loaded)


@pytest.mark.parametrize("live", [False, True], ids=["embedded", "live"])
def test_mmap_snapshot_forms_agree(tmp_path, live):
    """Embedded and live (path-reference) mmap buffers restore identically."""
    keys = np.random.default_rng(1).integers(0, 99, size=3000)
    path = str(tmp_path / "t.bin")
    sketch = CountMinSketch(128, 2, seed=4, storage="mmap", storage_path=path)
    sketch.update_batch(keys)
    blob = sketch.to_bytes(live=live)
    loaded = CountMinSketch.from_bytes(blob)
    assert (loaded.counters() == sketch.counters()).all()
    release(loaded)
    release(sketch)
