"""Tests for the Count-Min Sketch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.count_min import CountMinSketch
from repro.streams.stream import Element


def stream_of(keys):
    return [Element(key=key) for key in keys]


class TestConstruction:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0, depth=1)
        with pytest.raises(ValueError):
            CountMinSketch(width=10, depth=0)

    def test_from_error_guarantee_sizes(self):
        sketch = CountMinSketch.from_error_guarantee(epsilon=0.01, delta=0.01)
        assert sketch.width >= np.e / 0.01 - 1
        assert sketch.depth >= np.log(1 / 0.01) - 1

    def test_from_error_guarantee_validates(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error_guarantee(epsilon=0.0, delta=0.5)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_guarantee(epsilon=0.5, delta=1.5)

    def test_from_total_buckets_divides_budget(self):
        sketch = CountMinSketch.from_total_buckets(100, depth=4)
        assert sketch.width == 25
        assert sketch.total_buckets == 100
        assert sketch.size_bytes == 400

    def test_from_total_buckets_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_total_buckets(2, depth=4)


class TestEstimation:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=8, depth=2, seed=0)
        keys = [f"key{i}" for i in range(100)]
        true_counts = {key: (i % 5) + 1 for i, key in enumerate(keys)}
        for key, count in true_counts.items():
            for _ in range(count):
                sketch.update(Element(key=key))
        for key, count in true_counts.items():
            assert sketch.estimate(Element(key=key)) >= count

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=1024, depth=4, seed=1)
        sketch.update_many(stream_of(["a"] * 7 + ["b"] * 3))
        assert sketch.estimate(Element(key="a")) == 7
        assert sketch.estimate(Element(key="b")) == 3

    def test_unseen_key_estimate_bounded_by_collisions(self):
        sketch = CountMinSketch(width=512, depth=4, seed=2)
        sketch.update_many(stream_of(["x"] * 10))
        assert sketch.estimate(Element(key="never-seen")) <= 10

    def test_error_guarantee_holds_on_average(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, size=5000)
        sketch = CountMinSketch(width=272, depth=3, seed=3)  # eps ~ 0.01
        for key in keys:
            sketch.update(Element(key=int(key)))
        counts = np.bincount(keys, minlength=500)
        errors = [
            sketch.estimate(Element(key=int(k))) - counts[k] for k in range(500)
        ]
        # eps * ||f||_1 = 0.01 * 5000 = 50; the vast majority of estimates
        # must respect the bound.
        violations = sum(error > 50 for error in errors)
        assert violations < 25

    def test_counters_sum_equals_depth_times_updates(self):
        sketch = CountMinSketch(width=16, depth=3, seed=4)
        sketch.update_many(stream_of(range(200)))
        assert sketch.counters().sum() == 3 * 200


class TestConservativeUpdate:
    def test_conservative_still_never_underestimates(self):
        plain = CountMinSketch(width=8, depth=2, seed=5)
        conservative = CountMinSketch(width=8, depth=2, seed=5, conservative=True)
        keys = [i % 40 for i in range(2000)]
        for key in keys:
            element = Element(key=key)
            plain.update(element)
            conservative.update(element)
        counts = np.bincount(keys, minlength=40)
        for key in range(40):
            element = Element(key=key)
            assert conservative.estimate(element) >= counts[key]
            # Conservative update can only tighten the overestimate.
            assert conservative.estimate(element) <= plain.estimate(element)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    depth=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_count_min_overestimation_property(keys, depth):
    """CMS point queries always upper-bound the true count."""
    sketch = CountMinSketch(width=16, depth=depth, seed=0)
    for key in keys:
        sketch.update(Element(key=key))
    for key in set(keys):
        assert sketch.estimate(Element(key=key)) >= keys.count(key)
