"""The loads() kind cross-check: no dispatch by buffer tag alone.

Bugfix satellite of the api_redesign issue: a buffer whose tag is not the
canonical kind name of the class it resolves to — a class re-registered
under a second tag, or registries that disagree — must be rejected with a
clear error instead of silently rehydrated, and callers can pin the kind
they expect with ``expect_kind``.
"""

import pytest

from repro.sketches import CountMinSketch, SerializationError, loads
from repro.sketches.serialization import _REGISTRY, pack, register_sketch


class TestExpectKind:
    def test_matching_kind_loads(self):
        sketch = CountMinSketch(width=8, depth=2, seed=1)
        restored = loads(sketch.to_bytes(), expect_kind="count_min")
        assert isinstance(restored, CountMinSketch)

    def test_mismatched_kind_rejected(self):
        sketch = CountMinSketch(width=8, depth=2, seed=1)
        with pytest.raises(SerializationError, match="expected kind 'bloom'"):
            loads(sketch.to_bytes(), expect_kind="bloom")

    def test_unknown_tag_still_rejected(self):
        with pytest.raises(SerializationError, match="unknown sketch tag"):
            loads(pack("never_registered", {}, {}))


class TestNoDispatchByTagAlone:
    def test_stale_alias_tag_rejected(self):
        """A class re-registered under a new tag must not load via the old one."""

        class Doomed(CountMinSketch):
            pass

        register_sketch("doomed_v1")(Doomed)
        register_sketch("doomed_v2")(Doomed)  # canonical kind moves on
        try:
            buffer = pack("doomed_v1", {}, {})
            with pytest.raises(SerializationError, match="canonical kind"):
                loads(buffer)
            # The canonical tag keeps working (from_bytes itself will then
            # reject the payload tag, which is the count_min wire format).
            with pytest.raises(SerializationError):
                loads(pack("doomed_v2", {}, {}))
        finally:
            _REGISTRY.pop("doomed_v1", None)
            _REGISTRY.pop("doomed_v2", None)

    def test_disagreeing_estimator_registry_rejected(self):
        """A serial tag whose class claims a different build kind is rejected."""

        class Doomed(CountMinSketch):
            pass

        register_sketch("doomed_tag")(Doomed)
        Doomed.ESTIMATOR_KIND = "some_other_kind"
        try:
            with pytest.raises(SerializationError, match="must agree"):
                loads(pack("doomed_tag", {}, {}))
        finally:
            _REGISTRY.pop("doomed_tag", None)

    def test_every_registered_class_is_canonical(self):
        """The shipped registry never trips the cross-checks."""
        import repro.api.session  # noqa: F401
        import repro.core.sharding  # noqa: F401
        import repro.sketches  # noqa: F401

        for tag, cls in _REGISTRY.items():
            assert getattr(cls, "SERIAL_TAG", None) == tag
            kind = getattr(cls, "ESTIMATOR_KIND", None)
            assert kind is None or kind == tag
