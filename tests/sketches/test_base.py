"""Tests for the estimator base interface and the exact counter."""

import pytest

from repro.sketches.base import BYTES_PER_BUCKET, ExactCounter, FrequencyEstimator
from repro.streams.stream import Element


class TestExactCounter:
    def test_counts_exactly(self):
        counter = ExactCounter()
        counter.update_many([Element(key="a"), Element(key="a"), Element(key="b")])
        assert counter.estimate(Element(key="a")) == 2
        assert counter.estimate(Element(key="b")) == 1
        assert counter.estimate(Element(key="missing")) == 0

    def test_size_grows_with_distinct_keys(self):
        counter = ExactCounter()
        for key in range(10):
            counter.update(Element(key=key))
        assert counter.size_bytes == 10 * BYTES_PER_BUCKET
        assert len(counter) == 10

    def test_size_kb_conversion(self):
        counter = ExactCounter()
        for key in range(250):
            counter.update(Element(key=key))
        assert counter.size_kb == pytest.approx(1.0)

    def test_estimate_key_convenience(self):
        counter = ExactCounter()
        counter.update(Element(key="q"))
        assert counter.estimate_key("q") == 1


class TestInterface:
    def test_abstract_class_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            FrequencyEstimator()

    def test_update_many_delegates_to_update(self):
        class Recorder(FrequencyEstimator):
            def __init__(self):
                self.updates = []

            def update(self, element):
                self.updates.append(element.key)

            def estimate(self, element):
                return 0.0

            @property
            def size_bytes(self):
                return 0

        recorder = Recorder()
        recorder.update_many([Element(key=1), Element(key=2)])
        assert recorder.updates == [1, 2]
