"""Tests for the estimator base interface and the exact counter."""

import pytest

from repro.sketches.base import BYTES_PER_BUCKET, ExactCounter, FrequencyEstimator
from repro.streams.stream import Element


class TestExactCounter:
    def test_counts_exactly(self):
        counter = ExactCounter()
        counter.update_many([Element(key="a"), Element(key="a"), Element(key="b")])
        assert counter.estimate(Element(key="a")) == 2
        assert counter.estimate(Element(key="b")) == 1
        assert counter.estimate(Element(key="missing")) == 0

    def test_size_grows_with_distinct_keys(self):
        counter = ExactCounter()
        for key in range(10):
            counter.update(Element(key=key))
        assert counter.size_bytes == 10 * BYTES_PER_BUCKET
        assert len(counter) == 10

    def test_size_kb_conversion(self):
        counter = ExactCounter()
        for key in range(250):
            counter.update(Element(key=key))
        assert counter.size_kb == pytest.approx(1.0)

    def test_estimate_key_convenience(self):
        counter = ExactCounter()
        counter.update(Element(key="q"))
        assert counter.estimate_key("q") == 1


class TestInterface:
    def test_abstract_class_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            FrequencyEstimator()

    def test_update_many_delegates_to_update(self):
        class Recorder(FrequencyEstimator):
            def __init__(self):
                self.updates = []

            def update(self, element):
                self.updates.append(element.key)

            def estimate(self, element):
                return 0.0

            @property
            def size_bytes(self):
                return 0

        recorder = Recorder()
        recorder.update_many([Element(key=1), Element(key=2)])
        assert recorder.updates == [1, 2]


class TestScalarFastPath:
    """Regression: scalar updates must not re-normalize through as_key_batch.

    The scalar ``update`` wrappers used to call ``update_batch([key])``,
    which re-entered :func:`as_key_batch` — a fresh ndarray allocation per
    arrival.  They now reuse a per-instance cached ``(keys, counts)`` pair
    and feed ``_ingest`` directly.
    """

    def _counting_as_key_batch(self, monkeypatch, module):
        import repro.sketches.base as base_module

        calls = {"count": 0}
        original = base_module.as_key_batch

        def counting(keys, counts=None):
            calls["count"] += 1
            return original(keys, counts)

        monkeypatch.setattr(base_module, "as_key_batch", counting)
        monkeypatch.setattr(module, "as_key_batch", counting)
        return calls

    def test_count_min_scalar_update_skips_as_key_batch(self, monkeypatch):
        import repro.sketches.count_min as module
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(64, depth=2, seed=1)
        sketch.update(Element(key=0))  # warm the per-instance cache
        calls = self._counting_as_key_batch(monkeypatch, module)
        for key in range(50):
            sketch.update(Element(key=key))
        assert calls["count"] == 0

    def test_count_sketch_scalar_update_skips_as_key_batch(self, monkeypatch):
        import repro.sketches.count_sketch as module
        from repro.sketches.count_sketch import CountSketch

        sketch = CountSketch(64, depth=2, seed=1)
        sketch.update(Element(key=0))
        calls = self._counting_as_key_batch(monkeypatch, module)
        for key in range(50):
            sketch.update(Element(key=key))
        assert calls["count"] == 0

    def test_scalar_path_reuses_cached_arrays(self):
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(64, depth=2, seed=1)
        sketch.update(Element(key=1))
        keys_first, counts_first = sketch._scalar_cache
        sketch.update(Element(key=2))
        keys_second, counts_second = sketch._scalar_cache
        # Identical objects: no per-element list/ndarray allocation.
        assert keys_first is keys_second
        assert counts_first is counts_second
        assert counts_first.dtype == "int64" and counts_first[0] == 1

    def test_update_many_normalizes_once(self, monkeypatch):
        import repro.sketches.count_min as module
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(64, depth=2, seed=1)
        calls = self._counting_as_key_batch(monkeypatch, module)
        sketch.update_many([Element(key=key) for key in range(100)])
        assert calls["count"] == 1

    def test_scalar_and_batch_paths_stay_bit_identical(self):
        from repro.sketches.count_min import CountMinSketch

        scalar = CountMinSketch(64, depth=3, seed=5)
        batch = CountMinSketch(64, depth=3, seed=5)
        keys = [key % 17 for key in range(200)]
        for key in keys:
            scalar.update(Element(key=key))
        batch.update_batch(keys)
        assert (scalar.counters() == batch.counters()).all()
