"""Batch/scalar equivalence: the vectorized paths must be bit-identical.

Every sketch exposes ``update_batch``/``estimate_batch``; these tests replay
the same seeded streams element-at-a-time and in chunked batches and assert
that counters, bits, and estimates agree exactly — for integer and string
keys and for both hash schemes (universal and tabulation).  They are the
regression fence around the vectorized ingestion engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import (
    AmsSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    ExactCounter,
    IdealHeavyHitterOracle,
    LearnedCountMinSketch,
    MisraGries,
    SpaceSaving,
    fingerprint64,
    fingerprint64_batch,
)
from repro.sketches.hashing import TabulationHash, UniversalHash
from repro.streams.stream import Element
from repro.streams.zipf import ZipfSampler

SCHEMES = ("universal", "tabulation")


def zipf_keys(num=3000, support=300, seed=0):
    ranks = ZipfSampler(support, rng=np.random.default_rng(seed)).sample(num)
    return ranks.astype(np.int64)


def as_string_keys(keys):
    return [f"query {int(k)} text" for k in keys]


def scalar_replay(sketch, keys):
    for key in keys:
        sketch.update(Element(key=key))


def batch_replay(sketch, keys, chunk=701):
    for start in range(0, len(keys), chunk):
        sketch.update_batch(keys[start : start + chunk])


def probe_keys(keys):
    if isinstance(keys, np.ndarray):
        unique = np.unique(keys).tolist()
        return unique + [10**9, 10**9 + 1]
    return sorted(set(keys)) + ["never seen a", "never seen b"]


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprintBatch:
    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_matches_scalar_on_integers(self, seed):
        keys = [0, 1, -1, 41, -2**63, 2**63, 2**64 - 1, 123456789]
        got = fingerprint64_batch(keys, seed)
        assert got.tolist() == [fingerprint64(k, seed) for k in keys]

    @pytest.mark.parametrize("seed", [0, 9])
    def test_matches_scalar_on_strings(self, seed):
        keys = ["", "a", "www.google.com", "long " * 40, "query 17"]
        got = fingerprint64_batch(keys, seed)
        assert got.tolist() == [fingerprint64(k, seed) for k in keys]

    def test_matches_scalar_on_mixed_and_tuples(self):
        keys = [3, "three", ("t", 3), True, 3.5]
        got = fingerprint64_batch(keys)
        assert got.tolist() == [fingerprint64(k) for k in keys]

    def test_int_ndarray_input(self):
        keys = np.random.default_rng(0).integers(-(2**62), 2**62, size=500)
        got = fingerprint64_batch(keys, 3)
        assert got.tolist() == [fingerprint64(int(k), 3) for k in keys]

    def test_empty_batch(self):
        assert fingerprint64_batch([]).shape == (0,)

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=30)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_property_scalar_parity(self, keys):
        got = fingerprint64_batch(keys, 5)
        assert got.tolist() == [fingerprint64(k, 5) for k in keys]


@pytest.mark.parametrize("hash_class", [UniversalHash, TabulationHash])
@pytest.mark.parametrize("string_keys", [False, True])
def test_hash_and_sign_batch_match_scalar(hash_class, string_keys):
    keys = zipf_keys(500, seed=2)
    keys = as_string_keys(keys) if string_keys else keys
    h = hash_class(output_range=389, seed=11)
    assert h.hash_batch(keys).tolist() == [h(k) for k in keys]
    assert h.sign_batch(keys).tolist() == [h.sign(k) for k in keys]


# ----------------------------------------------------------------------
# counter-array sketches: identical counters AND estimates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("string_keys", [False, True])
@pytest.mark.parametrize(
    "factory",
    [
        lambda scheme: CountMinSketch(64, 3, seed=5, hash_scheme=scheme),
        lambda scheme: CountMinSketch(
            64, 3, seed=5, conservative=True, hash_scheme=scheme
        ),
        lambda scheme: CountSketch(64, 3, seed=5, hash_scheme=scheme),
    ],
    ids=["count-min", "count-min-conservative", "count-sketch"],
)
def test_table_sketches_bit_identical(factory, string_keys, scheme):
    keys = zipf_keys(2000, seed=3)
    if string_keys:
        keys = as_string_keys(keys)
    scalar, batch = factory(scheme), factory(scheme)
    scalar_replay(scalar, keys)
    batch_replay(batch, keys)
    assert (scalar.counters() == batch.counters()).all()
    probes = probe_keys(keys)
    scalar_estimates = [scalar.estimate(Element(key=k)) for k in probes]
    assert batch.estimate_batch(probes).tolist() == scalar_estimates


@pytest.mark.parametrize("scheme", SCHEMES)
def test_ams_bit_identical(scheme):
    keys = zipf_keys(1500, seed=4)
    scalar, batch = (
        AmsSketch(32, 4, seed=6, hash_scheme=scheme),
        AmsSketch(32, 4, seed=6, hash_scheme=scheme),
    )
    scalar_replay(scalar, keys)
    batch_replay(batch, keys)
    assert (scalar._counters == batch._counters).all()
    assert scalar.estimate_second_moment() == batch.estimate_second_moment()


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("string_keys", [False, True])
def test_bloom_bit_identical(string_keys, scheme):
    keys = zipf_keys(1200, support=400, seed=5)
    if string_keys:
        keys = as_string_keys(keys)
    scalar, batch = (
        BloomFilter(4096, 4, seed=7, hash_scheme=scheme),
        BloomFilter(4096, 4, seed=7, hash_scheme=scheme),
    )
    for key in keys:
        scalar.add(key)
    batch.add_batch(keys)
    assert (scalar._bits == batch._bits).all()
    assert scalar.num_inserted == batch.num_inserted
    probes = probe_keys(keys)
    assert batch.contains_batch(probes).tolist() == [k in scalar for k in probes]


def test_bloom_observe_batch_matches_scalar_first_occurrence():
    keys = zipf_keys(800, support=150, seed=6)
    scalar, batch = BloomFilter(2048, 3, seed=8), BloomFilter(2048, 3, seed=8)
    scalar_new = []
    for key in keys:
        if key not in scalar:
            scalar.add(key)
            scalar_new.append(True)
        else:
            scalar_new.append(False)
    batch_new = np.concatenate(
        [batch.observe_batch(keys[s : s + 333]) for s in range(0, len(keys), 333)]
    )
    assert batch_new.tolist() == scalar_new
    assert (scalar._bits == batch._bits).all()
    assert scalar.num_inserted == batch.num_inserted


# ----------------------------------------------------------------------
# dict-backed estimators: identical tracked state and estimates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("string_keys", [False, True])
@pytest.mark.parametrize(
    "factory",
    [lambda: MisraGries(25), lambda: SpaceSaving(25), ExactCounter],
    ids=["misra-gries", "space-saving", "exact"],
)
def test_dict_estimators_bit_identical(factory, string_keys):
    keys = zipf_keys(2500, support=200, seed=7)
    if string_keys:
        keys = as_string_keys(keys)
    scalar, batch = factory(), factory()
    scalar_replay(scalar, keys)
    batch_replay(batch, keys)
    probes = probe_keys(keys)
    scalar_estimates = [scalar.estimate(Element(key=k)) for k in probes]
    assert batch.estimate_batch(probes).tolist() == scalar_estimates


@pytest.mark.parametrize("string_keys", [False, True])
def test_learned_cms_bit_identical(string_keys):
    keys = zipf_keys(3000, support=250, seed=8)
    if string_keys:
        keys = as_string_keys(keys)
    unique, counts = np.unique(np.asarray(keys), return_counts=True)
    frequencies = dict(zip(unique.tolist(), counts.tolist()))

    def factory():
        oracle = IdealHeavyHitterOracle.from_frequencies(frequencies, 20)
        return LearnedCountMinSketch(500, 20, oracle, depth=2, seed=9)

    scalar, batch = factory(), factory()
    scalar_replay(scalar, keys)
    batch_replay(batch, keys)
    assert scalar._heavy_counts == batch._heavy_counts
    assert (scalar._sketch.counters() == batch._sketch.counters()).all()
    probes = probe_keys(keys)
    scalar_estimates = [scalar.estimate(Element(key=k)) for k in probes]
    assert batch.estimate_batch(probes).tolist() == scalar_estimates


# ----------------------------------------------------------------------
# weighted batches == repeated arrivals
# ----------------------------------------------------------------------
@pytest.mark.parametrize("conservative", [False, True])
def test_weighted_counts_equal_repeated_updates(conservative):
    keys = [5, 9, 5, 13, 9, 5]
    counts = [3, 1, 2, 4, 2, 1]
    one_by_one = CountMinSketch(32, 2, seed=1, conservative=conservative)
    weighted = CountMinSketch(32, 2, seed=1, conservative=conservative)
    for key, count in zip(keys, counts):
        for _ in range(count):
            one_by_one.update(Element(key=key))
    weighted.update_batch(np.asarray(keys), np.asarray(counts))
    assert (one_by_one.counters() == weighted.counters()).all()


def test_object_ndarray_of_elements_extracts_keys():
    """An object ndarray of Elements must hash keys, not repr(Element)."""
    elements = [Element(key=i % 5) for i in range(20)]
    as_array = np.empty(len(elements), dtype=object)
    as_array[:] = elements
    from_list = CountMinSketch(32, 2, seed=0)
    from_array = CountMinSketch(32, 2, seed=0)
    from_list.update_batch(elements)
    from_array.update_batch(as_array)
    assert (from_list.counters() == from_array.counters()).all()


def test_oracle_subclass_override_routes_batch_like_scalar():
    """Overriding is_heavy on an Ideal oracle subclass must steer batches."""

    class ThresholdOracle(IdealHeavyHitterOracle):
        def is_heavy(self, element):
            return super().is_heavy(element) and element.key != 0

    def factory():
        return LearnedCountMinSketch(200, 5, ThresholdOracle([0, 1, 2]), depth=1, seed=0)

    scalar, batch = factory(), factory()
    keys = [0, 1, 2, 3, 0, 1, 2, 0]
    for key in keys:
        scalar.update(Element(key=key))
    batch.update_batch(keys)
    assert scalar._heavy_counts == batch._heavy_counts
    assert (scalar._sketch.counters() == batch._sketch.counters()).all()
    probes = [0, 1, 2, 3, 9]
    scalar_estimates = [scalar.estimate(Element(key=k)) for k in probes]
    assert batch.estimate_batch(probes).tolist() == scalar_estimates


def test_counts_validation():
    sketch = CountMinSketch(16, 2, seed=0)
    with pytest.raises(ValueError):
        sketch.update_batch([1, 2, 3], [1, 2])
    with pytest.raises(ValueError):
        sketch.update_batch([1, 2], [1, -1])


# ----------------------------------------------------------------------
# conservative-update invariants on the batch path
# ----------------------------------------------------------------------
class TestConservativeBatchInvariants:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_never_underestimates_and_dominated_by_plain(self, scheme):
        keys = zipf_keys(4000, support=120, seed=9)
        plain = CountMinSketch(48, 2, seed=3, hash_scheme=scheme)
        conservative = CountMinSketch(
            48, 2, seed=3, conservative=True, hash_scheme=scheme
        )
        batch_replay(plain, keys)
        batch_replay(conservative, keys)
        unique, true_counts = np.unique(keys, return_counts=True)
        conservative_estimates = conservative.estimate_batch(unique)
        plain_estimates = plain.estimate_batch(unique)
        assert (conservative_estimates >= true_counts).all()
        assert (conservative_estimates <= plain_estimates).all()

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=250),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_batch_conservative_bounds(self, keys):
        keys = np.asarray(keys, dtype=np.int64)
        plain = CountMinSketch(16, 3, seed=0)
        conservative = CountMinSketch(16, 3, seed=0, conservative=True)
        plain.update_batch(keys)
        conservative.update_batch(keys)
        unique, true_counts = np.unique(keys, return_counts=True)
        conservative_estimates = conservative.estimate_batch(unique)
        assert (conservative_estimates >= true_counts).all()
        assert (conservative_estimates <= plain.estimate_batch(unique)).all()
