"""Tests for the Misra–Gries and Space-Saving heavy-hitter summaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.heavy_hitters import MisraGries, SpaceSaving
from repro.streams.stream import Element


def zipf_keys(num_keys=100, arrivals=5000, seed=0):
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_keys + 1)
    weights /= weights.sum()
    keys = rng.choice(num_keys, size=arrivals, p=weights)
    return keys, np.bincount(keys, minlength=num_keys)


class TestMisraGries:
    def test_invalid_counter_count_rejected(self):
        with pytest.raises(ValueError):
            MisraGries(0)

    def test_never_overestimates(self):
        keys, counts = zipf_keys()
        summary = MisraGries(num_counters=20)
        for key in keys:
            summary.update(Element(key=int(key)))
        for key in range(len(counts)):
            assert summary.estimate(Element(key=key)) <= counts[key]

    def test_error_bound_holds(self):
        keys, counts = zipf_keys(seed=1)
        summary = MisraGries(num_counters=25)
        for key in keys:
            summary.update(Element(key=int(key)))
        bound = summary.error_bound
        for key in range(len(counts)):
            assert counts[key] - summary.estimate(Element(key=key)) <= bound + 1e-9

    def test_true_heavy_hitters_always_reported(self):
        keys, counts = zipf_keys(seed=2)
        total = counts.sum()
        summary = MisraGries(num_counters=40)
        for key in keys:
            summary.update(Element(key=int(key)))
        threshold = 0.05
        reported = {key for key, _ in summary.heavy_hitters(threshold)}
        true_heavy = {int(k) for k in np.flatnonzero(counts > threshold * total)}
        assert true_heavy.issubset(reported)

    def test_threshold_validation(self):
        summary = MisraGries(5)
        with pytest.raises(ValueError):
            summary.heavy_hitters(0.0)

    def test_small_stream_exact(self):
        summary = MisraGries(num_counters=10)
        for key in ["a", "a", "b"]:
            summary.update(Element(key=key))
        assert summary.estimate(Element(key="a")) == 2
        assert summary.estimate(Element(key="b")) == 1

    def test_size_accounts_ids_and_counters(self):
        assert MisraGries(10).size_bytes == 80


class TestSpaceSaving:
    def test_invalid_counter_count_rejected(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_never_underestimates(self):
        keys, counts = zipf_keys(seed=3)
        summary = SpaceSaving(num_counters=20)
        for key in keys:
            summary.update(Element(key=int(key)))
        # Space-Saving estimates over-estimate the true count of every key
        # that appeared in the stream.
        for key in np.flatnonzero(counts):
            assert summary.estimate(Element(key=int(key))) >= counts[key]

    def test_guaranteed_count_is_lower_bound(self):
        keys, counts = zipf_keys(seed=4)
        summary = SpaceSaving(num_counters=30)
        for key in keys:
            summary.update(Element(key=int(key)))
        for key, _ in summary.tracked_items().items():
            assert summary.guaranteed_count(Element(key=key)) <= counts[key]

    def test_top_elements_are_tracked(self):
        keys, counts = zipf_keys(seed=5)
        summary = SpaceSaving(num_counters=30)
        for key in keys:
            summary.update(Element(key=int(key)))
        tracked = set(summary.tracked_items())
        top5 = set(np.argsort(counts)[::-1][:5].tolist())
        assert top5.issubset(tracked)

    def test_number_of_counters_never_exceeded(self):
        summary = SpaceSaving(num_counters=8)
        for key in range(1000):
            summary.update(Element(key=key))
        assert len(summary.tracked_items()) == 8

    def test_heavy_hitters_threshold(self):
        summary = SpaceSaving(num_counters=10)
        stream = ["hot"] * 60 + [f"cold{i}" for i in range(40)]
        for key in stream:
            summary.update(Element(key=key))
        reported = dict(summary.heavy_hitters(0.3))
        assert "hot" in reported

    def test_size_accounts_ids_counts_and_errors(self):
        assert SpaceSaving(10).size_bytes == 120


@given(
    keys=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=400),
    num_counters=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=30, deadline=None)
def test_misra_gries_and_space_saving_error_bounds_property(keys, num_counters):
    """MG under-estimates within N/(k+1); SS over-estimates for present keys."""
    mg = MisraGries(num_counters)
    ss = SpaceSaving(num_counters)
    for key in keys:
        mg.update(Element(key=key))
        ss.update(Element(key=key))
    for key in set(keys):
        true_count = keys.count(key)
        mg_estimate = mg.estimate(Element(key=key))
        assert mg_estimate <= true_count
        assert true_count - mg_estimate <= len(keys) / (num_counters + 1) + 1e-9
        assert ss.estimate(Element(key=key)) >= true_count
