"""Tests for the Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.bloom import BloomFilter


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=8, num_hashes=0)

    def test_optimal_hash_count_from_expected_items(self):
        bloom = BloomFilter(num_bits=10_000, expected_items=1000)
        # Optimal k = ln(2) * m / n ≈ 6.9.
        assert 5 <= bloom.num_hashes <= 9

    def test_from_false_positive_rate_sizing(self):
        bloom = BloomFilter.from_false_positive_rate(1000, 0.01, seed=0)
        # The classic formula gives ~9.6 bits per element for 1% FPR.
        assert 9_000 <= bloom.num_bits <= 11_000

    def test_from_false_positive_rate_validates(self):
        with pytest.raises(ValueError):
            BloomFilter.from_false_positive_rate(0, 0.01)
        with pytest.raises(ValueError):
            BloomFilter.from_false_positive_rate(100, 1.5)

    def test_size_bytes_rounds_up(self):
        assert BloomFilter(num_bits=9, num_hashes=1).size_bytes == 2


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter.from_false_positive_rate(500, 0.01, seed=1)
        keys = [f"query {i}" for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.from_false_positive_rate(1000, 0.01, seed=2)
        for i in range(1000):
            bloom.add(f"present-{i}")
        false_positives = sum(f"absent-{i}" in bloom for i in range(10_000))
        assert false_positives / 10_000 < 0.05

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(num_bits=128, num_hashes=3, seed=3)
        assert "anything" not in bloom
        assert not bloom.contains(42)

    def test_num_inserted_tracks_adds(self):
        bloom = BloomFilter(num_bits=64, num_hashes=2, seed=4)
        bloom.add("a")
        bloom.add("a")
        assert bloom.num_inserted == 2

    def test_estimated_false_positive_rate_increases_with_fill(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3, seed=5)
        initial = bloom.estimated_false_positive_rate()
        for i in range(200):
            bloom.add(i)
        assert bloom.estimated_false_positive_rate() > initial


@given(keys=st.lists(st.text(max_size=15), min_size=1, max_size=100))
@settings(max_examples=30, deadline=None)
def test_bloom_never_forgets_inserted_keys(keys):
    bloom = BloomFilter(num_bits=2048, num_hashes=3, seed=0)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)
