"""Round-trip and robustness tests for the sketch serialization layer.

``from_bytes(to_bytes(sketch))`` must preserve every estimate, the reported
``size_bytes``, and the full hash-function state (so a rehydrated sketch
keeps ingesting identically to the original).  Malformed buffers — truncated,
corrupted, or written by a different format version — must raise
:class:`SerializationError` instead of mis-parsing.
"""

import struct

import numpy as np
import pytest

from repro.sketches import (
    AmsSketch,
    BloomFilter,
    CountMinSketch,
    CountSketch,
    ExactCounter,
    IdealHeavyHitterOracle,
    LearnedCountMinSketch,
    MisraGries,
    SpaceSaving,
    TabulationHash,
    UniversalHash,
    loads,
)
from repro.sketches.learned_cms import ClassifierHeavyHitterOracle
from repro.sketches.serialization import (
    MAGIC,
    VERSION,
    SerializationError,
    pack,
    unpack,
)

RNG = np.random.default_rng(42)
INT_KEYS = RNG.integers(0, 400, size=3000)
STR_KEYS = [f"query {value}" for value in INT_KEYS.tolist()]
QUERIES_INT = np.unique(INT_KEYS)
QUERIES_STR = sorted(set(STR_KEYS))


def ingested_sketches():
    """Every serializable sketch type, pre-loaded with a mixed workload."""
    frequencies = dict(
        zip(*(arr.tolist() for arr in np.unique(INT_KEYS, return_counts=True)))
    )
    oracle = IdealHeavyHitterOracle.from_frequencies(frequencies, 16)
    specimens = {
        "count_min": CountMinSketch(128, depth=3, seed=9),
        "count_min_conservative": CountMinSketch(
            128, depth=3, seed=9, conservative=True
        ),
        "count_min_tabulation": CountMinSketch(
            128, depth=3, seed=9, hash_scheme="tabulation"
        ),
        "count_sketch": CountSketch(128, depth=3, seed=9),
        "learned_cms": LearnedCountMinSketch(512, 16, oracle, depth=2, seed=9),
        "exact_counter": ExactCounter(),
        "misra_gries": MisraGries(12),
        "space_saving": SpaceSaving(12),
    }
    for sketch in specimens.values():
        sketch.update_batch(INT_KEYS)
    string_counter = ExactCounter()
    string_counter.update_batch(STR_KEYS)
    specimens["exact_counter_str"] = string_counter
    string_mg = MisraGries(12)
    string_mg.update_batch(STR_KEYS)
    specimens["misra_gries_str"] = string_mg
    return specimens


@pytest.mark.parametrize("name,sketch", sorted(ingested_sketches().items()))
def test_round_trip_preserves_estimates_and_size(name, sketch):
    restored = loads(sketch.to_bytes())
    assert type(restored) is type(sketch)
    assert restored.size_bytes == sketch.size_bytes
    queries = QUERIES_STR if name.endswith("_str") else QUERIES_INT
    original = sketch.estimate_batch(queries)
    rehydrated = restored.estimate_batch(queries)
    assert (original == rehydrated).all()


@pytest.mark.parametrize("name,sketch", sorted(ingested_sketches().items()))
def test_round_trip_preserves_future_ingestion(name, sketch):
    """Hash state survives: both copies must evolve identically."""
    restored = loads(sketch.to_bytes())
    extra_keys = (
        [f"query {value}" for value in range(400, 600)]
        if name.endswith("_str")
        else np.arange(400, 600)
    )
    sketch.update_batch(extra_keys)
    restored.update_batch(extra_keys)
    queries = (
        list(QUERIES_STR) + list(extra_keys)
        if name.endswith("_str")
        else np.concatenate([QUERIES_INT, np.asarray(extra_keys)])
    )
    assert (sketch.estimate_batch(queries) == restored.estimate_batch(queries)).all()


def test_ams_round_trip():
    sketch = AmsSketch(32, means_groups=4, seed=9)
    sketch.update_batch(INT_KEYS)
    restored = loads(sketch.to_bytes())
    assert restored.size_bytes == sketch.size_bytes
    assert restored.estimate_second_moment() == sketch.estimate_second_moment()
    sketch.update_batch(np.arange(50))
    restored.update_batch(np.arange(50))
    assert (restored._counters == sketch._counters).all()


@pytest.mark.parametrize("hash_scheme", ["universal", "tabulation"])
def test_bloom_round_trip(hash_scheme):
    bloom = BloomFilter(2048, num_hashes=4, seed=9, hash_scheme=hash_scheme)
    for key in range(300):
        bloom.add(key)
    restored = loads(bloom.to_bytes())
    assert restored.size_bytes == bloom.size_bytes
    assert restored.num_inserted == bloom.num_inserted
    probes = np.arange(1000)
    assert (restored.contains_batch(probes) == bloom.contains_batch(probes)).all()


@pytest.mark.parametrize("cls", [UniversalHash, TabulationHash])
def test_hash_scheme_round_trip(cls):
    """Both hash families restore their exact drawn state."""
    function = cls(997, seed=123)
    restored = cls.from_bytes(function.to_bytes())
    keys = list(RNG.integers(0, 10**9, size=200)) + ["alpha", "beta", "γ"]
    assert [restored(key) for key in keys] == [function(key) for key in keys]
    assert [restored.sign(key) for key in keys] == [function.sign(key) for key in keys]
    assert (restored.hash_batch(keys) == function.hash_batch(keys)).all()
    assert (restored.sign_batch(keys) == function.sign_batch(keys)).all()


def test_loads_dispatches_hash_functions_too():
    function = UniversalHash(31, seed=5)
    restored = loads(function.to_bytes())
    assert isinstance(restored, UniversalHash)
    assert restored(1234) == function(1234)


def test_classifier_oracle_not_serializable():
    class FakeClassifier:
        def predict(self, X):
            return [0] * len(X)

    sketch = LearnedCountMinSketch(
        128, 4, ClassifierHeavyHitterOracle(FakeClassifier()), depth=2, seed=1
    )
    with pytest.raises(SerializationError):
        sketch.to_bytes()


class TestMalformedBuffers:
    def payload(self):
        sketch = CountMinSketch(64, depth=2, seed=3)
        sketch.update_batch(np.arange(100))
        return sketch.to_bytes()

    def test_empty_and_short_buffers(self):
        for data in (b"", b"RP", b"RPSK", b"RPSK\x01\x00"):
            with pytest.raises(SerializationError):
                loads(data)

    def test_bad_magic(self):
        data = b"XXXX" + self.payload()[4:]
        with pytest.raises(SerializationError, match="magic"):
            loads(data)

    def test_cross_version_header_rejected(self):
        data = bytearray(self.payload())
        struct.pack_into("<H", data, 4, VERSION + 1)
        with pytest.raises(SerializationError, match="version"):
            loads(bytes(data))
        struct.pack_into("<H", data, 4, 0)
        with pytest.raises(SerializationError, match="version"):
            loads(bytes(data))

    def test_truncated_metadata(self):
        data = self.payload()
        with pytest.raises(SerializationError):
            loads(data[:14])

    def test_truncated_arrays(self):
        data = self.payload()
        with pytest.raises(SerializationError, match="past the end"):
            loads(data[:-10])

    def test_corrupt_metadata_json(self):
        data = bytearray(self.payload())
        # Stomp the first metadata byte ('{') so JSON parsing fails.
        data[12] = ord("?")
        with pytest.raises(SerializationError):
            loads(bytes(data))

    def test_object_dtype_descriptor_rejected(self):
        # A crafted descriptor with an object dtype must raise
        # SerializationError, not leak numpy's raw ValueError.
        import json as json_module

        data = bytearray(self.payload())
        meta_len = struct.unpack_from("<I", data, 8)[0]
        meta = json_module.loads(bytes(data[12 : 12 + meta_len]).decode("utf-8"))
        meta["arrays"][0]["dtype"] = "|O8"
        new_meta = json_module.dumps(meta, separators=(",", ":")).encode("utf-8")
        struct.pack_into("<I", data, 8, len(new_meta))
        crafted = bytes(data[:12]) + new_meta + bytes(data[12 + meta_len :])
        with pytest.raises(SerializationError, match="non-numeric"):
            loads(crafted)

    def test_unknown_tag(self):
        data = pack("no_such_sketch", {}, {})
        with pytest.raises(SerializationError, match="unknown sketch tag"):
            loads(data)

    def test_wrong_type_buffer_rejected_by_from_bytes(self):
        data = CountSketch(64, depth=2, seed=3).to_bytes()
        with pytest.raises(SerializationError, match="expected"):
            CountMinSketch.from_bytes(data)

    def test_magic_and_version_constants(self):
        data = self.payload()
        magic, version, _flags, _meta_len = struct.unpack_from("<4sHHI", data)
        assert magic == MAGIC
        assert version == VERSION

    def test_unpack_expect_tag(self):
        tag, state, arrays = unpack(self.payload(), expect_tag="count_min")
        assert tag == "count_min"
        assert state["width"] == 64 and state["depth"] == 2
        assert arrays["table"].shape == (2, 64)
