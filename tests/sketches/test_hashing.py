"""Tests for the random hash families."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.hashing import (
    TabulationHash,
    UniversalHash,
    UniversalHashFamily,
    fingerprint64,
)


class TestFingerprint64:
    def test_deterministic_across_calls(self):
        assert fingerprint64("query text", seed=3) == fingerprint64("query text", seed=3)

    def test_seed_changes_value(self):
        assert fingerprint64("abc", seed=1) != fingerprint64("abc", seed=2)

    def test_integer_and_string_keys_supported(self):
        assert isinstance(fingerprint64(12345), int)
        assert isinstance(fingerprint64("12345"), int)
        assert fingerprint64(12345) != fingerprint64("12345")

    def test_result_fits_in_64_bits(self):
        for key in ["a", 0, 2**63, ("tuple", 1)]:
            assert 0 <= fingerprint64(key) < 2**64

    def test_nearby_integers_spread_out(self):
        values = [fingerprint64(i) % 1000 for i in range(100)]
        # A splitmix-style finalizer should not map consecutive ints to
        # consecutive outputs.
        assert len(set(values)) > 80


@pytest.mark.parametrize("hash_class", [UniversalHash, TabulationHash])
class TestHashFunctions:
    def test_output_in_range(self, hash_class):
        h = hash_class(output_range=37, seed=0)
        for key in range(200):
            assert 0 <= h(key) < 37

    def test_deterministic(self, hash_class):
        h = hash_class(output_range=100, seed=5)
        assert h("repeat") == h("repeat")

    def test_different_seeds_give_different_functions(self, hash_class):
        first = hash_class(output_range=1000, seed=1)
        second = hash_class(output_range=1000, seed=2)
        keys = list(range(100))
        assert [first(k) for k in keys] != [second(k) for k in keys]

    def test_sign_is_plus_minus_one(self, hash_class):
        h = hash_class(output_range=10, seed=0)
        signs = {h.sign(key) for key in range(100)}
        assert signs == {-1, 1}

    def test_invalid_range_rejected(self, hash_class):
        with pytest.raises(ValueError):
            hash_class(output_range=0)

    def test_distribution_roughly_uniform(self, hash_class):
        h = hash_class(output_range=10, seed=42)
        counts = np.bincount([h(key) for key in range(5000)], minlength=10)
        # Each bucket should get roughly 500 keys; allow generous slack.
        assert counts.min() > 300
        assert counts.max() < 700


class TestUniversalHashFamily:
    def test_draw_produces_independent_functions(self):
        family = UniversalHashFamily(output_range=64, seed=0)
        functions = family.draw(3)
        assert len(functions) == 3
        keys = list(range(50))
        outputs = [[h(k) for k in keys] for h in functions]
        assert outputs[0] != outputs[1] != outputs[2]

    def test_family_reproducible_by_seed(self):
        keys = list(range(20))
        first = UniversalHashFamily(16, seed=7).draw(2)
        second = UniversalHashFamily(16, seed=7).draw(2)
        for h1, h2 in zip(first, second):
            assert [h1(k) for k in keys] == [h2(k) for k in keys]

    def test_tabulation_scheme_supported(self):
        family = UniversalHashFamily(8, seed=0, scheme="tabulation")
        (h,) = family.draw(1)
        assert isinstance(h, TabulationHash)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            UniversalHashFamily(8, scheme="cryptographic")


@given(keys=st.lists(st.text(min_size=0, max_size=20), min_size=1, max_size=50))
@settings(max_examples=30, deadline=None)
def test_universal_hash_stable_over_arbitrary_strings(keys):
    h = UniversalHash(output_range=101, seed=13)
    first_pass = [h(key) for key in keys]
    second_pass = [h(key) for key in keys]
    assert first_pass == second_pass
    assert all(0 <= value < 101 for value in first_pass)
