"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import DecisionTreeClassifier, gini_impurity


class TestGiniImpurity:
    def test_pure_node_has_zero_impurity(self):
        assert gini_impurity(np.array([10.0, 0.0])) == 0.0

    def test_uniform_two_classes(self):
        assert gini_impurity(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_node(self):
        assert gini_impurity(np.array([0.0, 0.0])) == 0.0

    def test_bounded_by_one(self):
        assert 0.0 <= gini_impurity(np.array([1.0, 2.0, 3.0, 4.0])) < 1.0


class TestDecisionTree:
    def test_perfectly_separable_data_fit_exactly(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_xor_requires_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert shallow.score(X, y) < 1.0
        assert deep.score(X, y) == 1.0

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_impurity_decrease_prunes(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = rng.integers(0, 2, size=100)  # pure noise
        permissive = DecisionTreeClassifier(min_impurity_decrease=0.0).fit(X, y)
        strict = DecisionTreeClassifier(min_impurity_decrease=0.4).fit(X, y)
        assert strict.num_leaves() <= permissive.num_leaves()
        assert strict.num_leaves() == 1  # noise offers no 0.4 impurity decrease

    def test_min_samples_split_respected(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(min_samples_split=10).fit(X, y)
        assert tree.num_leaves() == 1

    def test_multiclass_prediction(self):
        X = np.array([[0.0], [0.5], [5.0], [5.5], [10.0], [10.5]])
        y = np.array([0, 0, 1, 1, 2, 2])
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)
        np.testing.assert_array_equal(tree.classes_, [0, 1, 2])

    def test_predict_proba_reflects_leaf_composition(self):
        X = np.array([[0.0], [0.0], [0.0], [10.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        # The only possible split isolates the x=10 sample, leaving a mixed
        # leaf {0, 0, 1} on the left.
        proba = tree.predict_proba([[0.05]])
        assert proba.shape == (1, 2)
        assert proba[0, 0] == pytest.approx(2 / 3)

    def test_constant_features_yield_single_leaf(self):
        X = np.zeros((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.num_leaves() == 1
        # Majority class (tie broken towards the lower label index).
        assert tree.predict([[0.0, 0.0, 0.0]])[0] in (0, 1)

    def test_max_features_subsampling_still_learns(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 6))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.8

    def test_invalid_max_features_rejected(self):
        tree = DecisionTreeClassifier(max_features="bogus")
        with pytest.raises(ValueError):
            tree.fit(np.array([[0.0], [1.0]]), np.array([0, 1]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_feature_importances_identify_informative_feature(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 4))
        y = (X[:, 1] > 0).astype(int)  # only feature 1 matters
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        importances = tree.feature_importances_
        assert importances.shape == (4,)
        assert importances[1] == importances.max()
        assert importances.sum() == pytest.approx(1.0)

    def test_feature_importances_zero_for_single_leaf(self):
        X = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_allclose(tree.feature_importances_, [0.0, 0.0])

    def test_string_labels_supported(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array(["cold", "cold", "hot", "hot"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict([[0.5], [10.5]])) == ["cold", "hot"]


@given(
    num_samples=st.integers(min_value=5, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_unrestricted_tree_fits_training_data(num_samples, seed):
    """With distinct feature values and no depth limit, training accuracy is 1."""
    rng = np.random.default_rng(seed)
    X = rng.permutation(num_samples).reshape(-1, 1).astype(float)
    y = rng.integers(0, 3, size=num_samples)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.score(X, y) == 1.0
