"""Tests for the query-text featurizer (paper Section 7.3)."""

import numpy as np
import pytest

from repro.ml.text import QueryFeaturizer, basic_text_counts


class TestBasicTextCounts:
    def test_counts_of_simple_query(self):
        counts = basic_text_counts("www.google.com")
        ascii_chars, punctuation, dots, whitespaces = counts
        assert ascii_chars == len("www.google.com")
        assert dots == 2
        assert punctuation == 2  # the two dots are punctuation
        assert whitespaces == 0

    def test_whitespace_and_punctuation(self):
        counts = basic_text_counts("cheap flights, new york!")
        assert counts[3] == 3  # whitespaces
        assert counts[1] == 2  # comma and exclamation mark

    def test_empty_string(self):
        assert basic_text_counts("") == [0.0, 0.0, 0.0, 0.0]

    def test_non_ascii_characters_not_counted_as_ascii(self):
        counts = basic_text_counts("café")
        assert counts[0] == 3


class TestQueryFeaturizer:
    def test_vocabulary_keeps_most_common_words(self):
        featurizer = QueryFeaturizer(vocabulary_size=2)
        featurizer.fit(["google maps", "google mail", "weather"])
        assert "google" in featurizer.vocabulary_
        assert len(featurizer.vocabulary_) == 2

    def test_num_features_is_vocabulary_plus_counts(self):
        featurizer = QueryFeaturizer(vocabulary_size=10)
        featurizer.fit(["a b c", "a b", "a"])
        assert featurizer.num_features == min(10, 3) + 4

    def test_transform_marks_present_words(self):
        featurizer = QueryFeaturizer(vocabulary_size=5)
        featurizer.fit(["google maps", "google", "yahoo mail"])
        vector = featurizer.transform_one("google mail inbox")
        names = featurizer.feature_names()
        assert vector[names.index("google")] == 1.0
        assert vector[names.index("mail")] == 1.0
        assert vector[names.index("maps")] == 0.0

    def test_binary_vs_count_mode(self):
        queries = ["spam spam spam", "ham"]
        binary = QueryFeaturizer(vocabulary_size=5, binary=True).fit(queries)
        counting = QueryFeaturizer(vocabulary_size=5, binary=False).fit(queries)
        names = binary.feature_names()
        assert binary.transform_one("spam spam")[names.index("spam")] == 1.0
        assert counting.transform_one("spam spam")[names.index("spam")] == 2.0

    def test_transform_batch_shape(self):
        featurizer = QueryFeaturizer(vocabulary_size=3)
        matrix = featurizer.fit_transform(["a b", "c d", "a d"])
        assert matrix.shape == (3, featurizer.num_features)

    def test_count_features_appended_at_end(self):
        featurizer = QueryFeaturizer(vocabulary_size=2).fit(["x y"])
        vector = featurizer.transform_one("www.site.com page")
        np.testing.assert_allclose(
            vector[-4:], basic_text_counts("www.site.com page")
        )

    def test_unfitted_featurizer_raises(self):
        featurizer = QueryFeaturizer()
        with pytest.raises(RuntimeError):
            featurizer.transform_one("query")
        with pytest.raises(RuntimeError):
            _ = featurizer.num_features

    def test_tokenization_ignores_punctuation_and_case(self):
        featurizer = QueryFeaturizer(vocabulary_size=5).fit(["Google.COM!!"])
        assert "google" in featurizer.vocabulary_
        assert "com" in featurizer.vocabulary_

    def test_negative_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            QueryFeaturizer(vocabulary_size=-1)
