"""Tests for the random forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


def make_dataset(seed=0, num_samples=300):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(num_samples, 4))
    y = ((X[:, 0] + X[:, 1] > 0) & (X[:, 2] > -0.5)).astype(int)
    return X, y


class TestRandomForest:
    def test_invalid_estimator_count_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_learns_nonlinear_boundary(self):
        X, y = make_dataset()
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_generalizes_to_held_out_data(self):
        X, y = make_dataset(seed=1, num_samples=600)
        forest = RandomForestClassifier(
            n_estimators=25, max_depth=8, random_state=0
        ).fit(X[:400], y[:400])
        assert forest.score(X[400:], y[400:]) > 0.8

    def test_predict_proba_normalized(self):
        X, y = make_dataset()
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:20])
        assert proba.shape == (20, 2)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(20), atol=1e-9)

    def test_number_of_trees_matches_config(self):
        X, y = make_dataset()
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_reproducible_with_seed(self):
        X, y = make_dataset()
        first = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        second = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        np.testing.assert_array_equal(first.predict(X), second.predict(X))

    def test_multiclass_with_noncontiguous_labels(self):
        rng = np.random.default_rng(2)
        X = np.vstack(
            [rng.normal(center, 0.3, size=(40, 2)) for center in [(0, 0), (5, 0), (0, 5)]]
        )
        y = np.repeat([2, 7, 11], 40)
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        np.testing.assert_array_equal(forest.classes_, [2, 7, 11])
        assert forest.score(X, y) > 0.95

    def test_without_bootstrap_trees_see_all_data(self):
        X, y = make_dataset()
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, max_features=None, random_state=0
        ).fit(X, y)
        # Without bootstrap or feature subsampling all trees are identical,
        # so the forest behaves like a single tree with perfect training fit.
        assert forest.score(X, y) == 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict([[0.0, 0.0, 0.0, 0.0]])

    def test_feature_importances_average_over_trees(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 5))
        y = (X[:, 3] > 0).astype(int)  # only feature 3 matters
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=5, random_state=0
        ).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (5,)
        assert importances[3] == importances.max()
        assert importances.sum() == pytest.approx(1.0)
