"""Tests for the multinomial logistic regression classifier."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegressionClassifier, softmax


def make_blobs(num_per_class=40, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0], [6.0, 6.0]])[:num_classes]
    X = np.vstack(
        [rng.normal(center, 0.5, size=(num_per_class, 2)) for center in centers]
    )
    y = np.repeat(np.arange(num_classes), num_per_class)
    return X, y


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        proba = softmax(logits)
        np.testing.assert_allclose(proba.sum(axis=1), [1.0, 1.0])

    def test_stable_for_large_logits(self):
        proba = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(proba).all()
        assert proba[0, 0] > 0.99

    def test_monotone_in_logits(self):
        proba = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert proba[0, 0] < proba[0, 1] < proba[0, 2]


class TestLogisticRegression:
    def test_separable_blobs_learned(self):
        X, y = make_blobs()
        model = LogisticRegressionClassifier(max_iter=300, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_binary_classification(self):
        X, y = make_blobs(num_classes=2)
        model = LogisticRegressionClassifier(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_shape_and_normalization(self):
        X, y = make_blobs(num_classes=3)
        model = LogisticRegressionClassifier(random_state=0).fit(X, y)
        proba = model.predict_proba(X[:10])
        assert proba.shape == (10, 3)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(10), atol=1e-9)

    def test_classes_preserved_with_noncontiguous_labels(self):
        X, y = make_blobs(num_classes=3)
        shifted = y * 10 + 5  # labels 5, 15, 25
        model = LogisticRegressionClassifier(random_state=0).fit(X, shifted)
        np.testing.assert_array_equal(model.classes_, [5, 15, 25])
        predictions = model.predict(X)
        assert set(predictions).issubset({5, 15, 25})

    def test_strong_ridge_shrinks_coefficients(self):
        X, y = make_blobs()
        weak = LogisticRegressionClassifier(ridge=1e-6, random_state=0).fit(X, y)
        strong = LogisticRegressionClassifier(ridge=10.0, random_state=0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_predict_before_fit_raises(self):
        model = LogisticRegressionClassifier()
        with pytest.raises(RuntimeError):
            model.predict([[0.0, 0.0]])

    def test_single_sample_prediction_shape(self):
        X, y = make_blobs()
        model = LogisticRegressionClassifier(random_state=0).fit(X, y)
        assert model.predict([0.0, 0.0]).shape == (1,)

    def test_get_params_exposes_constructor_arguments(self):
        model = LogisticRegressionClassifier(ridge=0.5, max_iter=10)
        params = model.get_params()
        assert params["ridge"] == 0.5
        assert params["max_iter"] == 10
