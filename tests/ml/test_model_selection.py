"""Tests for k-fold CV, grid search and train/test splitting."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, cross_val_score, grid_search, train_test_split
from repro.ml.tree import DecisionTreeClassifier


class TestKFold:
    def test_folds_partition_all_indices(self):
        kfold = KFold(n_splits=5, shuffle=True, random_state=0)
        seen = []
        for train, test in kfold.split(53):
            assert len(set(train) & set(test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(53))

    def test_split_counts(self):
        kfold = KFold(n_splits=4, shuffle=False)
        splits = list(kfold.split(20))
        assert len(splits) == 4
        assert all(len(test) == 5 for _, test in splits)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_invalid_n_splits_rejected(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_shuffle_reproducible(self):
        first = [test.tolist() for _, test in KFold(3, random_state=1).split(12)]
        second = [test.tolist() for _, test in KFold(3, random_state=1).split(12)]
        assert first == second


class TestTrainTestSplit:
    def test_partition_sizes(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.arange(40)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=0.25, random_state=0
        )
        assert len(X_test) == 10
        assert len(X_train) == 30
        np.testing.assert_array_equal(X_train.ravel(), y_train)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))


class TestCrossValScore:
    def test_returns_one_score_per_fold(self):
        X = np.vstack([np.zeros((20, 1)), np.ones((20, 1))])
        y = np.repeat([0, 1], 20)
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=1), X, y, n_splits=5, random_state=0
        )
        assert len(scores) == 5
        assert all(score == 1.0 for score in scores)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            cross_val_score(lambda: DecisionTreeClassifier(), np.zeros((1, 1)), [0])

    def test_folds_clamped_to_sample_count(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(), X, y, n_splits=10, random_state=0
        )
        assert len(scores) == 4


class TestGridSearch:
    def test_selects_better_hyperparameters(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 2))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)  # needs depth >= 2
        best_params, best_score = grid_search(
            lambda **kwargs: DecisionTreeClassifier(**kwargs),
            {"max_depth": [1, 4]},
            X,
            y,
            n_splits=4,
            random_state=0,
        )
        assert best_params["max_depth"] == 4
        assert 0.0 <= best_score <= 1.0

    def test_empty_grid_returns_plain_cv_score(self):
        X = np.vstack([np.zeros((10, 1)), np.ones((10, 1))])
        y = np.repeat([0, 1], 10)
        params, score = grid_search(
            lambda: DecisionTreeClassifier(), {}, X, y, n_splits=4, random_state=0
        )
        assert params == {}
        assert score == 1.0

    def test_multi_parameter_grid_enumerated(self):
        X = np.vstack([np.zeros((10, 1)), np.ones((10, 1))])
        y = np.repeat([0, 1], 10)
        params, _ = grid_search(
            lambda **kwargs: DecisionTreeClassifier(**kwargs),
            {"max_depth": [1, 2], "min_samples_split": [2, 4]},
            X,
            y,
            n_splits=4,
            random_state=0,
        )
        assert set(params) == {"max_depth", "min_samples_split"}
