"""Tests for label encoding and feature scaling."""

import numpy as np
import pytest

from repro.ml.preprocessing import LabelEncoder, StandardScaler


class TestLabelEncoder:
    def test_fit_transform_roundtrip(self):
        encoder = LabelEncoder()
        labels = ["b", "a", "c", "a"]
        encoded = encoder.fit_transform(labels)
        np.testing.assert_array_equal(encoder.classes_, ["a", "b", "c"])
        np.testing.assert_array_equal(encoded, [1, 0, 2, 0])
        np.testing.assert_array_equal(encoder.inverse_transform(encoded), labels)

    def test_integer_labels(self):
        encoder = LabelEncoder().fit([10, 5, 10, 7])
        np.testing.assert_array_equal(encoder.classes_, [5, 7, 10])
        np.testing.assert_array_equal(encoder.transform([7, 10]), [1, 2])

    def test_unseen_label_rejected(self):
        encoder = LabelEncoder().fit([1, 2, 3])
        with pytest.raises(ValueError):
            encoder.transform([4])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform([1])
        with pytest.raises(RuntimeError):
            LabelEncoder().inverse_transform([0])


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(transformed.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), np.ones(4), atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        transformed = StandardScaler().fit_transform(X)
        assert np.isfinite(transformed).all()
        np.testing.assert_allclose(transformed[:, 0], np.zeros(10))

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(scaler.transform([[5.0]]), [[0.0]])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])
