"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, confusion_matrix, macro_f1_score


class TestAccuracy:
    def test_perfect_and_zero_accuracy(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0
        assert accuracy_score([1, 2, 3], [3, 1, 2]) == 0.0

    def test_partial_accuracy(self):
        assert accuracy_score([0, 0, 1, 1], [0, 1, 1, 1]) == 0.75

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2])
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_explicit_label_order(self):
        matrix = confusion_matrix([0, 1], [0, 1], labels=[1, 0])
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_total_equals_number_of_samples(self):
        y_true = [0, 1, 2, 1, 0, 2, 2]
        y_pred = [0, 2, 2, 1, 1, 0, 2]
        assert confusion_matrix(y_true, y_pred).sum() == len(y_true)


class TestMacroF1:
    def test_perfect_predictions(self):
        assert macro_f1_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_balanced_binary_case(self):
        score = macro_f1_score([0, 0, 1, 1], [0, 1, 0, 1])
        assert score == pytest.approx(0.5)

    def test_missing_class_counts_as_zero(self):
        score = macro_f1_score([0, 0, 1], [0, 0, 0])
        # class 1 has F1 = 0; class 0 has F1 = 2*2/(2*2+1) = 0.8.
        assert score == pytest.approx((0.8 + 0.0) / 2)
