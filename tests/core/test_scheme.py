"""Tests for the learned hashing scheme (hash table + classifier)."""

import numpy as np
import pytest

from repro.core.scheme import OptHashScheme, default_featurizer
from repro.ml.tree import DecisionTreeClassifier
from repro.streams.stream import Element


def fitted_classifier():
    """A classifier mapping 1-D features below 2.5 to bucket 0, else bucket 1."""
    X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
    y = np.array([0, 0, 0, 1, 1, 1])
    return DecisionTreeClassifier(max_depth=2).fit(X, y)


class TestConstruction:
    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            OptHashScheme(num_buckets=0, key_to_bucket={})

    def test_out_of_range_bucket_rejected(self):
        with pytest.raises(ValueError):
            OptHashScheme(num_buckets=2, key_to_bucket={"a": 5})

    def test_default_featurizer_uses_element_features(self):
        element = Element.with_features("x", [1.5, 2.5])
        np.testing.assert_allclose(default_featurizer(element), [1.5, 2.5])


class TestRouting:
    def test_seen_elements_use_hash_table(self):
        scheme = OptHashScheme(
            num_buckets=3,
            key_to_bucket={"a": 2, "b": 0},
            classifier=fitted_classifier(),
        )
        assert scheme.is_seen(Element(key="a"))
        assert scheme.bucket_of(Element.with_features("a", [0.0])) == 2
        assert scheme.bucket_of(Element.with_features("b", [5.0])) == 0

    def test_unseen_elements_use_classifier(self):
        scheme = OptHashScheme(
            num_buckets=2, key_to_bucket={}, classifier=fitted_classifier()
        )
        assert scheme.bucket_of(Element.with_features("low", [0.5])) == 0
        assert scheme.bucket_of(Element.with_features("high", [4.5])) == 1

    def test_unseen_without_classifier_falls_back_to_bucket_zero(self):
        scheme = OptHashScheme(num_buckets=4, key_to_bucket={"a": 3})
        assert scheme.bucket_of(Element(key="unknown")) == 0

    def test_custom_featurizer_applied(self):
        scheme = OptHashScheme(
            num_buckets=2,
            key_to_bucket={},
            classifier=fitted_classifier(),
            featurizer=lambda element: [float(len(str(element.key)))],
        )
        assert scheme.bucket_of(Element(key="ab")) == 0  # length 2 -> low
        assert scheme.bucket_of(Element(key="abcdef")) == 1  # length 6 -> high

    def test_predict_buckets_batches_and_caches(self):
        scheme = OptHashScheme(
            num_buckets=2, key_to_bucket={}, classifier=fitted_classifier()
        )
        elements = [Element.with_features(f"k{i}", [float(i)]) for i in range(6)]
        buckets = scheme.predict_buckets(elements)
        np.testing.assert_array_equal(buckets, [0, 0, 0, 1, 1, 1])
        # Cached predictions are reused by single-element routing.
        assert scheme.predict_bucket(elements[5]) == 1

    def test_precompute_skips_seen_elements(self):
        scheme = OptHashScheme(
            num_buckets=2, key_to_bucket={"seen": 1}, classifier=fitted_classifier()
        )
        scheme.precompute([Element.with_features("seen", [0.0]), Element.with_features("new", [4.0])])
        assert scheme.bucket_of(Element.with_features("seen", [0.0])) == 1
        assert scheme.bucket_of(Element.with_features("new", [4.0])) == 1

    def test_predict_buckets_empty_input(self):
        scheme = OptHashScheme(num_buckets=2, key_to_bucket={}, classifier=fitted_classifier())
        assert scheme.predict_buckets([]).shape == (0,)


class TestIntrospection:
    def test_num_stored_ids_and_population(self):
        scheme = OptHashScheme(
            num_buckets=3, key_to_bucket={"a": 0, "b": 0, "c": 2}
        )
        assert scheme.num_stored_ids == 3
        np.testing.assert_array_equal(scheme.bucket_population(), [2, 0, 1])

    def test_hash_codes_returns_copy(self):
        scheme = OptHashScheme(num_buckets=2, key_to_bucket={"a": 1})
        codes = scheme.hash_codes()
        codes["a"] = 0
        assert scheme.key_to_bucket["a"] == 1
