"""Batch replay through the core opt-hash stack and the stream helpers."""

import numpy as np
import pytest

from repro.core.pipeline import OptHashConfig, replay, train_opt_hash
from repro.streams.stream import Element, FrequencyVector, Stream
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


@pytest.fixture(scope="module")
def prefix_and_stream():
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=5, fraction_seen=0.5, seed=3)
    )
    return generator.generate_prefix_and_stream(
        prefix_length=400, stream_multiplier=5
    )


def _train(prefix, adaptive):
    config = OptHashConfig(
        num_buckets=8,
        lam=0.5,
        solver="bcd",
        classifier="cart",
        adaptive=adaptive,
        expected_distinct=2000,
        seed=11,
    )
    return train_opt_hash(prefix, config).estimator


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
def test_opt_hash_batch_replay_bit_identical(prefix_and_stream, adaptive):
    prefix, stream = prefix_and_stream
    scalar = _train(prefix, adaptive)
    batch = _train(prefix, adaptive)
    for element in stream:
        scalar.update(element)
    processed = replay(batch, stream, batch_size=333)
    assert processed == len(stream)
    assert (scalar.bucket_totals == batch.bucket_totals).all()
    assert (scalar.bucket_counts == batch.bucket_counts).all()
    probes = stream.distinct_elements()
    scalar_estimates = [scalar.estimate(element) for element in probes]
    assert batch.estimate_batch(probes).tolist() == scalar_estimates


def test_replay_accepts_raw_key_arrays():
    sketches = pytest.importorskip("repro.sketches")
    keys = np.random.default_rng(0).integers(0, 50, size=1000)
    scalar = sketches.CountMinSketch(32, 2, seed=1)
    batch = sketches.CountMinSketch(32, 2, seed=1)
    for key in keys:
        scalar.update(Element(key=int(key)))
    assert replay(batch, keys, batch_size=128) == len(keys)
    assert (scalar.counters() == batch.counters()).all()


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
def test_zero_count_batch_entries_are_noops(prefix_and_stream, adaptive):
    """A zero-count arrival must not touch counters or the Bloom filter."""
    prefix, stream = prefix_and_stream
    untouched = _train(prefix, adaptive)
    zeroed = _train(prefix, adaptive)
    unseen_key = max(e.key for e in stream.distinct_elements()) + 1000
    zeroed.update_batch([unseen_key, stream[0].key], np.array([0, 0]))
    assert (untouched.bucket_totals == zeroed.bucket_totals).all()
    assert (untouched.bucket_counts == zeroed.bucket_counts).all()
    if adaptive:
        # The Bloom filter must not have learned the zero-count key.
        assert zeroed.estimate_batch([unseen_key]).tolist() == [0.0]


def test_update_many_delegates_to_batch_path(prefix_and_stream):
    from repro.sketches import CountMinSketch

    prefix, _ = prefix_and_stream
    one_by_one = CountMinSketch(64, 2, seed=0)
    many = CountMinSketch(64, 2, seed=0)
    for element in prefix:
        one_by_one.update(element)
    many.update_many(prefix)
    assert (one_by_one.counters() == many.counters()).all()


def test_replay_rejects_bad_batch_size():
    from repro.sketches import ExactCounter

    with pytest.raises(ValueError):
        replay(ExactCounter(), [1, 2, 3], batch_size=0)


class TestStreamKeyBatches:
    def test_key_array_integer_fast_path(self):
        stream = Stream(arrivals=[Element(key=i % 7) for i in range(50)])
        keys = stream.key_array()
        assert keys.dtype.kind == "i"
        assert keys.tolist() == [i % 7 for i in range(50)]

    def test_key_array_object_path_for_strings(self):
        stream = Stream(arrivals=[Element(key=f"q{i}") for i in range(10)])
        keys = stream.key_array()
        assert keys.dtype == object
        assert keys.tolist() == [f"q{i}" for i in range(10)]

    def test_key_array_cache_invalidated_on_mutation(self):
        stream = Stream(arrivals=[Element(key=1)])
        assert stream.key_array().tolist() == [1]
        stream.append(Element(key=2))
        assert stream.key_array().tolist() == [1, 2]
        stream.extend([Element(key=3)])
        assert stream.key_array().tolist() == [1, 2, 3]

    def test_iter_key_batches_covers_stream_in_order(self):
        stream = Stream(arrivals=[Element(key=i) for i in range(10)])
        chunks = list(stream.iter_key_batches(batch_size=4))
        assert [chunk.tolist() for chunk in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        with pytest.raises(ValueError):
            list(stream.iter_key_batches(batch_size=0))


class TestFrequencyVectorBatch:
    def test_increment_batch_matches_scalar(self):
        scalar, batch = FrequencyVector(), FrequencyVector()
        keys = ["a", "b", "a", "c", "a"]
        for key in keys:
            scalar.increment(key)
        batch.increment_batch(keys)
        assert scalar.as_dict() == batch.as_dict()

    def test_increment_batch_with_counts(self):
        freq = FrequencyVector()
        freq.increment_batch(["a", "b"], [2, 5])
        assert freq["a"] == 2 and freq["b"] == 5
        with pytest.raises(ValueError):
            freq.increment_batch(["a"], [-1])
        with pytest.raises(ValueError):
            freq.increment_batch(["a", "b"], [1])

    def test_counts_for_aligned_lookup(self):
        freq = FrequencyVector({"a": 3, "b": 1})
        assert freq.counts_for(["b", "missing", "a"]).tolist() == [1.0, 0.0, 3.0]
