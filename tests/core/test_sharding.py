"""Sharded-vs-serial equivalence for :class:`ShardedEstimator`.

The contract: replaying a stream through k shards and collapsing must give
exactly what one estimator ingesting the whole stream serially would hold —
for both partition modes, int and string keys, and weighted batches.  The
process executor additionally exercises the serialization transport
(blank-shard bytes out, ingested-shard bytes back, merge on arrival).
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveOptHashEstimator,
    OptHashEstimator,
    OptHashScheme,
    ShardedEstimator,
    replay_sharded,
)
from repro.core.pipeline import replay
from repro.sketches import CountMinSketch, CountSketch, ExactCounter
from repro.streams.stream import Element

STREAM_LENGTH = 12_000
UNIVERSE = 900


def make_keys(string_keys: bool, seed: int = 5):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, UNIVERSE, size=STREAM_LENGTH)
    if string_keys:
        return [f"item:{value}" for value in keys.tolist()]
    return keys


def make_queries(keys):
    if isinstance(keys, np.ndarray):
        return np.unique(keys)
    return sorted(set(keys))


def chunked_replay(estimator, keys, chunk=2048):
    for start in range(0, len(keys), chunk):
        estimator.update_batch(keys[start : start + chunk])


@pytest.mark.parametrize("mode", ["key-partition", "round-robin"])
@pytest.mark.parametrize("num_shards", [1, 2, 7])
@pytest.mark.parametrize("string_keys", [False, True])
def test_sharded_cms_equals_serial(mode, num_shards, string_keys):
    keys = make_keys(string_keys)
    queries = make_queries(keys)
    factory = lambda: CountMinSketch.from_total_buckets(2048, depth=3, seed=17)
    serial = factory()
    chunked_replay(serial, keys)
    with ShardedEstimator(factory, num_shards, mode=mode) as sharded:
        chunked_replay(sharded, keys)
        merged = sharded.collapse()
        assert (merged.counters() == serial.counters()).all()
        assert (
            sharded.estimate_batch(queries) == serial.estimate_batch(queries)
        ).all()


@pytest.mark.parametrize("mode", ["key-partition", "round-robin"])
def test_sharded_weighted_batches(mode):
    rng = np.random.default_rng(11)
    keys = rng.integers(0, UNIVERSE, size=4000)
    counts = rng.integers(0, 6, size=4000)
    factory = lambda: CountSketch(512, depth=3, seed=23)
    serial = factory()
    serial.update_batch(keys, counts)
    with ShardedEstimator(factory, 4, mode=mode) as sharded:
        sharded.update_batch(keys, counts)
        assert (sharded.collapse().counters() == serial.counters()).all()


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_executors_agree_bit_identically(executor):
    keys = make_keys(False)
    queries = make_queries(keys)
    factory = lambda: CountMinSketch.from_total_buckets(2048, depth=2, seed=3)
    serial = factory()
    chunked_replay(serial, keys)
    with ShardedEstimator(factory, 4, executor=executor) as sharded:
        chunked_replay(sharded, keys)
        assert (sharded.collapse().counters() == serial.counters()).all()
        assert (
            sharded.estimate_batch(queries) == serial.estimate_batch(queries)
        ).all()


def test_process_executor_with_string_keys():
    keys = make_keys(True)
    factory = lambda: CountMinSketch.from_total_buckets(1024, depth=2, seed=3)
    serial = factory()
    serial.update_batch(keys)
    with ShardedEstimator(factory, 2, executor="process") as sharded:
        sharded.update_batch(keys)
        assert (sharded.collapse().counters() == serial.counters()).all()


def test_fanout_queries_match_collapse_for_exact_counter():
    keys = make_keys(False)
    queries = make_queries(keys)
    truth = ExactCounter()
    truth.update_batch(keys)
    with ShardedEstimator(ExactCounter, 7, query_mode="fanout") as sharded:
        chunked_replay(sharded, keys)
        assert (
            sharded.estimate_batch(queries) == truth.estimate_batch(queries)
        ).all()
        assert sharded.estimate(Element(key=int(queries[0]))) == truth.estimate(
            Element(key=int(queries[0]))
        )


def test_fanout_requires_key_partition():
    with pytest.raises(ValueError, match="fanout"):
        ShardedEstimator(ExactCounter, 2, mode="round-robin", query_mode="fanout")


def test_process_executor_requires_serializable_shards():
    scheme = OptHashScheme(num_buckets=4, key_to_bucket={1: 0, 2: 1})
    factory = lambda: OptHashEstimator(scheme)
    with pytest.raises(ValueError, match="serializable"):
        ShardedEstimator(factory, 2, executor="process")


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ShardedEstimator(ExactCounter, 0)
    with pytest.raises(ValueError):
        ShardedEstimator(ExactCounter, 2, mode="hash-ring")
    with pytest.raises(ValueError):
        ShardedEstimator(ExactCounter, 2, executor="mpi")
    with pytest.raises(ValueError):
        ShardedEstimator(ExactCounter, 2, query_mode="scatter")


class TestOptHashSharding:
    """The paper's estimators run sharded through the same machinery."""

    def scheme_and_initial(self, keys):
        distinct = sorted({int(key) for key in np.asarray(keys).tolist()})
        stored = distinct[: len(distinct) // 2]
        scheme = OptHashScheme(
            num_buckets=16,
            key_to_bucket={key: key % 16 for key in stored},
        )
        initial = {key: float(1 + key % 5) for key in stored}
        return scheme, initial

    def test_static_opt_hash_sharded_equals_serial(self):
        keys = make_keys(False)
        scheme, initial = self.scheme_and_initial(keys)
        serial = OptHashEstimator(scheme, initial_frequencies=initial)
        replay(serial, keys)
        factory = lambda: OptHashEstimator(scheme, initial_frequencies=initial)
        with ShardedEstimator(factory, 4, executor="thread") as sharded:
            replay(sharded, keys)
            merged = sharded.collapse()
            assert (merged.bucket_totals == serial.bucket_totals).all()
            assert (merged.bucket_counts == serial.bucket_counts).all()
            queries = make_queries(keys)
            assert (
                merged.estimate_batch(queries) == serial.estimate_batch(queries)
            ).all()

    def test_adaptive_opt_hash_key_partition_equals_serial(self):
        keys = make_keys(False)
        scheme, initial = self.scheme_and_initial(keys)
        serial = AdaptiveOptHashEstimator(scheme, initial_frequencies=initial, seed=7)
        replay(serial, keys)
        factory = lambda: AdaptiveOptHashEstimator(
            scheme, initial_frequencies=initial, seed=7
        )
        with ShardedEstimator(factory, 4, mode="key-partition") as sharded:
            replay(sharded, keys)
            merged = sharded.collapse()
            assert (merged.bucket_totals == serial.bucket_totals).all()
            assert (merged.bucket_counts == serial.bucket_counts).all()
            assert (
                merged.bloom_filter._bits == serial.bloom_filter._bits
            ).all()

    def test_static_opt_hash_with_classifier_collapses(self):
        # collapse() builds its merge target from the factory, so the
        # identity-based classifier compatibility check must hold even
        # though deepcopy/serialization could not reproduce the object.
        from repro.ml import make_classifier

        keys = make_keys(False)
        scheme, initial = self.scheme_and_initial(keys)
        classifier = make_classifier("cart", random_state=0)
        classifier.fit(np.asarray([[0.0], [1.0]]), np.asarray([0, 1]))
        scheme.classifier = classifier
        serial = OptHashEstimator(scheme, initial_frequencies=initial)
        replay(serial, keys)
        factory = lambda: OptHashEstimator(scheme, initial_frequencies=initial)
        with ShardedEstimator(factory, 3) as sharded:
            replay(sharded, keys)
            merged = sharded.collapse()
            assert (merged.bucket_totals == serial.bucket_totals).all()
            # Queries for stored keys resolve through the exact hash table.
            stored = list(scheme.key_to_bucket)[:50]
            assert (
                merged.estimate_batch(stored) == serial.estimate_batch(stored)
            ).all()

    def test_sharded_replay_helper_collapses(self):
        keys = make_keys(False)
        factory = lambda: CountMinSketch.from_total_buckets(1024, depth=2, seed=9)
        serial = factory()
        replay(serial, keys)
        merged = replay_sharded(factory, keys, num_shards=3, executor="serial")
        assert isinstance(merged, CountMinSketch)
        assert (merged.counters() == serial.counters()).all()

    def test_sharded_replay_helper_live_estimator(self):
        keys = make_keys(False)
        factory = lambda: CountMinSketch.from_total_buckets(1024, depth=2, seed=9)
        serial = factory()
        replay(serial, keys)
        sharded = replay_sharded(factory, keys, num_shards=3, collapse=False)
        try:
            assert isinstance(sharded, ShardedEstimator)
            queries = make_queries(keys)
            assert (
                sharded.estimate_batch(queries) == serial.estimate_batch(queries)
            ).all()
            # Still live: keep streaming, stays equivalent.
            more = np.arange(100)
            serial.update_batch(more)
            sharded.update_batch(more)
            assert (sharded.collapse().counters() == serial.counters()).all()
        finally:
            sharded.close()


def test_process_backpressure_bounds_pending_queue():
    """Many small batches must not grow the in-flight backlog unboundedly."""
    factory = lambda: CountMinSketch.from_total_buckets(512, depth=2, seed=9)
    keys = make_keys(False)
    serial = factory()
    serial.update_batch(keys)
    with ShardedEstimator(factory, 2, executor="process") as sharded:
        cap = ShardedEstimator._MAX_PENDING_FACTOR * 2
        for start in range(0, len(keys), 400):
            sharded.update_batch(keys[start : start + 400])
            assert len(sharded._pending) <= cap + 2
        assert (sharded.collapse().counters() == serial.counters()).all()


def test_sharded_merge_shard_wise():
    keys = make_keys(False)
    factory = lambda: CountMinSketch.from_total_buckets(1024, depth=2, seed=9)
    serial = factory()
    serial.update_batch(keys)
    first = ShardedEstimator(factory, 3)
    second = ShardedEstimator(factory, 3)
    first.update_batch(keys[:6000])
    second.update_batch(keys[6000:])
    first.merge(second)
    assert (first.collapse().counters() == serial.counters()).all()


def test_size_bytes_sums_over_shards():
    factory = lambda: CountMinSketch.from_total_buckets(1024, depth=2, seed=9)
    with ShardedEstimator(factory, 5) as sharded:
        assert sharded.size_bytes == 5 * factory().size_bytes


# ----------------------------------------------------------------------
# shm transport (persistent worker pool + shared-memory tables)
# ----------------------------------------------------------------------
CMS_SPEC = {"kind": "count_min", "total_buckets": 2048, "depth": 3, "seed": 17}


@pytest.mark.parametrize("mode", ["key-partition", "round-robin"])
@pytest.mark.parametrize("string_keys", [False, True])
def test_shm_transport_equals_serial(mode, string_keys):
    """Persistent shm workers must reproduce serial ingestion bit for bit."""
    keys = make_keys(string_keys)
    queries = make_queries(keys)
    serial = CountMinSketch.from_total_buckets(2048, depth=3, seed=17)
    chunked_replay(serial, keys)
    with ShardedEstimator(
        CMS_SPEC, 2, mode=mode, executor="process", transport="shm"
    ) as sharded:
        chunked_replay(sharded, keys)
        assert (sharded.collapse().counters() == serial.counters()).all()
        assert (
            sharded.estimate_batch(queries) == serial.estimate_batch(queries)
        ).all()
        # live_estimate reads the shared tables directly; after the drain
        # the collapse() above implies, it is exact.
        assert (
            sharded.live_estimate(queries[:20]) == serial.estimate_batch(queries[:20])
        ).all()


def test_shm_transport_weighted_batches():
    rng = np.random.default_rng(11)
    keys = rng.integers(0, UNIVERSE, size=4000)
    counts = rng.integers(0, 6, size=4000)
    serial = CountMinSketch.from_total_buckets(2048, depth=3, seed=17)
    serial.update_batch(keys, counts)
    with ShardedEstimator(
        CMS_SPEC, 3, executor="process", transport="shm"
    ) as sharded:
        sharded.update_batch(keys, counts)
        assert (sharded.collapse().counters() == serial.counters()).all()


def test_shm_transport_parent_reads_worker_writes_live():
    """The zero-copy property itself: resident shard tables fill up without
    any drain/merge having copied state back."""
    keys = make_keys(False)
    with ShardedEstimator(
        CMS_SPEC, 2, executor="process", transport="shm"
    ) as sharded:
        sharded.warm_up()
        assert all(shard.counters().sum() == 0 for shard in sharded.shards)
        sharded.update_batch(keys)
        sharded._worker_pool.join()  # wait, but never ship state back
        total = sum(int(shard.counters().sum()) for shard in sharded.shards)
        assert total == len(keys) * 3  # depth increments per arrival


def test_shm_transport_requires_process_executor_and_specs():
    with pytest.raises(ValueError):
        ShardedEstimator(CMS_SPEC, 2, executor="thread", transport="shm")
    factory = lambda: CountMinSketch.from_total_buckets(512, depth=2, seed=1)
    with pytest.raises(ValueError):
        ShardedEstimator(factory, 2, executor="process", transport="shm")
    with pytest.raises(ValueError):
        ShardedEstimator(
            {"kind": "exact_counter"}, 2, executor="process", transport="shm"
        )
    with pytest.raises(ValueError):
        ShardedEstimator(
            {**CMS_SPEC, "storage": "mmap"}, 2, executor="process", transport="shm"
        )


def test_shm_transport_serializes_and_restores():
    keys = make_keys(False)
    serial = CountMinSketch.from_total_buckets(2048, depth=3, seed=17)
    serial.update_batch(keys)
    with ShardedEstimator(
        CMS_SPEC, 2, executor="process", transport="shm"
    ) as sharded:
        sharded.update_batch(keys)
        blob = sharded.to_bytes()
    revived = ShardedEstimator.from_bytes(blob)
    try:
        assert revived.transport == "shm"
        queries = make_queries(keys)
        assert (
            revived.estimate_batch(queries) == serial.estimate_batch(queries)
        ).all()
        # The revived estimator must keep ingesting through fresh workers.
        revived.update_batch(keys[:500])
        serial.update_batch(keys[:500])
        assert (revived.collapse().counters() == serial.counters()).all()
    finally:
        revived.close()


def test_close_is_idempotent_and_releases_backends():
    keys = make_keys(False)[:4000]
    sharded = ShardedEstimator(CMS_SPEC, 2, executor="process", transport="shm")
    sharded.update_batch(keys)
    expected = sharded.estimate_batch(make_queries(keys)).copy()
    segment_names = [shard.storage_manifest()["name"] for shard in sharded.shards]
    sharded.close()
    sharded.close()  # idempotent
    with sharded:  # __exit__ after close must also be a no-op
        pass
    # Segments are unlinked; shards detached into dense copies keep answering.
    from repro.core.storage import attach, StorageError

    for name in segment_names:
        with pytest.raises(StorageError):
            attach({"backend": "shm", "name": name, "shape": [3, 682], "dtype": "<i8"})
    assert all(shard.storage_backend == "dense" for shard in sharded.shards)
    assert (sharded.estimate_batch(make_queries(keys)) == expected).all()


def test_spec_built_shm_transport_through_build():
    import repro.api as api

    keys = make_keys(False)[:6000]
    spec = {
        "kind": "sharded",
        "inner": CMS_SPEC,
        "num_shards": 2,
        "executor": "process",
        "transport": "shm",
    }
    serial = CountMinSketch.from_total_buckets(2048, depth=3, seed=17)
    serial.update_batch(keys)
    estimator = api.build(spec)
    try:
        assert estimator.transport == "shm"
        assert estimator.describe()["params"]["transport"] == "shm"
        estimator.update_batch(keys)
        assert (
            estimator.collapse().counters() == serial.counters()
        ).all()
    finally:
        estimator.close()
