"""Tests for the end-to-end opt-hash training pipeline."""

import numpy as np
import pytest

from repro.core.estimator import AdaptiveOptHashEstimator, OptHashEstimator
from repro.core.pipeline import (
    OptHashConfig,
    sample_prefix_elements,
    split_bucket_budget,
    train_opt_hash,
)
from repro.ml.text import QueryFeaturizer
from repro.streams.stream import Element, StreamPrefix


class TestSplitBucketBudget:
    def test_paper_formula(self):
        num_stored, num_buckets = split_bucket_budget(1000, 0.25)
        assert num_stored == 800
        assert num_buckets == 200
        assert num_stored + num_buckets == 1000

    def test_small_ratio_stores_most_ids(self):
        num_stored, num_buckets = split_bucket_budget(1000, 0.03)
        assert num_stored > num_buckets
        assert num_stored + num_buckets == 1000

    def test_at_least_one_of_each(self):
        num_stored, num_buckets = split_bucket_budget(2, 1000.0)
        assert num_stored == 1
        assert num_buckets == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            split_bucket_budget(1, 0.3)
        with pytest.raises(ValueError):
            split_bucket_budget(10, 0.0)


class TestSamplePrefixElements:
    def test_all_kept_when_budget_sufficient(self):
        indices = sample_prefix_elements(np.array([1.0, 2.0, 3.0]), 10)
        np.testing.assert_array_equal(indices, [0, 1, 2])

    def test_sample_size_respected(self, rng):
        frequencies = rng.integers(1, 100, size=50).astype(float)
        indices = sample_prefix_elements(frequencies, 10, rng=rng)
        assert len(indices) == 10
        assert len(set(indices.tolist())) == 10

    def test_frequency_proportional_sampling_prefers_heavy_elements(self):
        frequencies = np.array([1.0] * 50 + [1000.0] * 5)
        rng = np.random.default_rng(0)
        counts = np.zeros(55)
        for _ in range(50):
            indices = sample_prefix_elements(frequencies, 5, rng=rng)
            counts[indices] += 1
        # The five heavy elements should be selected nearly always.
        assert counts[50:].mean() > 10 * counts[:50].mean()

    def test_uniform_sampling_supported(self, rng):
        frequencies = np.array([1.0, 1000.0, 1.0, 1.0])
        indices = sample_prefix_elements(
            frequencies, 2, proportional_to_frequency=False, rng=rng
        )
        assert len(indices) == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            sample_prefix_elements(np.array([1.0, 2.0]), 0)


class TestTrainOptHash:
    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            train_opt_hash(StreamPrefix(arrivals=[]), OptHashConfig())

    def test_training_produces_consistent_scheme(self, toy_prefix):
        config = OptHashConfig(num_buckets=2, lam=1.0, solver="dp", seed=0)
        result = train_opt_hash(toy_prefix, config)
        assert set(result.scheme.key_to_bucket) == {"a", "b", "c", "d"}
        # Elements with close frequencies (6,5) and (1,2) share buckets.
        scheme = result.scheme
        assert scheme.key_to_bucket["a"] == scheme.key_to_bucket["b"]
        assert scheme.key_to_bucket["c"] == scheme.key_to_bucket["d"]
        assert scheme.key_to_bucket["a"] != scheme.key_to_bucket["c"]

    def test_estimator_answers_prefix_averages(self, toy_prefix):
        config = OptHashConfig(num_buckets=2, lam=1.0, solver="dp", seed=0)
        estimator = train_opt_hash(toy_prefix, config).estimator
        assert isinstance(estimator, OptHashEstimator)
        assert estimator.estimate(Element(key="a")) == pytest.approx(5.5)
        assert estimator.estimate(Element(key="c")) == pytest.approx(1.5)

    def test_unseen_elements_estimated_via_classifier(self, toy_prefix):
        config = OptHashConfig(num_buckets=2, lam=0.5, solver="bcd", classifier="cart", seed=0)
        estimator = train_opt_hash(toy_prefix, config).estimator
        # Feature 5.2 resembles the low-frequency group (c, d).
        unseen = Element.with_features("e", [5.2])
        assert estimator.estimate(unseen) == pytest.approx(1.5)

    def test_classifier_disabled_falls_back_to_bucket_zero(self, toy_prefix):
        config = OptHashConfig(num_buckets=2, lam=1.0, solver="dp", classifier=None, seed=0)
        result = train_opt_hash(toy_prefix, config)
        assert result.classifier is None
        unseen = Element.with_features("zzz", [100.0])
        assert result.scheme.bucket_of(unseen) == 0

    def test_max_stored_elements_caps_hash_table(self, small_prefix):
        config = OptHashConfig(
            num_buckets=4, lam=1.0, solver="dp", max_stored_elements=5, seed=0
        )
        result = train_opt_hash(small_prefix, config)
        assert result.scheme.num_stored_ids == 5
        assert len(result.stored_keys) == 5

    def test_adaptive_configuration_builds_adaptive_estimator(self, toy_prefix):
        config = OptHashConfig(
            num_buckets=2, lam=1.0, solver="dp", adaptive=True, expected_distinct=100, seed=0
        )
        estimator = train_opt_hash(toy_prefix, config).estimator
        assert isinstance(estimator, AdaptiveOptHashEstimator)

    def test_custom_featurizer_used_for_classifier(self):
        # Keys are strings; features come from a text featurizer, not elements.
        arrivals = [Element(key="www.google.com")] * 10 + [Element(key="rare long query text")] * 1
        prefix = StreamPrefix(arrivals=arrivals)
        featurizer_model = QueryFeaturizer(vocabulary_size=10)
        featurizer_model.fit([e.key for e in prefix.distinct_elements()])
        config = OptHashConfig(num_buckets=2, lam=1.0, solver="dp", classifier="cart", seed=0)
        result = train_opt_hash(
            prefix, config, featurizer=lambda e: featurizer_model.transform_one(str(e.key))
        )
        assert result.stored_features.shape[1] == featurizer_model.num_features

    def test_classifier_tuning_runs_grid_search(self, small_prefix):
        config = OptHashConfig(
            num_buckets=3,
            lam=0.5,
            solver="bcd",
            classifier="cart",
            tune_classifier=True,
            tuning_grid={"max_depth": [2, 6]},
            tuning_folds=3,
            seed=0,
        )
        result = train_opt_hash(small_prefix, config)
        assert result.classifier_cv_score is not None
        assert 0.0 <= result.classifier_cv_score <= 1.0

    def test_reproducible_with_seed(self, small_prefix):
        config = OptHashConfig(num_buckets=4, lam=0.5, solver="bcd", seed=11)
        first = train_opt_hash(small_prefix, config)
        second = train_opt_hash(small_prefix, config)
        np.testing.assert_array_equal(
            first.solver_result.assignment.labels, second.solver_result.assignment.labels
        )

    def test_single_bucket_degenerate_case(self, toy_prefix):
        config = OptHashConfig(num_buckets=1, lam=1.0, solver="dp", seed=0)
        result = train_opt_hash(toy_prefix, config)
        estimator = result.estimator
        # Everything shares one bucket: the estimate is the global average.
        assert estimator.estimate(Element(key="a")) == pytest.approx(14 / 4)
