"""Tests for the static and adaptive opt-hash estimators."""

import numpy as np
import pytest

from repro.core.estimator import AdaptiveOptHashEstimator, OptHashEstimator
from repro.core.scheme import OptHashScheme
from repro.ml.tree import DecisionTreeClassifier
from repro.sketches.base import BYTES_PER_BUCKET
from repro.streams.stream import Element


def make_scheme(with_classifier=True):
    """Two buckets: 'light' elements in bucket 0, 'heavy' elements in bucket 1."""
    classifier = None
    if with_classifier:
        X = np.array([[0.0], [1.0], [9.0], [10.0]])
        y = np.array([0, 0, 1, 1])
        classifier = DecisionTreeClassifier(max_depth=1).fit(X, y)
    return OptHashScheme(
        num_buckets=2,
        key_to_bucket={"l1": 0, "l2": 0, "h1": 1, "h2": 1},
        classifier=classifier,
    )


INITIAL = {"l1": 2.0, "l2": 4.0, "h1": 100.0, "h2": 104.0}


class TestOptHashEstimator:
    def test_initial_estimates_are_bucket_averages(self):
        estimator = OptHashEstimator(make_scheme(), initial_frequencies=INITIAL)
        assert estimator.estimate(Element(key="l1")) == pytest.approx(3.0)
        assert estimator.estimate(Element(key="h2")) == pytest.approx(102.0)

    def test_update_increments_only_seen_elements(self):
        estimator = OptHashEstimator(make_scheme(), initial_frequencies=INITIAL)
        estimator.update(Element(key="l1"))
        estimator.update(Element(key="l1"))
        # Two more arrivals shared between the 2 elements of bucket 0.
        assert estimator.estimate(Element(key="l2")) == pytest.approx(4.0)
        # Arrivals of unseen elements are ignored by the static estimator.
        estimator.update(Element.with_features("unknown", [0.0]))
        assert estimator.estimate(Element(key="l2")) == pytest.approx(4.0)

    def test_unseen_query_routed_by_classifier(self):
        estimator = OptHashEstimator(make_scheme(), initial_frequencies=INITIAL)
        heavy_looking = Element.with_features("new-heavy", [9.5])
        light_looking = Element.with_features("new-light", [0.5])
        assert estimator.estimate(heavy_looking) == pytest.approx(102.0)
        assert estimator.estimate(light_looking) == pytest.approx(3.0)

    def test_initial_frequencies_for_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            OptHashEstimator(make_scheme(), initial_frequencies={"not-in-scheme": 1.0})

    def test_without_initial_frequencies_counts_start_at_zero(self):
        estimator = OptHashEstimator(make_scheme())
        assert estimator.estimate(Element(key="l1")) == 0.0
        estimator.update(Element(key="l1"))
        # One arrival averaged over the two stored elements of bucket 0.
        assert estimator.estimate(Element(key="l1")) == pytest.approx(0.5)

    def test_size_accounts_for_buckets_and_stored_ids(self):
        estimator = OptHashEstimator(make_scheme(), initial_frequencies=INITIAL)
        assert estimator.size_bytes == BYTES_PER_BUCKET * (2 + 4)
        bare = OptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, count_stored_ids=False
        )
        assert bare.size_bytes == BYTES_PER_BUCKET * 2

    def test_bucket_introspection(self):
        estimator = OptHashEstimator(make_scheme(), initial_frequencies=INITIAL)
        np.testing.assert_allclose(estimator.bucket_totals, [6.0, 204.0])
        np.testing.assert_allclose(estimator.bucket_counts, [2.0, 2.0])
        assert estimator.bucket_average(1) == pytest.approx(102.0)

    def test_empty_bucket_estimates_zero(self):
        scheme = OptHashScheme(num_buckets=3, key_to_bucket={"a": 0})
        estimator = OptHashEstimator(scheme, initial_frequencies={"a": 5.0})
        # Bucket 2 has no elements; an element routed there estimates 0.
        assert estimator.bucket_average(2) == 0.0


class TestAdaptiveOptHashEstimator:
    def test_prefix_elements_marked_seen(self):
        estimator = AdaptiveOptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, seed=0
        )
        assert estimator.estimate(Element(key="l1")) == pytest.approx(3.0)

    def test_unseen_element_estimates_zero_until_it_arrives(self):
        estimator = AdaptiveOptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, seed=0
        )
        newcomer = Element.with_features("newcomer", [0.3])
        assert estimator.estimate(newcomer) == 0.0
        estimator.update(newcomer)
        assert estimator.estimate(newcomer) > 0.0

    def test_first_arrival_grows_element_count(self):
        estimator = AdaptiveOptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, seed=0
        )
        newcomer = Element.with_features("newcomer", [0.3])
        before = estimator.bucket_counts[0]
        estimator.update(newcomer)
        estimator.update(newcomer)
        after = estimator.bucket_counts[0]
        assert after == before + 1  # counted once, not twice

    def test_every_arrival_increments_bucket_total(self):
        estimator = AdaptiveOptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, seed=0
        )
        before = estimator.bucket_totals[1]
        estimator.update(Element(key="h1"))
        estimator.update(Element.with_features("new-heavy", [9.9]))
        after = estimator.bucket_totals[1]
        assert after == before + 2

    def test_size_includes_bloom_filter(self):
        estimator = AdaptiveOptHashEstimator(
            make_scheme(), initial_frequencies=INITIAL, bloom_bits=8000, seed=0
        )
        assert estimator.size_bytes >= 8000 // 8

    def test_without_initial_frequencies_prefix_keys_still_seen(self):
        estimator = AdaptiveOptHashEstimator(make_scheme(), seed=0)
        assert "l1" in estimator.bloom_filter
        assert estimator.bucket_counts.sum() == 4
