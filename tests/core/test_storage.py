"""Unit tests for the counter-storage backends (``repro.core.storage``).

Covers the raw backend contract (allocate / attach / close / unlink), the
:class:`StorageBacked` sketch integration (backend selection, cross-process
adoption, detach-on-close), and the spec-level plumbing (``storage=`` field
validation, ``kind_supports_storage``).
"""

import os

import numpy as np
import pytest

import repro.api as api
from repro.api.registry import kind_supports_storage
from repro.api.specs import SpecError, SketchSpec
from repro.core.storage import (
    STORAGE_BACKENDS,
    DenseStorage,
    MmapStorage,
    SharedMemoryStorage,
    StorageError,
    allocate,
    attach,
)
from repro.sketches import AmsSketch, BloomFilter, CountMinSketch, CountSketch
from repro.sketches.serialization import SerializationError


def keys_stream(n=5000, universe=300, seed=0):
    return np.random.default_rng(seed).integers(0, universe, size=n)


# ----------------------------------------------------------------------
# raw backend contract
# ----------------------------------------------------------------------
class TestBackends:
    @pytest.mark.parametrize("backend", STORAGE_BACKENDS)
    def test_allocate_gives_zeroed_writable_array(self, backend, tmp_path):
        path = str(tmp_path / "t.bin") if backend == "mmap" else None
        storage = allocate((3, 7), np.int64, backend, path=path)
        try:
            assert storage.backend == backend
            assert storage.array.shape == (3, 7)
            assert storage.array.dtype == np.int64
            assert (np.asarray(storage.array) == 0).all()
            storage.array[1, 2] = 41
            np.add.at(storage.array[0], [1, 1, 3], [1, 1, 1])
            assert storage.array[0, 1] == 2
        finally:
            storage.close()
            storage.unlink()

    def test_allocate_initial_copies_contents(self):
        initial = np.arange(6, dtype=np.int64).reshape(2, 3)
        storage = allocate((2, 3), np.int64, "shm", initial=initial)
        try:
            assert (np.asarray(storage.array) == initial).all()
        finally:
            storage.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            allocate((2,), np.int64, "gpu")

    def test_dense_rejects_path_and_attach(self):
        with pytest.raises(StorageError):
            allocate((2,), np.int64, "dense", path="/tmp/x")
        dense = DenseStorage((2,), np.int64)
        with pytest.raises(StorageError):
            dense.describe_state()
        with pytest.raises(StorageError):
            attach({"backend": "dense", "shape": [2], "dtype": "<i8"})

    def test_shm_attach_sees_live_writes(self):
        owner = SharedMemoryStorage((4,), np.int64)
        view = attach(owner.describe_state())
        try:
            owner.array[2] = 9
            assert view.array[2] == 9
            view.array[0] = 5
            assert owner.array[0] == 5
        finally:
            view.close()
            owner.close()

    def test_shm_attach_unknown_name_raises(self):
        with pytest.raises(StorageError):
            attach(
                {
                    "backend": "shm",
                    "name": "repro-no-such-segment",
                    "shape": [4],
                    "dtype": "<i8",
                }
            )

    def test_mmap_survives_close_and_reattach(self, tmp_path):
        path = str(tmp_path / "counters.bin")
        storage = MmapStorage((5,), np.int64, path=path)
        storage.array[:] = [1, 2, 3, 4, 5]
        manifest = storage.describe_state()
        storage.close()
        assert os.path.exists(path)  # close keeps the file — it IS the state
        reopened = attach(manifest)
        try:
            assert (np.asarray(reopened.array) == [1, 2, 3, 4, 5]).all()
        finally:
            reopened.close()
            reopened.unlink()
        assert not os.path.exists(path)

    def test_mmap_attach_missing_or_short_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            MmapStorage((4,), np.int64, path=str(tmp_path / "nope.bin"), create=False)
        short = tmp_path / "short.bin"
        short.write_bytes(b"\x00" * 8)
        with pytest.raises(StorageError):
            MmapStorage((4,), np.int64, path=str(short), create=False)

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_close_is_idempotent(self, backend, tmp_path):
        path = str(tmp_path / "t.bin") if backend == "mmap" else None
        storage = allocate((2,), np.int64, backend, path=path)
        storage.close()
        storage.close()
        with pytest.raises(StorageError):
            storage.array
        storage.unlink()


# ----------------------------------------------------------------------
# StorageBacked sketch integration
# ----------------------------------------------------------------------
class TestSketchStorage:
    @pytest.mark.parametrize("backend", STORAGE_BACKENDS)
    def test_cms_counters_identical_across_backends(self, backend, tmp_path):
        keys = keys_stream()
        kwargs = (
            {"storage_path": str(tmp_path / "cms.bin")} if backend == "mmap" else {}
        )
        sketch = CountMinSketch(512, 3, seed=1, storage=backend, **kwargs)
        reference = CountMinSketch(512, 3, seed=1)
        sketch.update_batch(keys)
        reference.update_batch(keys)
        try:
            assert sketch.storage_backend == backend
            assert (sketch.counters() == reference.counters()).all()
            queries = np.unique(keys)
            assert (
                sketch.estimate_batch(queries) == reference.estimate_batch(queries)
            ).all()
        finally:
            sketch.close()

    def test_storage_path_requires_mmap(self):
        with pytest.raises(ValueError):
            CountMinSketch(16, 1, seed=0, storage="dense", storage_path="/tmp/x")
        with pytest.raises(SpecError):
            SketchSpec("count_min", width=16, seed=0, storage_path="/tmp/x")

    def test_adopt_storage_shares_one_table(self):
        owner = CountSketch(128, 2, seed=5, storage="shm")
        twin = CountSketch(128, 2, seed=5)
        twin.adopt_storage(owner.storage_manifest())
        twin.update_batch(keys_stream(1000))
        try:
            assert (owner.counters() == twin.counters()).all()
            assert np.abs(owner.counters()).sum() > 0
        finally:
            twin.close()
            owner.close()

    def test_adopt_storage_shape_mismatch_rejected(self):
        owner = CountMinSketch(64, 2, seed=1, storage="shm")
        other = CountMinSketch(64, 3, seed=1)
        try:
            with pytest.raises(StorageError):
                other.adopt_storage(owner.storage_manifest())
        finally:
            owner.close()

    def test_close_detaches_but_keeps_answers(self):
        keys = keys_stream(2000)
        sketch = CountMinSketch(256, 2, seed=7, storage="shm")
        sketch.update_batch(keys)
        before = sketch.estimate_batch(keys[:50]).copy()
        sketch.close()
        sketch.close()  # idempotent
        assert sketch.storage_backend == "dense"  # detached private copy
        assert (sketch.estimate_batch(keys[:50]) == before).all()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda backend: AmsSketch(16, 4, seed=2, storage=backend),
            lambda backend: BloomFilter(2048, num_hashes=3, seed=2, storage=backend),
        ],
        ids=["ams", "bloom"],
    )
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_ams_and_bloom_match_dense(self, factory, backend):
        keys = keys_stream(3000)
        sketch, reference = factory(backend), factory("dense")
        ingest = getattr(sketch, "update_batch", None) or sketch.add_batch
        ingest_ref = getattr(reference, "update_batch", None) or reference.add_batch
        ingest(keys)
        ingest_ref(keys)
        field = type(sketch)._STORAGE_FIELD
        try:
            assert (
                np.asarray(getattr(sketch, field))
                == np.asarray(getattr(reference, field))
            ).all()
        finally:
            path = sketch.storage_path
            sketch.close()
            if path:
                os.unlink(path)

    def test_live_mmap_snapshot_is_table_free_and_reattaches(self, tmp_path):
        keys = keys_stream(4000)
        path = str(tmp_path / "live.bin")
        sketch = CountMinSketch(1024, 2, seed=3, storage="mmap", storage_path=path)
        sketch.update_batch(keys)
        live = sketch.to_bytes(live=True)
        embedded = sketch.to_bytes()
        # Zero-copy: the live buffer must not carry the 16 KB table.
        assert len(live) < len(embedded) - 8 * 1024
        twin = CountMinSketch.from_bytes(live)
        assert twin.storage_backend == "mmap"
        assert (twin.counters() == sketch.counters()).all()
        # Same pages: later writes on one side are visible on the other.
        sketch.update_batch(keys[:100])
        assert (twin.counters() == sketch.counters()).all()
        twin.close()
        sketch.close()

    def test_live_snapshot_requires_mmap(self):
        with pytest.raises(SerializationError):
            CountMinSketch(16, 1, seed=0).to_bytes(live=True)
        with pytest.raises(SerializationError):
            CountMinSketch(16, 1, seed=0, storage="shm").to_bytes(live=True)

    def test_bloom_refuses_live_snapshots(self, tmp_path):
        # num_inserted lives outside the bits table; a by-reference snapshot
        # would restore an inconsistent filter.
        bloom = BloomFilter(
            256, num_hashes=2, seed=1, storage="mmap",
            storage_path=str(tmp_path / "bits.bin"),
        )
        try:
            with pytest.raises(SerializationError, match="num_inserted"):
                bloom.to_bytes(live=True)
            # Embedded snapshots stay available (loaded dense here; the
            # recorded-mmap default would allocate a fresh temp table).
            assert BloomFilter.from_bytes(bloom.to_bytes(), storage="dense").num_bits == 256
        finally:
            bloom.close()

    def test_blank_mmap_table_refuses_to_clobber_survivor(self, tmp_path):
        path = str(tmp_path / "survivor.bin")
        sketch = CountMinSketch(64, 2, seed=1, storage="mmap", storage_path=path)
        sketch.update_batch(keys_stream(500))
        sketch.close()  # file survives — that is the point of the backend
        # Re-running the same spec must not silently zero the table...
        with pytest.raises(ValueError, match="refusing"):
            CountMinSketch(64, 2, seed=1, storage="mmap", storage_path=path)
        # ...but restoring explicit data to the path is a deliberate write.
        blob = CountMinSketch(64, 2, seed=1).to_bytes()
        restored = CountMinSketch.from_bytes(blob, storage="mmap", storage_path=path)
        assert restored.storage_path == path
        restored.close()


# ----------------------------------------------------------------------
# spec / registry plumbing
# ----------------------------------------------------------------------
class TestSpecPlumbing:
    def test_kind_supports_storage(self):
        for kind in ("count_min", "count_sketch", "ams", "bloom"):
            assert kind_supports_storage(kind)
        for kind in ("exact_counter", "misra_gries", "space_saving", "learned_cms"):
            assert not kind_supports_storage(kind)

    def test_storage_round_trips_through_spec(self):
        spec = SketchSpec("count_min", total_buckets=256, depth=2, seed=1, storage="shm")
        rebuilt = api.SketchSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        estimator = api.build(rebuilt)
        try:
            assert estimator.storage_backend == "shm"
            assert estimator.describe()["params"]["storage"] == "shm"
        finally:
            estimator.close()

    def test_bad_storage_value_rejected(self):
        with pytest.raises(SpecError):
            SketchSpec("count_min", width=16, seed=0, storage="tape")
