"""Crash recovery through the mmap backend.

The protocol under test is the one a production deployment would run:

1. open an mmap-backed session, save its *live* snapshot (spec + hash state
   + table path, no table copy) as the recovery sidecar;
2. ingest; the counter writes land in the page cache of the backing file;
3. the process is SIGKILLed mid-ingest — no atexit, no flush, no goodbye;
4. a fresh process restores from the sidecar, reattaching the table file.

Because every Count-Min counter is monotone non-decreasing, the recovered
table is a *consistent prefix*: every estimate is at least what the
last-flushed state guaranteed and at most what the full stream would have
produced — and queries simply work.
"""

import os
import signal
import time

import multiprocessing
import numpy as np
import pytest

import repro
from repro.sketches import CountMinSketch

STREAM = 60_000
UNIVERSE = 500
FIRST_HALF = STREAM // 2


def make_keys():
    return np.random.default_rng(42).integers(0, UNIVERSE, size=STREAM)


def _victim(snapshot_blob, keys_path, half_done):
    """Child process: restore the session, ingest, never exit voluntarily.

    Flushes and signals after the first half, then ingests the second half
    in small, slow chunks (so the parent's SIGKILL reliably lands
    mid-ingest), then idles forever — only SIGKILL ends it.
    """
    keys = np.load(keys_path)
    session = repro.restore(bytes(snapshot_blob))
    session.ingest(keys[:FIRST_HALF])
    session.estimator.flush_storage()
    half_done.set()
    for start in range(FIRST_HALF, len(keys), 1000):
        session.ingest(keys[start : start + 1000])
        time.sleep(0.005)
    while True:
        time.sleep(1.0)


@pytest.fixture
def mmap_session_blob(tmp_path):
    spec = {
        "kind": "count_min",
        "total_buckets": 4096,
        "depth": 2,
        "seed": 21,
        "storage": "mmap",
        "storage_path": str(tmp_path / "table.bin"),
    }
    session = repro.open(spec)
    blob = session.snapshot()  # live: spec + hashes + path, no table copy
    session.close()
    return blob


def test_restore_after_sigkill_mid_ingest(tmp_path, mmap_session_blob):
    keys = make_keys()
    keys_path = str(tmp_path / "keys.npy")
    np.save(keys_path, keys)

    half_done = multiprocessing.Event()
    victim = multiprocessing.Process(
        target=_victim, args=(mmap_session_blob, keys_path, half_done), daemon=True
    )
    victim.start()
    assert half_done.wait(timeout=120), "victim never reached the first half"
    time.sleep(0.05)  # let a few second-half chunks land
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=30)
    assert victim.exitcode == -signal.SIGKILL

    # Reopen from the same sidecar blob: the table file reattaches with
    # whatever the victim had written when it died.
    recovered = repro.restore(mmap_session_blob)
    assert recovered.kind == "count_min"
    assert recovered.estimator.storage_backend == "mmap"

    queries = np.arange(UNIVERSE)
    estimates = recovered.estimate(queries)

    # Lower bound: everything the flushed first half guaranteed.  CMS never
    # under-estimates, and its counters only grow, so each recovered
    # estimate must be >= the key's true first-half count.
    first_half_truth = np.bincount(keys[:FIRST_HALF], minlength=UNIVERSE)
    assert (estimates >= first_half_truth).all()

    # Upper bound: nothing beyond what the whole stream could have written
    # (the victim ingests each arrival at most once).  Counter by counter,
    # the recovered table is between the first-half table and the full one.
    full = CountMinSketch.from_total_buckets(4096, depth=2, seed=21)
    full.update_batch(keys)
    assert (estimates <= full.estimate_batch(queries)).all()
    recovered_table = recovered.estimator.counters()
    half_table = CountMinSketch.from_total_buckets(4096, depth=2, seed=21)
    half_table.update_batch(keys[:FIRST_HALF])
    assert (recovered_table >= half_table.counters()).all()
    assert (recovered_table <= full.counters()).all()

    # And the recovered session is not a husk: it keeps ingesting.
    before = recovered.estimate([0])[0]
    recovered.ingest(np.zeros(10, dtype=np.int64))
    assert recovered.estimate([0])[0] == before + 10
    recovered.close()


def test_clean_close_then_restore_is_bit_identical(tmp_path):
    keys = make_keys()[:20_000]
    path = str(tmp_path / "table.bin")
    spec = {
        "kind": "count_min",
        "total_buckets": 2048,
        "depth": 2,
        "seed": 5,
        "storage": "mmap",
        "storage_path": path,
    }
    session = repro.open(spec)
    session.ingest(keys)
    blob = session.snapshot()
    expected = session.estimate(np.arange(UNIVERSE)).copy()
    session.estimator.flush_storage()
    session.close()

    restored = repro.restore(blob)
    assert restored.estimator.storage_backend == "mmap"
    assert restored.estimator.storage_path == path
    assert (restored.estimate(np.arange(UNIVERSE)) == expected).all()
    restored.close()
