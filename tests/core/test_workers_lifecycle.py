"""Regression tests for the :class:`ShardWorkerPool` lifecycle fixes.

Four bugs, each fatal for a long-running service though mostly harmless in
batch replay:

1. ``close()`` promised "queued batches finish first", but with a full task
   queue the shutdown sentinel could not be enqueued and the worker was
   terminated — silently dropping every queued batch.  Fixed by an
   ack-counting drain (bounded by the close deadline) before the sentinel.
2. ``submit()``'s fail-fast check read ``multiprocessing.Queue.empty()`` on
   the error queue, which is documented as unreliable — a worker that died
   during init could swallow batches unnoticed.  Fixed by a per-worker
   shared ``Event`` raised by the worker on any failure.
3. ``wait_ready(timeout)`` applied the timeout per worker, so a 16-shard
   pool could stretch a 60 s timeout into ~16 minutes.  Fixed by one
   pool-wide deadline.
4. ``join()`` busy-polled the ack counter every millisecond, burning CPU
   for the whole duration of every drain.  Fixed by a condition variable
   the worker notifies per ack.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.core.sharding import ShardedEstimator
from repro.core.workers import ShardWorkerPool, _ShardWorker
from repro.sketches import CountMinSketch

SPEC = {"kind": "count_min", "total_buckets": 1 << 20, "depth": 4, "seed": 5}


def _slow_batch_size(target_seconds: float, cap: int = 6_000_000) -> int:
    """Calibrate how many keys keep a worker busy ~target_seconds here.

    The lifecycle bugs are timing-dependent (a full queue at close time, a
    drain long enough to observe polling), so the workload is sized from a
    measured probe instead of hard-coding counts that only stress one
    machine speed.
    """
    probe = np.random.default_rng(0).integers(0, 1 << 30, size=50_000)
    twin = CountMinSketch.from_total_buckets(
        SPEC["total_buckets"], depth=SPEC["depth"], seed=SPEC["seed"]
    )
    twin.update_batch(probe)  # warm-up: first-touch page faults dominate
    start = time.perf_counter()
    twin.update_batch(probe)
    per_key = max((time.perf_counter() - start) / len(probe), 1e-10)
    return int(min(cap, max(100_000, target_seconds / per_key)))


def _shm_pool(num_shards: int = 1):
    """A ShardedEstimator plus its (ready) persistent worker pool."""
    sharded = ShardedEstimator(
        SPEC, num_shards, mode="round-robin", executor="process", transport="shm"
    )
    pool = sharded._ensure_workers().wait_ready()
    return sharded, pool


def test_close_drains_queued_batches_under_full_queue():
    """Bug 1: close() with a full task queue must drain it, then exit clean.

    The worker is frozen with SIGSTOP while four batches fill its queue to
    capacity, and only resumed two seconds later — so the queue is *still
    full* for the whole of the pre-fix close()'s one-second sentinel
    window, deterministically.  The pre-fix close then hit ``queue.Full``,
    fell through to ``process.join(timeout)`` (burning the entire timeout,
    since the worker never receives a sentinel) and terminated the worker —
    dropping any batches still queued at that point.  The fixed close()
    drains by ack counting first, so it must (a) land every submitted
    count, (b) let the worker exit cleanly via its sentinel, and (c)
    return as soon as the drain completes, not at the deadline.
    """
    import os
    import signal

    small_n = 10_000
    small = np.random.default_rng(1).integers(0, 1 << 30, size=small_n)
    sharded, pool = _shm_pool()
    worker = pool._workers[0]
    resume = threading.Timer(2.0, os.kill, (worker.process.pid, signal.SIGCONT))
    try:
        os.kill(worker.process.pid, signal.SIGSTOP)
        # _MAX_PENDING_FACTOR == 4: the frozen worker's queue fills up.
        for _ in range(4):
            pool.submit(0, small, np.ones(small_n, dtype=np.int64))
        resume.start()
        start = time.perf_counter()
        pool.close(timeout=60.0)
        elapsed = time.perf_counter() - start
        # Every CMS row counts every arrival once.
        total = int(sharded.shards[0].counters().sum())
        assert total == SPEC["depth"] * 4 * small_n
        assert worker.process.exitcode == 0, (
            f"worker exited with {worker.process.exitcode} — close() "
            "terminated it instead of delivering the shutdown sentinel"
        )
        assert elapsed < 30.0, (
            f"close() took {elapsed:.1f}s — it burned the deadline in "
            "process.join instead of draining by ack counting"
        )
    finally:
        resume.cancel()
        sharded.close()


def test_submit_fails_fast_without_trusting_queue_empty():
    """Bug 2: a worker init failure must surface on the next submit even
    when ``Queue.empty()`` misreports (its documented behavior).

    The worker gets a manifest naming a nonexistent shm segment, so init
    fails.  The error queue's ``empty()`` is then pinned to ``True`` —
    exactly the unreliable answer the pre-fix check trusted, silently
    accepting (and discarding) every batch.  The fixed submit reads the
    worker's shared failure event instead and must raise.
    """
    shm_twin = CountMinSketch.from_total_buckets(
        1024, depth=2, seed=1, storage="shm"
    )
    manifest = dict(shm_twin.storage_manifest())
    manifest["name"] = "repro-test-no-such-segment"
    spec = {"kind": "count_min", "total_buckets": 1024, "depth": 2, "seed": 1}
    pool = ShardWorkerPool(spec, [manifest])
    try:
        assert pool._workers[0].failed.wait(30.0), "worker init should fail"
        pool._errors.empty = lambda: True  # the documented lie
        with pytest.raises(RuntimeError, match="failed to start"):
            pool.submit(0, np.arange(16), np.ones(16, dtype=np.int64))
    finally:
        pool.close(timeout=5.0)
        shm_twin.close()


def test_wait_ready_failure_also_raises_from_wait_ready():
    """Companion to the fail-fast fix: wait_ready surfaces the init error."""
    shm_twin = CountMinSketch.from_total_buckets(
        1024, depth=2, seed=1, storage="shm"
    )
    manifest = dict(shm_twin.storage_manifest())
    manifest["name"] = "repro-test-no-such-segment"
    spec = {"kind": "count_min", "total_buckets": 1024, "depth": 2, "seed": 1}
    pool = ShardWorkerPool(spec, [manifest])
    try:
        with pytest.raises(RuntimeError, match="failed to start"):
            pool.wait_ready(timeout=30.0)
    finally:
        pool.close(timeout=5.0)
        shm_twin.close()


class _StuckProcess:
    """Stands in for a worker process in the deadline test."""

    @staticmethod
    def is_alive() -> bool:
        return True


def _fake_pool(ready_events):
    """A pool skeleton whose workers expose the given ready events.

    wait_ready only touches ``worker.ready`` and the error queue, so the
    deadline semantics can be tested deterministically without spawning
    processes (threading.Event has the same wait(timeout) contract).
    """
    pool = ShardWorkerPool.__new__(ShardWorkerPool)
    pool._closed = True  # nothing real to close
    pool._errors = queue.Queue()
    pool._workers = [
        _ShardWorker(_StuckProcess(), None, None, None, event, threading.Event(), None)
        for event in ready_events
    ]
    return pool


def test_wait_ready_applies_one_pool_wide_deadline():
    """Bug 3: the timeout is a single deadline, not a per-worker allowance.

    Worker 0 becomes ready late (0.4 s in) and workers 1–3 never do.  The
    pre-fix code granted each subsequent worker a *fresh* 0.5 s wait after
    worker 0's late success (≥ 0.9 s total before raising); the fixed
    version shares one deadline and must raise at ~0.5 s.
    """
    events = [threading.Event() for _ in range(4)]
    timer = threading.Timer(0.4, events[0].set)
    timer.start()
    pool = _fake_pool(events)
    try:
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="deadline"):
            pool.wait_ready(timeout=0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.8, (
            f"wait_ready took {elapsed:.2f}s for a 0.5s deadline — the "
            "timeout is being granted per worker again"
        )
    finally:
        timer.cancel()


def test_join_does_not_busy_poll(monkeypatch):
    """Bug 4: join() must block on the ack condition, not spin on sleep.

    A drain lasting ~1 s is observed with ``time.sleep`` instrumented: the
    pre-fix loop called ``sleep(0.001)`` hundreds of times from the joining
    thread; the fixed join never calls ``time.sleep`` at all (it waits on
    the worker's ack condition).
    """
    n = _slow_batch_size(1.0)
    keys = np.random.default_rng(2).integers(0, 1 << 30, size=n)
    sharded, pool = _shm_pool()
    try:
        pool.submit(0, keys, np.ones(n, dtype=np.int64))
        joining_thread = threading.current_thread()
        sleeps = []
        real_sleep = time.sleep

        def recording_sleep(seconds):
            if threading.current_thread() is joining_thread:
                sleeps.append(seconds)
            real_sleep(seconds)

        monkeypatch.setattr(time, "sleep", recording_sleep)
        pool.join()
        monkeypatch.undo()
        assert not sleeps, (
            f"join() called time.sleep {len(sleeps)} times — the ack drain "
            "is polling again"
        )
        assert int(sharded.shards[0].counters().sum()) == SPEC["depth"] * n
    finally:
        sharded.close()


def test_pool_close_is_idempotent_and_sharded_double_close():
    sharded, pool = _shm_pool()
    sharded.update_batch(np.arange(1000, dtype=np.int64))
    sharded.drain()
    pool.close()
    pool.close()  # second close is a no-op
    sharded.close()
    sharded.close()  # and the estimator close is idempotent too
    assert int(sharded.shards[0].counters().sum()) == SPEC["depth"] * 1000


def test_join_raises_when_worker_killed_mid_stream():
    """A killed worker surfaces as an error from join, never a hang.

    SIGSTOP freezes the worker *before* the batch is submitted, so the
    batch is outstanding by construction when SIGKILL lands — no timing
    games about whether the worker finished first.  join must notice the
    dead process and raise instead of waiting on an ack that will never
    come.
    """
    import os
    import signal

    n = 2_000  # small: the queue feeder must not wedge on a dead reader
    keys = np.random.default_rng(3).integers(0, 1 << 30, size=n)
    sharded, pool = _shm_pool()
    try:
        pid = pool._workers[0].process.pid
        os.kill(pid, signal.SIGSTOP)
        pool.submit(0, keys, np.ones(n, dtype=np.int64))
        os.kill(pid, signal.SIGKILL)
        with pytest.raises(RuntimeError, match="died"):
            pool.join()
    finally:
        pool.close(timeout=1.0)
        sharded._worker_pool = None  # already closed; skip the drain
        sharded.close()
