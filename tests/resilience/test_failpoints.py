"""The fail-point registry: arming, spec parsing, one-shot trigger semantics."""

import pytest

from repro.resilience import failpoints
from repro.resilience.failpoints import FailPointError


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


def test_fire_is_a_noop_when_unarmed():
    failpoints.fire("wal.append.before")  # must not raise, sleep, or exit


def test_raise_action_triggers_then_disarms():
    failpoints.arm("site", "raise")
    with pytest.raises(FailPointError):
        failpoints.fire("site")
    # One armed fail point induces exactly one fault.
    failpoints.fire("site")
    assert failpoints.armed() == {}


def test_nth_hit_passes_earlier_hits_through():
    failpoints.arm("site", "raise", hit=3)
    failpoints.fire("site")
    failpoints.fire("site")
    with pytest.raises(FailPointError):
        failpoints.fire("site")


def test_sleep_action_delays(monkeypatch):
    naps = []
    monkeypatch.setattr(failpoints.time, "sleep", naps.append)
    failpoints.arm("site", "sleep", seconds=1.5)
    failpoints.fire("site")
    assert naps == [1.5]


def test_arm_rejects_bad_inputs():
    with pytest.raises(ValueError):
        failpoints.arm("site", "explode")
    with pytest.raises(ValueError):
        failpoints.arm("site", "raise", hit=0)


def test_parse_spec_grammar():
    parsed = failpoints.parse_spec(
        "wal.append.mid=3*kill, service.accept=raise; slow=sleep:0.25"
    )
    assert parsed == {
        "wal.append.mid": ("kill", 3, 0.0),
        "service.accept": ("raise", 1, 0.0),
        "slow": ("sleep", 1, 0.25),
    }


@pytest.mark.parametrize(
    "bad",
    ["nameonly", "site=frobnicate", "site=0*kill", "site=x*kill"],
)
def test_parse_spec_rejects_malformed_entries(bad):
    with pytest.raises(ValueError):
        failpoints.parse_spec(bad)


def test_arm_from_env(monkeypatch):
    assert failpoints.arm_from_env({}) == 0
    count = failpoints.arm_from_env(
        {failpoints.ENV_VAR: "worker.ingest=2*raise,wal.fsync=raise"}
    )
    assert count == 2
    assert set(failpoints.armed()) == {"worker.ingest", "wal.fsync"}
    failpoints.fire("worker.ingest")  # hit 1 of 2: passes through
    with pytest.raises(FailPointError):
        failpoints.fire("worker.ingest")
