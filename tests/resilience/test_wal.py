"""The write-ahead log: framing, rotation, checkpoints, torn-tail recovery."""

import json
import os
import struct

import numpy as np
import pytest

from repro.resilience import failpoints
from repro.resilience.wal import (
    DEFAULT_SEGMENT_BYTES,
    ServiceWAL,
    ShardWAL,
    WALError,
    _FRAME,
    _MAGIC,
)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


def _records(wal, **kwargs):
    return list(wal.replay(**kwargs))


# ----------------------------------------------------------------------
# framing / round trips
# ----------------------------------------------------------------------
def test_roundtrip_binary_int64_keys(tmp_path):
    keys = np.array([5, -3, 2**40], dtype=np.int64)
    counts = np.array([1, 7, 2], dtype=np.int64)
    with ShardWAL(tmp_path / "wal") as wal:
        seq = wal.append(keys, counts, request_id="rid-1")
        assert seq == 1
        (record,) = _records(wal)
    assert record.seq == 1
    assert record.request_id == "rid-1"
    assert isinstance(record.keys, np.ndarray)
    assert record.keys.dtype == np.int64
    assert (record.keys == keys).all()
    assert (record.counts == counts).all()


def test_roundtrip_float_and_unsigned_keys(tmp_path):
    with ShardWAL(tmp_path / "wal") as wal:
        wal.append(np.array([1.5, -2.25], dtype=np.float64))
        wal.append(np.array([3, 4], dtype=np.uint64))
        first, second = _records(wal)
    assert first.keys.dtype == np.float64 and (first.keys == [1.5, -2.25]).all()
    assert second.keys.dtype == np.uint64 and (second.keys == [3, 4]).all()
    assert first.counts is None and first.request_id is None


def test_roundtrip_string_keys_travel_as_json(tmp_path):
    with ShardWAL(tmp_path / "wal") as wal:
        wal.append(["alpha", "beta"], np.array([2, 3], dtype=np.int64))
        (record,) = _records(wal)
    assert record.keys == ["alpha", "beta"]
    assert (record.counts == [2, 3]).all()


def test_sequences_are_monotone_and_survive_reopen(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path) as wal:
        for value in range(3):
            wal.append(np.array([value], dtype=np.int64))
        assert wal.last_seq == 3
    with ShardWAL(path) as wal:
        assert wal.last_seq == 3
        assert wal.append(np.array([99], dtype=np.int64)) == 4
        assert [record.seq for record in _records(wal)] == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# rotation / checkpoint
# ----------------------------------------------------------------------
def test_rotation_and_checkpoint_prune(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path, segment_bytes=256) as wal:
        for value in range(8):
            wal.append(np.arange(16, dtype=np.int64) + value)
        assert wal.stats()["segments"] > 1
        wal.checkpoint()
        # Covered segments are pruned; nothing is left to replay.
        assert _records(wal) == []
    # reopen: the checkpoint persists
    with ShardWAL(path, segment_bytes=256) as wal:
        assert wal.checkpoint_seq == 8
        assert _records(wal) == []
        assert wal.append(np.array([1], dtype=np.int64)) == 9


def test_partial_checkpoint_keeps_later_records(tmp_path):
    with ShardWAL(tmp_path / "wal") as wal:
        for value in range(5):
            wal.append(np.array([value], dtype=np.int64))
        wal.checkpoint(3)
        assert [record.seq for record in _records(wal)] == [4, 5]
        # A lower checkpoint never regresses the marker.
        assert wal.checkpoint(1) == 3


def test_replay_upto_bounds_recovery(tmp_path):
    with ShardWAL(tmp_path / "wal") as wal:
        for value in range(5):
            wal.append(np.array([value], dtype=np.int64))
        assert [record.seq for record in wal.replay(upto=3)] == [1, 2, 3]


# ----------------------------------------------------------------------
# corruption / torn tails
# ----------------------------------------------------------------------
def _largest_segment(directory):
    segments = [
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".wal")
    ]
    return max(segments, key=os.path.getsize)


def test_torn_tail_is_truncated_and_log_stays_appendable(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path) as wal:
        for value in range(3):
            wal.append(np.array([value], dtype=np.int64))
    segment = _largest_segment(path)
    with open(segment, "r+b") as handle:
        handle.truncate(os.path.getsize(segment) - 5)  # tear the last record
    with ShardWAL(path) as wal:
        assert [record.seq for record in _records(wal)] == [1, 2]
        assert wal.last_seq == 2
        assert wal.stats()["truncated_records"] == 1
        assert wal.append(np.array([9], dtype=np.int64)) == 3


def test_corrupt_crc_stops_replay_at_the_tear(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path) as wal:
        wal.append(np.array([1], dtype=np.int64))
        wal.append(np.array([2], dtype=np.int64))
    segment = _largest_segment(path)
    size = os.path.getsize(segment)
    with open(segment, "r+b") as handle:
        handle.seek(size - 1)
        byte = handle.read(1)
        handle.seek(size - 1)
        handle.write(bytes([byte[0] ^ 0xFF]))  # flip one payload byte
    with ShardWAL(path) as wal:
        assert [record.seq for record in _records(wal)] == [1]


def test_garbage_after_valid_records_is_discarded(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path) as wal:
        wal.append(np.array([1], dtype=np.int64))
    segment = _largest_segment(path)
    with open(segment, "ab") as handle:
        handle.write(b"not a frame at all")
    with ShardWAL(path) as wal:
        assert [record.seq for record in _records(wal)] == [1]
        assert wal.append(np.array([2], dtype=np.int64)) == 2
        assert [record.seq for record in _records(wal)] == [1, 2]


def test_insane_declared_length_is_corruption_not_allocation(tmp_path):
    path = tmp_path / "wal"
    with ShardWAL(path) as wal:
        wal.append(np.array([1], dtype=np.int64))
    segment = _largest_segment(path)
    with open(segment, "ab") as handle:
        handle.write(_FRAME.pack(_MAGIC, 2, (300 << 20), 0))
    with ShardWAL(path) as wal:
        assert [record.seq for record in _records(wal)] == [1]


def test_failed_append_truncates_and_later_appends_survive(tmp_path):
    with ShardWAL(tmp_path / "wal") as wal:
        wal.append(np.array([1], dtype=np.int64))
        failpoints.arm("wal.append.mid", "raise")
        with pytest.raises(failpoints.FailPointError):
            wal.append(np.array([2], dtype=np.int64))
        # The poisoned record is gone; the next append reuses its slot.
        assert wal.append(np.array([3], dtype=np.int64)) == 2
        assert [int(record.keys[0]) for record in _records(wal)] == [1, 3]


def test_closed_wal_refuses_appends(tmp_path):
    wal = ShardWAL(tmp_path / "wal")
    wal.close()
    with pytest.raises(WALError):
        wal.append(np.array([1], dtype=np.int64))


def test_sync_always_mode_appends(tmp_path):
    with ShardWAL(tmp_path / "wal", sync="always") as wal:
        assert wal.append(np.array([1], dtype=np.int64)) == 1
    with pytest.raises(ValueError):
        ShardWAL(tmp_path / "other", sync="sometimes")


# ----------------------------------------------------------------------
# ServiceWAL lanes
# ----------------------------------------------------------------------
def test_single_lane_service_wal(tmp_path):
    with ServiceWAL(tmp_path / "wal") as wal:
        marks = wal.append_batch(np.array([1, 2, 3], dtype=np.int64))
        assert marks == {0: 1}
        assert wal.positions() == {0: 1}
        assert wal.pending_records() == 1
        wal.checkpoint(marks)
        assert wal.pending_records() == 0


def test_multi_lane_routing_matches_the_router(tmp_path):
    router = lambda keys: (np.asarray(keys) % 2).astype(np.int64)
    with ServiceWAL(tmp_path / "wal", num_lanes=2, router=router) as wal:
        keys = np.array([0, 1, 2, 3], dtype=np.int64)
        counts = np.array([10, 11, 12, 13], dtype=np.int64)
        marks = wal.append_batch(keys, counts, request_id="rid-7")
        assert marks == {0: 1, 1: 1}
        lane0 = list(wal.replay_lane(0))
        lane1 = list(wal.replay_lane(1))
        assert (lane0[0].keys == [0, 2]).all() and (lane0[0].counts == [10, 12]).all()
        assert (lane1[0].keys == [1, 3]).all() and (lane1[0].counts == [11, 13]).all()
        assert lane0[0].request_id == lane1[0].request_id == "rid-7"
        # Full replay yields (lane, record) pairs covering both slices.
        assert sorted(lane for lane, _ in wal.replay()) == [0, 1]


def test_multi_lane_skips_empty_lanes(tmp_path):
    router = lambda keys: np.zeros(len(keys), dtype=np.int64)
    with ServiceWAL(tmp_path / "wal", num_lanes=2, router=router) as wal:
        marks = wal.append_batch(np.array([4, 8], dtype=np.int64))
        assert marks == {0: 1}
        assert list(wal.replay_lane(1)) == []


def test_multi_lane_requires_router(tmp_path):
    with pytest.raises(ValueError):
        ServiceWAL(tmp_path / "wal", num_lanes=2)
