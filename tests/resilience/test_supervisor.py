"""RestartBudget circuit breaking and the snapshot shard-state loader."""

import random

import numpy as np
import pytest

import repro
from repro.resilience import RestartBudget, load_shard_state
from repro.sketches.serialization import SerializationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# RestartBudget
# ----------------------------------------------------------------------
def test_budget_allows_until_window_fills_then_trips():
    clock = FakeClock()
    budget = RestartBudget(max_restarts=3, window_seconds=60.0, clock=clock)
    for _ in range(3):
        assert budget.allow()
        budget.record_attempt()
        clock.advance(1.0)
    assert not budget.allow()
    assert budget.tripped
    # Tripped is sticky: even after the window passes, only reset() closes it.
    clock.advance(120.0)
    assert not budget.allow()
    budget.reset()
    assert budget.allow()


def test_old_attempts_age_out_of_the_window():
    clock = FakeClock()
    budget = RestartBudget(max_restarts=2, window_seconds=10.0, clock=clock)
    budget.record_attempt()
    clock.advance(11.0)
    budget.record_attempt()
    clock.advance(1.0)
    # Only one attempt is inside the window; a second fits.
    assert budget.allow()
    assert budget.stats()["attempts_in_window"] == 1


def test_backoff_ladder_grows_and_resets_on_success():
    budget = RestartBudget(
        max_restarts=100,
        base_delay=0.1,
        max_delay=1.0,
        jitter=0.0,
        clock=FakeClock(),
    )
    assert budget.next_delay() == pytest.approx(0.1)
    budget.record_attempt()
    assert budget.next_delay() == pytest.approx(0.2)
    budget.record_attempt()
    assert budget.next_delay() == pytest.approx(0.4)
    budget.record_success()
    assert budget.next_delay() == pytest.approx(0.1)


def test_success_does_not_reset_the_window():
    clock = FakeClock()
    budget = RestartBudget(max_restarts=2, window_seconds=60.0, clock=clock)
    for _ in range(2):
        assert budget.allow()
        budget.record_attempt()
        budget.record_success()  # each rebuild "succeeded"...
        clock.advance(1.0)
    # ...but a shard dying every second still trips the breaker.
    assert not budget.allow()
    assert budget.tripped


def test_jitter_band():
    budget = RestartBudget(
        base_delay=1.0, max_delay=1.0, jitter=0.5, rng=random.Random(3)
    )
    for _ in range(50):
        assert 0.5 <= budget.next_delay() <= 1.0


def test_validation():
    with pytest.raises(ValueError):
        RestartBudget(max_restarts=0)
    with pytest.raises(ValueError):
        RestartBudget(window_seconds=0)


# ----------------------------------------------------------------------
# load_shard_state
# ----------------------------------------------------------------------
SHARDED_SPEC = {
    "kind": "sharded",
    "inner": {"kind": "count_min", "total_buckets": 1 << 10, "depth": 2, "seed": 4},
    "num_shards": 2,
    "mode": "key-partition",
}


def test_load_shard_state_missing_snapshot_returns_none(tmp_path):
    assert load_shard_state(tmp_path / "absent.snap", 0) is None


def test_load_shard_state_roundtrips_each_shard(tmp_path):
    path = tmp_path / "service.snap"
    with repro.api.open(SHARDED_SPEC) as session:
        keys = np.arange(512, dtype=np.int64)
        session.ingest(keys, np.full(512, 3, dtype=np.int64))
        session.save(path)
        estimator = session.estimator
        for index in range(2):
            table = load_shard_state(path, index)
            shard = estimator.shards[index]
            expected = getattr(shard, shard._STORAGE_FIELD)
            assert table is not None
            assert (np.asarray(table) == np.asarray(expected)).all()


def test_load_shard_state_rejects_missing_shard(tmp_path):
    path = tmp_path / "service.snap"
    with repro.api.open(SHARDED_SPEC) as session:
        session.ingest(np.arange(16, dtype=np.int64))
        session.save(path)
    with pytest.raises(SerializationError):
        load_shard_state(path, 5)


def test_load_shard_state_rejects_unsharded_snapshot(tmp_path):
    path = tmp_path / "plain.snap"
    with repro.api.open(
        {"kind": "count_min", "total_buckets": 1 << 10, "depth": 2, "seed": 4}
    ) as session:
        session.ingest(np.arange(16, dtype=np.int64))
        session.save(path)
    with pytest.raises(SerializationError):
        load_shard_state(path, 0)
