"""RetryPolicy: backoff shape, jitter bounds, attempt and time budgets."""

import random

import pytest

from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_deterministic_exponential_backoff_without_jitter():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0, jitter=0.0
    )
    assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]  # capped at max_delay


def test_jitter_stays_within_band():
    policy = RetryPolicy(
        max_attempts=2,
        base_delay=1.0,
        max_delay=1.0,
        jitter=0.5,
        rng=random.Random(7),
    )
    for _ in range(100):
        (pause,) = policy.delays()
        assert 0.5 <= pause <= 1.0


def test_single_attempt_means_no_retries():
    assert list(RetryPolicy(max_attempts=1).delays()) == []


def test_time_budget_stops_the_sequence_early():
    # Budget covers the first sleep but not the second (0.2 + 0.4 > 0.5).
    import time

    policy = RetryPolicy(
        max_attempts=10,
        base_delay=0.2,
        max_delay=10.0,
        jitter=0.0,
        budget_seconds=0.5,
    )
    pauses = []
    for pause in policy.delays():
        time.sleep(pause)  # the caller's contract: sleep, then retry
        pauses.append(pause)
    assert pauses == [0.2]


def test_default_policy_is_sane():
    assert DEFAULT_RETRY_POLICY.max_attempts >= 2
    assert all(pause >= 0 for pause in DEFAULT_RETRY_POLICY.delays())
