"""Tests for the synthetic-data experiment runners (Figures 1-6).

The runners are exercised at tiny scales: the goal here is to verify their
mechanics (series produced, shapes consistent, qualitative relationships),
not to reproduce the paper's numbers — that is what ``benchmarks/`` does.
"""

import numpy as np
import pytest

from repro.evaluation.synthetic_experiments import (
    run_bcd_stability,
    run_bcd_vs_dp,
    run_classifier_comparison,
    run_fraction_seen,
    run_lambda_sweep,
    run_visualization_experiment,
)


@pytest.fixture(scope="module")
def tiny_lambda_sweep():
    return run_lambda_sweep(
        lambdas=(0.0, 1.0),
        solvers=("bcd", "dp"),
        num_groups=3,
        num_buckets=4,
        prefix_length=120,
        num_repetitions=2,
        seed=0,
    )


class TestVisualizationExperiment:
    def test_shapes_and_ranges(self):
        result = run_visualization_experiment(
            num_groups=3, prefix_length=150, num_buckets=4, seed=0
        )
        assert result.seen_features.shape[1] == 2
        assert len(result.seen_buckets) == len(result.seen_frequencies)
        assert result.unseen_features.shape[0] == len(result.unseen_buckets)
        assert result.seen_buckets.max() < 4
        assert result.unseen_buckets.max() < 4

    def test_bucket_summary_counts_all_seen_elements(self):
        result = run_visualization_experiment(
            num_groups=3, prefix_length=150, num_buckets=4, seed=1
        )
        assert sum(result.bucket_summary().values()) == len(result.seen_buckets)

    def test_seen_and_unseen_partition_the_universe(self):
        result = run_visualization_experiment(
            num_groups=3, prefix_length=150, num_buckets=4, seed=2
        )
        total = len(result.seen_buckets) + len(result.unseen_buckets)
        # G=3 with G0=2 gives 8+16+32=56 elements.
        assert total == 56


class TestLambdaSweep:
    def test_all_metrics_and_series_present(self, tiny_lambda_sweep):
        assert set(tiny_lambda_sweep.metrics) == {
            "prefix_estimation_error",
            "prefix_similarity_error",
            "prefix_overall_error",
            "elapsed_time",
        }
        for metric in tiny_lambda_sweep.metrics.values():
            assert set(metric) == {"bcd", "dp"}

    def test_each_series_covers_every_lambda(self, tiny_lambda_sweep):
        for series in tiny_lambda_sweep.metrics["prefix_overall_error"].values():
            assert [point.x for point in series] == [0.0, 1.0]

    def test_dp_estimation_error_at_most_bcd_at_lambda_one(self, tiny_lambda_sweep):
        bcd = tiny_lambda_sweep.metrics["prefix_estimation_error"]["bcd"]
        dp = tiny_lambda_sweep.metrics["prefix_estimation_error"]["dp"]
        bcd_at_one = [p for p in bcd if p.x == 1.0][0]
        dp_at_one = [p for p in dp if p.x == 1.0][0]
        # dp is exact for the lambda=1 estimation error.
        assert dp_at_one.mean <= bcd_at_one.mean + 1e-6


class TestBcdVsDp:
    def test_series_and_optimality(self):
        result = run_bcd_vs_dp(
            group_range=(3, 4), num_buckets=4, num_repetitions=2, seed=0
        )
        dp_series = result.metrics["prefix_estimation_error"]["dp"]
        bcd_series = result.metrics["prefix_estimation_error"]["bcd"]
        assert len(dp_series) == len(bcd_series) == 2
        for dp_point, bcd_point in zip(dp_series, bcd_series):
            assert dp_point.mean <= bcd_point.mean + 1e-6


class TestBcdStability:
    def test_std_reported_across_starts(self):
        result = run_bcd_stability(
            group_range=(3,), num_buckets=4, num_starts=3, seed=0
        )
        (point,) = result.metrics["prefix_overall_error"]["bcd"]
        assert point.std >= 0.0
        assert result.metadata["num_starts"] == 3


class TestFractionSeen:
    def test_metrics_cover_seen_and_unseen(self):
        result = run_fraction_seen(
            fractions=(0.3, 0.9),
            num_groups=3,
            num_buckets=4,
            prefix_length=150,
            stream_multiplier=3,
            num_repetitions=1,
            seed=0,
        )
        assert set(result.metrics) == {
            "prefix_estimation_error",
            "prefix_similarity_error",
            "unseen_estimation_error",
            "unseen_similarity_error",
        }
        for metric in result.metrics.values():
            assert set(metric) == {"bcd", "dp"}
            for series in metric.values():
                assert [point.x for point in series] == [0.3, 0.9]


class TestClassifierComparison:
    def test_all_classifiers_evaluated(self):
        result = run_classifier_comparison(
            group_range=(3,),
            classifiers=("logreg", "cart"),
            num_buckets=4,
            prefix_length=150,
            stream_multiplier=3,
            num_repetitions=1,
            classifier_options={"logreg": {"max_iter": 50}},
            seed=0,
        )
        assert set(result.metrics["unseen_overall_error"]) == {"logreg", "cart"}
        for series in result.metrics["elapsed_time"].values():
            assert all(point.mean >= 0.0 for point in series)
