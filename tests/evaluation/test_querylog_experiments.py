"""Tests for the query-log experiment runners (Figures 7-8, Table 1).

Again at tiny scale: a handful of days, a few hundred unique queries, small
memory budgets — enough to verify the mechanics and the qualitative ordering
(opt-hash beats count-min at small sizes on Zipfian data).
"""

import pytest

from repro.api import OptHashSpec, SketchSpec, SpecError
from repro.evaluation.querylog_experiments import (
    build_estimator,
    default_opt_hash_options,
    run_error_vs_size,
    run_error_vs_time,
    run_rank_error_table,
    spec_for_method,
)
from repro.sketches.count_min import CountMinSketch
from repro.sketches.learned_cms import LearnedCountMinSketch
from repro.core.estimator import OptHashEstimator
from repro.streams.querylog import QueryLogConfig, QueryLogGenerator


TINY_OPT_HASH = {
    "ratio": 0.3,
    "lam": 1.0,
    "solver": "dp",
    "classifier": "cart",
    "classifier_options": {"max_depth": 8},
    "vocabulary_size": 50,
}


@pytest.fixture(scope="module")
def tiny_dataset():
    config = QueryLogConfig(
        num_unique_queries=300,
        num_days=4,
        arrivals_per_day=1500,
        zipf_exponent=0.8,
        daily_churn_fraction=0.02,
        seed=0,
    )
    return QueryLogGenerator(config).generate_dataset()


class TestBuildEstimator:
    def test_count_min_budget(self, tiny_dataset):
        spec = spec_for_method("count-min", 1.0, {"depth": 2}, seed=0)
        assert isinstance(spec, SketchSpec) and spec.kind == "count_min"
        estimator = build_estimator(spec, tiny_dataset)
        assert isinstance(estimator, CountMinSketch)
        assert estimator.size_kb == pytest.approx(1.0, rel=0.01)

    def test_heavy_hitter_requires_oracle(self, tiny_dataset):
        with pytest.raises(ValueError):
            spec_for_method("heavy-hitter", 1.0, {}, seed=0)

    def test_heavy_hitter_built_with_oracle(self, tiny_dataset):
        truth = dict(tiny_dataset.cumulative_frequencies(3).items())
        spec = spec_for_method(
            "heavy-hitter",
            1.0,
            {"depth": 1, "num_heavy_buckets": 10},
            oracle_frequencies=truth,
            seed=0,
        )
        assert spec.kind == "learned_cms"
        assert len(spec.params["heavy_keys"]) == 10
        estimator = build_estimator(spec, tiny_dataset)
        assert isinstance(estimator, LearnedCountMinSketch)
        assert estimator.size_kb <= 1.01

    def test_opt_hash_trained_on_prefix(self, tiny_dataset):
        spec = spec_for_method("opt-hash", 1.0, TINY_OPT_HASH, seed=0)
        assert isinstance(spec, OptHashSpec)
        estimator = build_estimator(
            spec, tiny_dataset, vocabulary_size=TINY_OPT_HASH["vocabulary_size"]
        )
        assert isinstance(estimator, OptHashEstimator)
        # Memory accounting: stored IDs + buckets stay within ~1 KB.
        assert estimator.size_kb == pytest.approx(1.0, rel=0.05)

    def test_specs_are_json_safe(self, tiny_dataset):
        import json

        spec = spec_for_method("opt-hash", 1.0, TINY_OPT_HASH, seed=0)
        round_tripped = json.loads(json.dumps(spec.to_dict()))
        assert round_tripped == spec.to_dict()

    def test_unknown_method_rejected(self, tiny_dataset):
        with pytest.raises(SpecError):
            spec_for_method("magic", 1.0, {}, seed=0)

    def test_default_options_complete(self):
        options = default_opt_hash_options()
        assert {"ratio", "lam", "solver", "classifier"} <= set(options)


class TestRunErrorVsSize:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        return run_error_vs_size(
            tiny_dataset,
            sizes_kb=(0.5, 2.0),
            checkpoint_days=(1, 3),
            methods=("count-min", "opt-hash"),
            count_min_depths=(1, 2),
            opt_hash_options=TINY_OPT_HASH,
            seed=0,
        )

    def test_metrics_for_each_checkpoint(self, result):
        assert "average_error_day_1" in result.metrics
        assert "expected_error_day_3" in result.metrics

    def test_every_method_has_a_point_per_size(self, result):
        for metric in result.metrics.values():
            for series in metric.values():
                assert [point.x for point in series] == [0.5, 2.0]

    def test_errors_decrease_with_memory_for_count_min(self, result):
        series = result.metrics["average_error_day_3"]["count-min"]
        assert series[1].mean <= series[0].mean * 1.5

    def test_opt_hash_beats_count_min_at_small_sizes(self, result):
        opt = result.metrics["average_error_day_3"]["opt-hash"][0].mean
        cms = result.metrics["average_error_day_3"]["count-min"][0].mean
        assert opt < cms


class TestRunErrorVsTime:
    def test_series_over_days(self, tiny_dataset):
        result = run_error_vs_time(
            tiny_dataset,
            sizes_kb=(1.0,),
            checkpoint_days=(1, 2, 3),
            methods=("count-min", "opt-hash"),
            count_min_depths=(1,),
            opt_hash_options=TINY_OPT_HASH,
            seed=0,
        )
        series = result.metrics["average_error_1.0kb"]["count-min"]
        assert [point.x for point in series] == [1, 2, 3]
        # More days of traffic means larger absolute error for the sketch.
        assert series[-1].mean >= series[0].mean


class TestRankErrorTable:
    def test_requested_ranks_reported(self, tiny_dataset):
        result = run_rank_error_table(
            tiny_dataset,
            size_kb=2.0,
            ranks=(1, 10, 100, 10_000),
            opt_hash_options=TINY_OPT_HASH,
            seed=0,
        )
        xs = [point.x for point in result.metrics["error_percentage"]["opt-hash"]]
        # Rank 10000 exceeds the tiny universe and is skipped.
        assert xs == [1, 10, 100]
        frequencies = result.series_means("query_frequency", "opt-hash")
        assert frequencies[0] >= frequencies[1] >= frequencies[2]

    def test_head_queries_estimated_accurately(self, tiny_dataset):
        result = run_rank_error_table(
            tiny_dataset,
            size_kb=2.0,
            ranks=(1, 100),
            opt_hash_options=TINY_OPT_HASH,
            seed=0,
        )
        percentages = result.series_means("error_percentage", "opt-hash")
        # The most frequent query is estimated within a modest relative error,
        # and more accurately than the rank-100 query (as in Table 1).
        assert percentages[0] < 50.0
        assert percentages[0] <= percentages[1] + 1e-9
