"""Tests for the experiment result containers."""

import pytest

from repro.evaluation.results import ExperimentResult, SeriesPoint


class TestExperimentResult:
    def test_add_point_computes_mean_and_std(self):
        result = ExperimentResult(name="demo", x_label="x")
        result.add_point("error", "bcd", 1.0, [2.0, 4.0])
        (point,) = result.series("error", "bcd")
        assert point == SeriesPoint(x=1.0, mean=3.0, std=1.0)

    def test_empty_values_rejected(self):
        result = ExperimentResult(name="demo", x_label="x")
        with pytest.raises(ValueError):
            result.add_point("error", "bcd", 1.0, [])

    def test_series_means_in_insertion_order(self):
        result = ExperimentResult(name="demo", x_label="x")
        result.add_point("error", "dp", 1.0, [1.0])
        result.add_point("error", "dp", 2.0, [5.0])
        assert result.series_means("error", "dp") == [1.0, 5.0]

    def test_render_contains_all_series_and_x_values(self):
        result = ExperimentResult(name="Figure X", x_label="lambda")
        result.add_point("overall_error", "bcd", 0.5, [10.0, 12.0])
        result.add_point("overall_error", "milp", 0.5, [9.0])
        result.add_point("elapsed_time", "bcd", 0.5, [0.1])
        text = result.render()
        assert "Figure X" in text
        assert "overall_error" in text
        assert "elapsed_time" in text
        assert "bcd (mean)" in text
        assert "milp (mean)" in text
        assert "0.5" in text

    def test_render_handles_missing_cells(self):
        result = ExperimentResult(name="demo", x_label="x")
        result.add_point("error", "a", 1.0, [1.0])
        result.add_point("error", "b", 2.0, [2.0])
        text = result.render()
        assert "-" in text  # the (a, x=2) and (b, x=1) cells are missing

    def test_metadata_round_trip(self):
        result = ExperimentResult(name="demo", x_label="x", metadata={"G": 6})
        assert result.metadata["G"] == 6
