"""Tests for the streaming error metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    assignment_errors,
    average_absolute_error,
    errors_over_elements,
    expected_magnitude_error,
)
from repro.optimize.objective import BucketAssignment
from repro.sketches.base import ExactCounter
from repro.streams.stream import Element, FrequencyVector


class TestErrorsOverElements:
    def test_perfect_estimates_give_zero_errors(self):
        truth = {"a": 10.0, "b": 5.0}
        average, expected = errors_over_elements(truth, dict(truth))
        assert average == 0.0
        assert expected == 0.0

    def test_hand_computed_values(self):
        truth = {"a": 10.0, "b": 2.0}
        estimates = {"a": 13.0, "b": 1.0}
        average, expected = errors_over_elements(truth, estimates)
        assert average == pytest.approx((3 + 1) / 2)
        assert expected == pytest.approx((10 * 3 + 2 * 1) / 12)

    def test_missing_estimates_treated_as_zero(self):
        truth = {"a": 4.0}
        average, expected = errors_over_elements(truth, {})
        assert average == 4.0
        assert expected == 4.0

    def test_expected_error_weighs_heavy_elements_more(self):
        truth = {"heavy": 100.0, "light": 1.0}
        # Same absolute error on both elements.
        estimates = {"heavy": 110.0, "light": 11.0}
        average, expected = errors_over_elements(truth, estimates)
        assert average == pytest.approx(10.0)
        assert expected == pytest.approx((100 * 10 + 1 * 10) / 101)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            errors_over_elements({}, {})


class TestEstimatorMetrics:
    def test_exact_counter_has_zero_error(self):
        counter = ExactCounter()
        truth = FrequencyVector()
        for key, count in [("a", 3), ("b", 7)]:
            for _ in range(count):
                counter.update(Element(key=key))
                truth.increment(key)
        assert average_absolute_error(counter, truth) == 0.0
        assert expected_magnitude_error(counter, truth) == 0.0

    def test_element_lookup_passes_features_through(self):
        class FeatureSensitive(ExactCounter):
            def estimate(self, element):
                return float(len(element.features))

        estimator = FeatureSensitive()
        truth = FrequencyVector({"a": 2})
        lookup = {"a": Element.with_features("a", [1.0, 2.0])}
        assert average_absolute_error(estimator, truth, element_lookup=lookup) == 0.0


class TestAssignmentErrors:
    def test_wraps_objective_evaluation(self, small_frequencies, small_features):
        assignment = BucketAssignment(labels=[0, 0, 0, 1, 1, 1, 2, 2], num_buckets=3)
        value = assignment_errors(small_frequencies, small_features, assignment, 0.7)
        assert value.lam == 0.7
        assert value.overall == pytest.approx(
            0.7 * value.estimation + 0.3 * value.similarity
        )
