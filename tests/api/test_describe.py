"""describe()/__repr__ on every estimator: kind, params, seed, size_bytes.

Satellite of the api_redesign issue: every estimator reports its kind and
parameters, and for spec-constructible estimators the reported params
round-trip through ``build({"kind": ..., **params})`` into a
merge-compatible twin.
"""

import numpy as np
import pytest

import repro.api as api
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

ROUND_TRIP_SPECS = [
    {"kind": "count_min", "total_buckets": 128, "depth": 2, "seed": 5},
    {"kind": "count_min", "width": 32, "depth": 1, "seed": 5, "conservative": True},
    {"kind": "count_sketch", "width": 32, "depth": 3, "seed": 5},
    {"kind": "bloom", "num_bits": 128, "num_hashes": 3, "seed": 5},
    {"kind": "ams", "num_estimators": 16, "means_groups": 4, "seed": 5},
    {"kind": "misra_gries", "num_counters": 8},
    {"kind": "space_saving", "num_counters": 8},
    {"kind": "exact_counter"},
    {
        "kind": "learned_cms",
        "total_buckets": 64,
        "num_heavy_buckets": 3,
        "heavy_keys": [7, 8, 9],
        "depth": 1,
        "seed": 5,
    },
]


@pytest.mark.parametrize(
    "spec_dict", ROUND_TRIP_SPECS, ids=[d["kind"] for d in ROUND_TRIP_SPECS][:8] + ["learned_cms2"]
)
def test_describe_round_trips_through_build(spec_dict):
    estimator = api.build(spec_dict)
    info = estimator.describe()
    assert info["kind"] == spec_dict["kind"]
    assert info["size_bytes"] == int(estimator.size_bytes)
    if "seed" in spec_dict:
        assert info["params"]["seed"] == spec_dict["seed"]
    # The reported params rebuild a merge-compatible twin.
    twin = api.build({"kind": info["kind"], **info["params"]})
    if hasattr(estimator, "update_batch"):
        estimator.update_batch([1, 2, 3])
        twin.update_batch([4])
    estimator.merge(twin)


@pytest.mark.parametrize(
    "spec_dict", ROUND_TRIP_SPECS, ids=[d["kind"] for d in ROUND_TRIP_SPECS][:8] + ["learned_cms2"]
)
def test_repr_reports_kind_and_size(spec_dict):
    rendered = repr(api.build(spec_dict))
    assert f"kind={spec_dict['kind']}" in rendered
    assert "size_bytes=" in rendered


def test_describe_count_min_exact_fields():
    info = api.build({"kind": "count_min", "width": 16, "depth": 2, "seed": 3}).describe()
    assert info["params"] == {
        "width": 16,
        "depth": 2,
        "seed": 3,
        "conservative": False,
        "hash_scheme": "universal",
    }


def test_describe_survives_serialization():
    estimator = api.build({"kind": "count_min", "width": 16, "depth": 2, "seed": 3})
    from repro.sketches import loads

    restored = loads(estimator.to_bytes())
    assert restored.describe() == estimator.describe()


def test_long_parameter_lists_are_elided_in_repr():
    spec = {
        "kind": "learned_cms",
        "total_buckets": 128,
        "num_heavy_buckets": 20,
        "heavy_keys": list(range(20)),
        "seed": 0,
    }
    rendered = repr(api.build(spec))
    assert "<20 values>" in rendered
    assert "[0, 1, 2" not in rendered


def test_opt_hash_describe_reports_training_facts():
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=3, fraction_seen=0.5, seed=0)
    )
    prefix = generator.generate_prefix(300)
    static = api.build(
        {"kind": "opt_hash", "num_buckets": 4, "classifier": "cart", "seed": 7},
        prefix=prefix,
    )
    info = static.describe()
    assert info["kind"] == "opt_hash"
    assert info["params"]["num_buckets"] == 4
    assert info["params"]["seed"] == 7
    assert info["params"]["classifier"] == "DecisionTreeClassifier"
    assert info["params"]["num_stored_ids"] == static.scheme.num_stored_ids

    adaptive = api.build(
        {
            "kind": "adaptive_opt_hash",
            "num_buckets": 4,
            "classifier": None,
            "bloom_bits": 256,
            "seed": 7,
        },
        prefix=prefix,
    )
    info = adaptive.describe()
    assert info["kind"] == "adaptive_opt_hash"
    assert info["params"]["bloom_bits"] == 256
    assert info["params"]["seed"] == 7


def test_sharded_describe_embeds_inner_spec():
    sharded = api.build(
        {
            "kind": "sharded",
            "inner": {"kind": "count_min", "width": 16, "seed": 2},
            "num_shards": 3,
            "mode": "round-robin",
        }
    )
    info = sharded.describe()
    assert info["kind"] == "sharded"
    assert info["params"]["num_shards"] == 3
    assert info["params"]["inner"]["kind"] == "count_min"
    assert "sharded" in repr(sharded)


def test_describe_params_are_json_safe():
    import json

    for spec_dict in ROUND_TRIP_SPECS:
        info = api.build(spec_dict).describe()
        json.dumps(info)
