"""Session facade: ingest / estimate / merge / snapshot / restore.

Acceptance criterion: ``Session.snapshot()`` / ``restore`` round-trips
bit-identically for linear sketches — including sharded ones, whose layout
(executor pool and all) rebuilds from the embedded spec.
"""

import numpy as np
import pytest

import repro
import repro.api as api
from repro.api import OptHashSpec, ShardedSpec, SketchSpec
from repro.core.pipeline import replay_sharded
from repro.core.sharding import ShardedEstimator
from repro.sketches import CountMinSketch, SerializationError, loads
from repro.sketches.serialization import pack
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator
from repro.streams.zipf import ZipfSampler

CMS_SPEC = {"kind": "count_min", "total_buckets": 1024, "depth": 2, "seed": 9}


@pytest.fixture(scope="module")
def keys():
    return ZipfSampler(2000, rng=np.random.default_rng(1)).sample(100_000)


class TestSessionBasics:
    def test_ingest_matches_direct_update_batch(self, keys):
        session = api.open(CMS_SPEC)
        assert session.ingest(keys) == len(keys)
        direct = api.build(CMS_SPEC)
        direct.update_batch(keys)
        assert np.array_equal(session.estimator.counters(), direct.counters())
        probe = np.arange(50)
        assert np.array_equal(session.estimate(probe), direct.estimate_batch(probe))

    def test_weighted_ingest(self):
        session = api.open(CMS_SPEC)
        session.ingest(["a", "b"], counts=[3, 5])
        assert session.estimate_key("a") >= 3.0
        assert session.estimate_key("b") >= 5.0

    def test_ingest_accepts_streams(self):
        generator = SyntheticGenerator(
            SyntheticConfig(num_groups=3, fraction_seen=0.5, seed=0)
        )
        _, stream = generator.generate_prefix_and_stream(stream_multiplier=2)
        session = api.open(CMS_SPEC)
        n = session.ingest(stream)
        assert n == len(stream)

    def test_merge_of_split_sessions_equals_single(self, keys):
        split = len(keys) // 2
        left, right = api.open(CMS_SPEC), api.open(CMS_SPEC)
        left.ingest(keys[:split])
        right.ingest(keys[split:])
        left.merge(right)
        single = api.open(CMS_SPEC)
        single.ingest(keys)
        assert np.array_equal(
            left.estimator.counters(), single.estimator.counters()
        )

    def test_describe_includes_spec(self):
        session = api.open(CMS_SPEC)
        info = session.describe()
        assert info["kind"] == "count_min"
        assert info["spec"]["total_buckets"] == 1024

    def test_repro_top_level_aliases(self):
        session = repro.open(repro.SketchSpec("count_min", width=16, seed=0))
        assert isinstance(session, repro.Session)

    def test_protocol_gaps_raise_typed_errors(self):
        """bloom/ams build fine but fail Session ops with SpecError, not
        AttributeError — the facade's typed-error contract."""
        bloom = api.open({"kind": "bloom", "num_bits": 64, "seed": 0})
        with pytest.raises(api.SpecError, match="native API"):
            bloom.ingest(["a"])
        ams = api.open({"kind": "ams", "num_estimators": 8, "means_groups": 2, "seed": 0})
        ams.ingest([1, 2, 3])  # AMS does ingest batches
        with pytest.raises(api.SpecError, match="estimate"):
            ams.estimate([1])
        with pytest.raises(ValueError, match="cannot be sharded"):
            ShardedEstimator({"kind": "bloom", "num_bits": 64, "seed": 0}, num_shards=2)


class TestSnapshotRestore:
    @pytest.mark.parametrize(
        "spec_dict",
        [
            CMS_SPEC,
            {"kind": "count_sketch", "total_buckets": 512, "depth": 3, "seed": 2},
            {"kind": "exact_counter"},
            {"kind": "misra_gries", "num_counters": 64},
        ],
    )
    def test_round_trip_preserves_estimates(self, spec_dict, keys):
        session = api.open(spec_dict)
        session.ingest(keys[:20_000])
        restored = api.restore(session.snapshot())
        assert restored.spec == session.spec
        probe = np.arange(200)
        assert np.array_equal(session.estimate(probe), restored.estimate(probe))

    def test_linear_sketch_round_trip_is_bit_identical(self, keys):
        session = api.open(CMS_SPEC)
        session.ingest(keys)
        restored = api.restore(session.snapshot())
        assert np.array_equal(
            session.estimator.counters(), restored.estimator.counters()
        )
        # And the restored session keeps ingesting in lockstep.
        session.ingest(keys[:100])
        restored.ingest(keys[:100])
        assert np.array_equal(
            session.estimator.counters(), restored.estimator.counters()
        )

    def test_loads_understands_session_buffers(self, keys):
        session = api.open(CMS_SPEC)
        session.ingest(keys[:1000])
        rehydrated = loads(session.snapshot())
        assert isinstance(rehydrated, api.Session)
        assert rehydrated.kind == "count_min"

    def test_restore_rejects_mismatched_estimator_kind(self):
        bloom_bytes = api.build(
            {"kind": "bloom", "num_bits": 64, "num_hashes": 2, "seed": 0}
        ).to_bytes()
        forged = pack(
            "session",
            {"spec": CMS_SPEC},
            {"estimator": np.frombuffer(bloom_bytes, dtype=np.uint8)},
        )
        with pytest.raises(SerializationError, match="expected kind"):
            api.restore(forged)

    def test_snapshot_unavailable_for_opt_hash(self):
        generator = SyntheticGenerator(
            SyntheticConfig(num_groups=3, fraction_seen=0.5, seed=0)
        )
        prefix = generator.generate_prefix(200)
        session = api.open(
            OptHashSpec(num_buckets=4, solver="bcd", classifier=None, seed=0),
            prefix=prefix,
        )
        with pytest.raises(SerializationError):
            session.snapshot()


class TestShardedSessions:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sharded_session_matches_unsharded(self, executor, keys):
        spec = ShardedSpec(
            SketchSpec("count_min", total_buckets=1024, depth=2, seed=9),
            num_shards=2,
            executor=executor,
        )
        with api.open(spec) as session:
            session.ingest(keys)
            single = api.open(CMS_SPEC)
            single.ingest(keys)
            probe = np.arange(300)
            assert np.array_equal(session.estimate(probe), single.estimate(probe))

    def test_sharded_snapshot_round_trip(self, keys):
        spec = ShardedSpec(
            SketchSpec("count_min", total_buckets=1024, depth=2, seed=9),
            num_shards=3,
            mode="round-robin",
        )
        with api.open(spec) as session:
            session.ingest(keys[:30_000])
            blob = session.snapshot()
        restored = api.restore(blob)
        try:
            assert isinstance(restored.estimator, ShardedEstimator)
            # Per-shard state is preserved exactly, not just the collapse.
            single = api.open(CMS_SPEC)
            single.ingest(keys[:30_000])
            assert np.array_equal(
                restored.estimator.collapse().counters(),
                single.estimator.counters(),
            )
            # Round-robin rotation state survives: continued ingestion stays
            # bit-identical to an uninterrupted sharded run.
            uninterrupted = api.build(spec)
            uninterrupted.update_batch(keys[:30_000])
            restored.ingest(keys[30_000:60_000])
            uninterrupted.update_batch(keys[30_000:60_000])
            for mine, theirs in zip(restored.estimator.shards, uninterrupted.shards):
                assert np.array_equal(mine.counters(), theirs.counters())
            uninterrupted.close()
        finally:
            restored.close()

    def test_sharded_estimator_accepts_spec_dict_directly(self, keys):
        sharded = ShardedEstimator(
            {"kind": "count_min", "total_buckets": 512, "depth": 1, "seed": 4},
            num_shards=2,
        )
        sharded.update_batch(keys[:5000])
        single = CountMinSketch.from_total_buckets(512, depth=1, seed=4)
        single.update_batch(keys[:5000])
        assert np.array_equal(sharded.collapse().counters(), single.counters())

    def test_callable_factory_compat_shim(self, keys):
        sharded = ShardedEstimator(
            lambda: CountMinSketch.from_total_buckets(512, depth=1, seed=4),
            num_shards=2,
        )
        sharded.update_batch(keys[:5000])
        assert sharded.estimator_spec is None
        with pytest.raises(SerializationError, match="spec-built"):
            sharded.to_bytes()

    def test_unseeded_spec_factory_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ShardedEstimator(
                {"kind": "count_min", "total_buckets": 512, "depth": 1},
                num_shards=2,
            )

    def test_replay_sharded_accepts_specs(self, keys):
        merged = replay_sharded(
            {"kind": "count_min", "total_buckets": 512, "depth": 1, "seed": 4},
            keys[:20_000],
            num_shards=4,
        )
        single = CountMinSketch.from_total_buckets(512, depth=1, seed=4)
        single.update_batch(keys[:20_000])
        assert np.array_equal(merged.counters(), single.counters())


class TestStorageBackedSessions:
    """PR-4: storage= travels through open / snapshot / restore."""

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_snapshot_restore_preserves_backend(self, backend, keys):
        import os

        spec = {**CMS_SPEC, "storage": backend}
        with api.open(spec) as session:
            session.ingest(keys[:20_000])
            blob = session.snapshot(embed=True)
            expected = session.estimate(np.arange(200)).copy()
            source_path = session.estimator.storage_path
        restored = api.restore(blob)
        assert restored.estimator.storage_backend == backend
        assert np.array_equal(restored.estimate(np.arange(200)), expected)
        path = restored.estimator.storage_path
        restored.close()
        for table_file in (source_path, path):
            if table_file:
                os.unlink(table_file)

    def test_mmap_snapshot_is_zero_copy_by_default(self, keys, tmp_path):
        spec = {**CMS_SPEC, "storage": "mmap", "storage_path": str(tmp_path / "t.bin")}
        with api.open(spec) as session:
            session.ingest(keys[:20_000])
            live_blob = session.snapshot()
            embedded_blob = session.snapshot(embed=True)
            expected = session.estimate(np.arange(200)).copy()
            # Live snapshot references the file instead of copying the
            # 8 KB (1024 x int64) table.
            assert len(embedded_blob) - len(live_blob) > 7_000
        restored = api.restore(live_blob)
        assert restored.estimator.storage_path == str(tmp_path / "t.bin")
        assert np.array_equal(restored.estimate(np.arange(200)), expected)
        restored.close()

    def test_zero_copy_snapshot_rejected_for_dense(self, keys):
        with api.open(CMS_SPEC) as session:
            session.ingest(keys[:1000])
            with pytest.raises(SerializationError, match="mmap"):
                session.snapshot(embed=False)

    def test_shm_transport_session_round_trip(self, keys):
        spec = {
            "kind": "sharded",
            "inner": {"kind": "count_min", "total_buckets": 1024, "depth": 2, "seed": 9},
            "num_shards": 2,
            "executor": "process",
            "transport": "shm",
        }
        single = api.open({"kind": "count_min", "total_buckets": 1024, "depth": 2, "seed": 9})
        single.ingest(keys[:30_000])
        with api.open(spec) as session:
            session.ingest(keys[:30_000])
            probe = np.arange(300)
            assert np.array_equal(session.estimate(probe), single.estimate(probe))
            blob = session.snapshot()
        restored = api.restore(blob)
        try:
            assert restored.estimator.transport == "shm"
            assert np.array_equal(restored.estimate(probe), single.estimate(probe))
        finally:
            restored.close()
