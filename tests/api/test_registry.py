"""Registry: every estimator buildable from a JSON-safe dict, one name space.

Acceptance criterion of the api_redesign issue: every estimator in the repo
is constructible via ``repro.api.build`` from a JSON-safe dict, with solvers
and classifiers selected by name, and the build registry shares its name
space with the serialization tag registry.
"""

import json

import numpy as np
import pytest

import repro.api as api
from repro.api import OptHashSpec, SpecError
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    RandomForestClassifier,
)
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


@pytest.fixture(scope="module")
def prefix():
    generator = SyntheticGenerator(
        SyntheticConfig(num_groups=4, fraction_seen=0.5, seed=0)
    )
    return generator.generate_prefix(400)


#: One JSON-safe sample dict per registered kind (the acceptance sweep).
SAMPLE_DICTS = {
    "count_min": {"kind": "count_min", "total_buckets": 64, "depth": 2, "seed": 1},
    "count_sketch": {"kind": "count_sketch", "width": 32, "depth": 3, "seed": 1},
    "bloom": {"kind": "bloom", "num_bits": 256, "num_hashes": 3, "seed": 1},
    "ams": {"kind": "ams", "num_estimators": 16, "means_groups": 4, "seed": 1},
    "misra_gries": {"kind": "misra_gries", "num_counters": 8},
    "space_saving": {"kind": "space_saving", "num_counters": 8},
    "exact_counter": {"kind": "exact_counter"},
    "learned_cms": {
        "kind": "learned_cms",
        "total_buckets": 64,
        "num_heavy_buckets": 4,
        "heavy_keys": [1, 2, 3, 4],
        "depth": 1,
        "seed": 1,
    },
    "opt_hash": {
        "kind": "opt_hash",
        "num_buckets": 6,
        "lam": 0.5,
        "solver": "bcd",
        "classifier": "cart",
        "seed": 0,
    },
    "adaptive_opt_hash": {
        "kind": "adaptive_opt_hash",
        "num_buckets": 6,
        "solver": "bcd",
        "classifier": None,
        "bloom_bits": 512,
        "seed": 0,
    },
    "sharded": {
        "kind": "sharded",
        "inner": {"kind": "count_min", "total_buckets": 64, "depth": 2, "seed": 1},
        "num_shards": 2,
    },
    "sliding_window": {
        "kind": "sliding_window",
        "inner": {"kind": "count_min", "total_buckets": 64, "depth": 2, "seed": 1},
        "num_panes": 3,
        "pane_items": 100,
    },
    "decayed": {
        "kind": "decayed",
        "inner": {"kind": "count_min", "total_buckets": 64, "depth": 2, "seed": 1},
        "num_panes": 3,
        "decay": 0.5,
    },
    "session": None,  # not an estimator kind: sessions wrap estimators
}


class TestEveryKindBuildable:
    def test_sample_covers_every_registered_kind(self):
        assert set(api.registered_kinds()) <= set(SAMPLE_DICTS)

    @pytest.mark.parametrize(
        "kind", [k for k, v in SAMPLE_DICTS.items() if v is not None]
    )
    def test_build_from_json_safe_dict(self, kind, prefix):
        spec_dict = json.loads(json.dumps(SAMPLE_DICTS[kind]))
        estimator = api.build(spec_dict, prefix=prefix)
        expected_cls = api.estimator_class_for(kind)
        assert isinstance(estimator, expected_cls)

    def test_kind_names_equal_serialization_tags(self):
        for kind in api.registered_kinds():
            cls = api.estimator_class_for(kind)
            tag = getattr(cls, "SERIAL_TAG", None)
            if tag is not None:
                assert tag == kind, f"{cls.__name__}: kind {kind!r} != tag {tag!r}"

    def test_registering_conflicting_tag_and_kind_is_rejected(self):
        from repro.api.registry import register_estimator
        from repro.sketches.serialization import register_sketch

        @register_sketch("one_tag_name")
        class Doomed:  # noqa: N801 - throwaway
            pass

        try:
            with pytest.raises(ValueError, match="must match serialization tag"):
                register_estimator("another_kind_name")(Doomed)
        finally:
            from repro.sketches import serialization

            serialization._REGISTRY.pop("one_tag_name", None)


class TestSelectionByName:
    @pytest.mark.parametrize("solver", ["bcd", "dp", "milp"])
    def test_solver_by_name(self, solver, prefix):
        options = {"time_limit": 2.0, "node_limit": 20} if solver == "milp" else {}
        spec = OptHashSpec(
            num_buckets=3,
            solver=solver,
            solver_options=options,
            classifier=None,
            max_stored_elements=8,
            seed=0,
        )
        training = api.train(spec, prefix)
        assert training.solver_result.assignment.labels.shape == (8,)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("cart", DecisionTreeClassifier),
            ("logreg", LogisticRegressionClassifier),
            ("rf", RandomForestClassifier),
        ],
    )
    def test_classifier_by_name(self, name, cls, prefix):
        options = {"n_estimators": 3} if name == "rf" else {}
        spec = OptHashSpec(
            num_buckets=4,
            solver="bcd",
            classifier=name,
            classifier_options=options,
            seed=0,
        )
        estimator = api.build(spec, prefix=prefix)
        assert isinstance(estimator.scheme.classifier, cls)


class TestBuildErrors:
    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown estimator kind"):
            api.build({"kind": "quantum_sketch"})

    def test_training_kind_without_prefix(self):
        with pytest.raises(SpecError, match="prefix"):
            api.build({"kind": "opt_hash", "num_buckets": 4, "seed": 0})

    def test_sharded_over_training_kind_without_prefix(self):
        with pytest.raises(SpecError, match="prefix"):
            api.build(
                {
                    "kind": "sharded",
                    "inner": {"kind": "opt_hash", "num_buckets": 4, "seed": 0},
                    "num_shards": 2,
                }
            )

    def test_constructor_errors_surface_as_spec_errors(self):
        # total_buckets < depth passes the per-field schema but fails in the
        # constructor; build must re-raise it as the typed SpecError.
        with pytest.raises(SpecError, match="count_min"):
            api.build({"kind": "count_min", "total_buckets": 2, "depth": 8})

    def test_train_rejects_non_opt_hash_specs(self, prefix):
        with pytest.raises(SpecError, match="opt-hash"):
            api.train({"kind": "count_min", "width": 8}, prefix)


class TestOptHashDeterminism:
    def test_same_spec_builds_merge_compatible_estimators(self, prefix):
        """Two independent builds from one spec (classifier=None) merge."""
        spec = OptHashSpec(num_buckets=5, solver="dp", classifier=None, seed=3)
        first = api.build(spec, prefix=prefix)
        second = api.build(spec, prefix=prefix)
        first.update_batch([1, 2, 3])
        second.update_batch([4, 5])
        first.merge(second)  # identical schemes + seeding by construction

    def test_sharded_opt_hash_trains_once_and_merges(self, prefix):
        spec = {
            "kind": "sharded",
            "inner": {
                "kind": "opt_hash",
                "num_buckets": 5,
                "solver": "bcd",
                "classifier": "cart",
                "seed": 3,
            },
            "num_shards": 3,
        }
        sharded = api.build(spec, prefix=prefix)
        schemes = {id(shard.scheme) for shard in sharded.shards}
        assert len(schemes) == 1, "shards must share one trained scheme"
        keys = [element.key for element in prefix.arrivals[:200]]
        sharded.update_batch(keys)
        collapsed = sharded.collapse()
        single = api.build(spec["inner"], prefix=prefix)
        # Not the same training run, so only check the collapse is queryable.
        assert collapsed.estimate_batch(keys[:5]).shape == (5,)
        assert single.estimate_batch(keys[:5]).shape == (5,)
