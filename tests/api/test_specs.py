"""Spec layer: lossless JSON round-trips, strict validation, typed errors.

The load-bearing property (a satellite of the api_redesign issue): for every
spec, ``build(from_dict(to_dict(spec)))`` is merge-compatible with
``build(spec)`` — the dict form loses nothing that matters for shard /
snapshot correctness — and every malformed spec raises :class:`SpecError`,
never a bare KeyError/TypeError from inside a constructor.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.api as api
from repro.api import (
    OptHashSpec,
    ShardedSpec,
    SketchSpec,
    SpecError,
    spec_from_dict,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
SCHEMES = st.sampled_from(["universal", "tabulation"])


@st.composite
def sketch_specs(draw) -> SketchSpec:
    """A valid spec of a random sketch kind with small parameters."""
    kind = draw(
        st.sampled_from(
            [
                "count_min",
                "count_sketch",
                "bloom",
                "ams",
                "misra_gries",
                "space_saving",
                "exact_counter",
                "learned_cms",
            ]
        )
    )
    if kind in ("count_min", "count_sketch"):
        params = {
            "depth": draw(st.integers(1, 3)),
            "seed": draw(SEEDS),
            "hash_scheme": draw(SCHEMES),
        }
        if draw(st.booleans()):
            params["width"] = draw(st.integers(1, 64))
        else:
            params["total_buckets"] = draw(st.integers(params["depth"], 128))
        if kind == "count_min":
            params["conservative"] = draw(st.booleans())
        return SketchSpec(kind, **params)
    if kind == "bloom":
        return SketchSpec(
            kind,
            num_bits=draw(st.integers(8, 512)),
            num_hashes=draw(st.integers(1, 4)),
            seed=draw(SEEDS),
            hash_scheme=draw(SCHEMES),
        )
    if kind == "ams":
        groups = draw(st.integers(1, 4))
        return SketchSpec(
            kind,
            num_estimators=groups * draw(st.integers(1, 8)),
            means_groups=groups,
            seed=draw(SEEDS),
        )
    if kind in ("misra_gries", "space_saving"):
        return SketchSpec(kind, num_counters=draw(st.integers(1, 32)))
    if kind == "learned_cms":
        num_heavy = draw(st.integers(0, 4))
        depth = draw(st.integers(1, 2))
        return SketchSpec(
            kind,
            total_buckets=draw(st.integers(2 * num_heavy + depth, 128)),
            num_heavy_buckets=num_heavy,
            heavy_keys=draw(
                st.lists(st.integers(0, 30), max_size=8, unique=True)
            ),
            depth=depth,
            seed=draw(SEEDS),
        )
    return SketchSpec("exact_counter")


def json_roundtrip(spec):
    """to_dict → JSON text → dict → spec, the full wire trip."""
    return spec_from_dict(json.loads(json.dumps(spec.to_dict())))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=sketch_specs())
    def test_to_dict_is_lossless_and_json_safe(self, spec):
        assert json_roundtrip(spec) == spec
        assert json_roundtrip(spec).to_dict() == spec.to_dict()

    @settings(max_examples=40, deadline=None)
    @given(spec=sketch_specs(), data=st.data())
    def test_build_from_roundtripped_dict_is_merge_compatible(self, spec, data):
        original = api.build(spec)
        twin = api.build(json_roundtrip(spec))
        keys = data.draw(
            st.lists(st.integers(0, 40), min_size=0, max_size=25), label="keys"
        )
        if hasattr(original, "update_batch"):
            original.update_batch(keys)
            twin.update_batch(keys[: len(keys) // 2])
        else:  # bloom: membership API
            for key in keys:
                original.add(key)
        # The satellite property: merge must accept the rebuilt twin.
        original.merge(twin)

    @settings(max_examples=25, deadline=None)
    @given(
        spec=sketch_specs().filter(
            # Conservative-update CMS is deliberately not linear: its merge
            # upper-bounds a serial run instead of reproducing it.
            lambda s: s.kind in ("count_min", "count_sketch", "ams")
            and not s.params.get("conservative", False)
        ),
        data=st.data(),
    )
    def test_linear_kinds_merge_bit_identically(self, spec, data):
        keys = data.draw(st.lists(st.integers(0, 40), max_size=40), label="keys")
        split = len(keys) // 2
        left, right = api.build(spec), api.build(json_roundtrip(spec))
        left.update_batch(keys[:split])
        right.update_batch(keys[split:])
        merged = left.merge(right)
        single = api.build(spec)
        single.update_batch(keys)
        if spec.kind == "ams":
            assert merged.estimate_second_moment() == single.estimate_second_moment()
        else:
            assert np.array_equal(merged.counters(), single.counters())

    @settings(max_examples=30, deadline=None)
    @given(
        inner=sketch_specs().filter(lambda s: s.kind != "bloom"),
        num_shards=st.integers(1, 4),
        mode=st.sampled_from(["key-partition", "round-robin"]),
    )
    def test_sharded_spec_roundtrip(self, inner, num_shards, mode):
        spec = ShardedSpec(inner, num_shards=num_shards, mode=mode)
        assert json_roundtrip(spec) == spec
        assert isinstance(json_roundtrip(spec), ShardedSpec)

    def test_opt_hash_roundtrip(self):
        spec = OptHashSpec(
            num_buckets=8,
            lam=0.25,
            solver="dp",
            solver_options={"center": "median"},
            classifier="rf",
            classifier_options={"n_estimators": 3},
            max_stored_elements=20,
            seed=5,
        )
        assert json_roundtrip(spec) == spec
        adaptive = OptHashSpec(adaptive=True, num_buckets=8, bloom_bits=256, seed=1)
        back = json_roundtrip(adaptive)
        assert isinstance(back, OptHashSpec) and back.adaptive
        assert back.kind == "adaptive_opt_hash"

    def test_numpy_scalars_coerce_to_json_types(self):
        spec = SketchSpec(
            "count_min", width=np.int64(8), depth=np.int32(2), seed=np.int64(3)
        )
        assert json.dumps(spec.to_dict())  # would raise on raw numpy scalars
        assert spec.params["width"] == 8 and isinstance(spec.params["width"], int)


INVALID_SPECS = [
    lambda: SketchSpec("no_such_kind", x=1),
    lambda: SketchSpec("count_min"),  # needs width or total_buckets
    lambda: SketchSpec("count_min", width=4, total_buckets=8),  # not both
    lambda: SketchSpec("count_min", width=0),
    lambda: SketchSpec("count_min", width=4, depth=0),
    lambda: SketchSpec("count_min", width=4, widht=4),  # unknown name
    lambda: SketchSpec("count_min", width=4, hash_scheme="crc32"),
    lambda: SketchSpec("count_min", width="wide"),
    lambda: SketchSpec("count_min", width=4, seed=1.5),
    lambda: SketchSpec("bloom", num_hashes=2),  # missing num_bits
    lambda: SketchSpec("misra_gries"),  # missing num_counters
    lambda: SketchSpec("misra_gries", num_counters=0),
    lambda: SketchSpec("ams", num_estimators=10, means_groups=3),
    lambda: SketchSpec("learned_cms", total_buckets=16, num_heavy_buckets=2,
                       heavy_keys=[["nested"]]),
    lambda: SketchSpec("opt_hash", num_buckets=4),  # needs OptHashSpec
    lambda: SketchSpec("sharded"),  # needs ShardedSpec
    lambda: OptHashSpec(solver="sgd"),
    lambda: OptHashSpec(classifier="svm"),
    lambda: OptHashSpec(num_buckets=0),
    lambda: OptHashSpec(lam=1.5),
    lambda: OptHashSpec(max_stored_elements=-3),
    lambda: OptHashSpec(solver_options={"time": {1, 2}}),  # not JSON-safe
    lambda: OptHashSpec(no_such_field=1),
    lambda: ShardedSpec(SketchSpec("count_min", width=8)),  # unseeded inner
    lambda: ShardedSpec(SketchSpec("count_min", width=8, seed=1), num_shards=0),
    lambda: ShardedSpec(SketchSpec("count_min", width=8, seed=1), mode="random"),
    lambda: ShardedSpec(
        SketchSpec("count_min", width=8, seed=1),
        mode="round-robin",
        query_mode="fanout",
    ),
    lambda: ShardedSpec(
        ShardedSpec(SketchSpec("exact_counter"), num_shards=2), num_shards=2
    ),
    lambda: ShardedSpec("count_min"),  # inner must be a spec
    lambda: spec_from_dict({"width": 8}),  # missing kind
    lambda: spec_from_dict(42),
    lambda: OptHashSpec.from_dict({"kind": "opt_hash", "adaptive": True}),
]


class TestValidation:
    @pytest.mark.parametrize("make", INVALID_SPECS)
    def test_invalid_specs_raise_spec_error(self, make):
        with pytest.raises(SpecError):
            make()

    def test_spec_error_is_a_value_error(self):
        assert issubclass(SpecError, ValueError)

    def test_seedless_kinds_shard_without_seed(self):
        for kind, params in (
            ("exact_counter", {}),
            ("misra_gries", {"num_counters": 4}),
            ("space_saving", {"num_counters": 4}),
        ):
            ShardedSpec(SketchSpec(kind, **params), num_shards=2)

    def test_validation_reports_the_offending_parameter(self):
        with pytest.raises(SpecError, match="hash_scheme"):
            SketchSpec("count_min", width=4, hash_scheme="crc32")
        with pytest.raises(SpecError, match="num_counters"):
            SketchSpec("misra_gries", num_counters=-1)

    def test_iter_spec_grid_covers_the_product(self):
        grid = list(
            api.iter_spec_grid(
                "count_min", total_buckets=[64, 128], depth=[1, 2, 4], seed=0
            )
        )
        assert len(grid) == 6
        assert {(s.params["total_buckets"], s.params["depth"]) for s in grid} == {
            (b, d) for b in (64, 128) for d in (1, 2, 4)
        }


class TestStorageAndTransportFields:
    """The PR-4 spec surface: storage= on table sketches, transport= on sharded."""

    def test_storage_field_round_trips(self):
        spec = SketchSpec(
            "count_min", total_buckets=128, depth=2, seed=1, storage="shm"
        )
        assert json_roundtrip(spec).to_dict() == spec.to_dict()
        assert spec.to_dict()["storage"] == "shm"

    def test_storage_path_round_trips_for_mmap(self):
        spec = SketchSpec(
            "count_min",
            width=32,
            seed=1,
            storage="mmap",
            storage_path="/tmp/cms-table.bin",
        )
        assert json_roundtrip(spec).to_dict() == spec.to_dict()

    def test_storage_path_without_mmap_rejected(self):
        with pytest.raises(SpecError, match="storage_path"):
            SketchSpec("count_min", width=32, seed=1, storage_path="/tmp/x")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="storage"):
            SketchSpec("ams", num_estimators=8, means_groups=2, seed=1, storage="disk")

    def test_transport_round_trips_and_defaults_out(self):
        inner = SketchSpec("count_min", total_buckets=128, depth=2, seed=1)
        default = ShardedSpec(inner, num_shards=2, executor="process")
        assert "transport" not in default.to_dict()
        assert json_roundtrip(default).transport == "serialization"
        shm = ShardedSpec(inner, num_shards=2, executor="process", transport="shm")
        assert shm.to_dict()["transport"] == "shm"
        assert json_roundtrip(shm).to_dict() == shm.to_dict()

    def test_shm_transport_requires_process_executor(self):
        inner = SketchSpec("count_min", total_buckets=128, depth=2, seed=1)
        with pytest.raises(SpecError, match="process"):
            ShardedSpec(inner, num_shards=2, executor="thread", transport="shm")

    def test_shm_transport_requires_storage_capable_inner(self):
        with pytest.raises(SpecError, match="storage"):
            ShardedSpec(
                SketchSpec("exact_counter"),
                num_shards=2,
                executor="process",
                transport="shm",
            )

    def test_shm_transport_rejects_mmap_inner(self):
        inner = SketchSpec(
            "count_min", total_buckets=128, depth=2, seed=1, storage="mmap"
        )
        with pytest.raises(SpecError, match="mmap"):
            ShardedSpec(inner, num_shards=2, executor="process", transport="shm")

    def test_unknown_transport_rejected(self):
        inner = SketchSpec("count_min", total_buckets=128, depth=2, seed=1)
        with pytest.raises(SpecError, match="transport"):
            ShardedSpec(inner, num_shards=2, executor="process", transport="tcp")
