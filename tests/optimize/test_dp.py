"""Tests for the λ=1 dynamic programming solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.dp import SegmentCost, cluster_cost_matrix, dynamic_programming
from repro.optimize.milp import solve_exact_enumeration
from repro.optimize.objective import estimation_error


def contiguous_optimum(frequencies, num_buckets, center="mean"):
    """Brute-force best partition of the *sorted* values into contiguous
    ranges — the DP's actual search space.
    """
    values = np.sort(np.asarray(frequencies, dtype=float))
    cost = SegmentCost(values, center=center)
    n = len(values)
    best = float("inf")
    for k in range(1, min(num_buckets, n) + 1):
        for cuts in itertools.combinations(range(1, n), k - 1):
            bounds = (0, *cuts, n)
            total = sum(
                cost(bounds[i], bounds[i + 1] - 1) for i in range(k)
            )
            best = min(best, total)
    return best


class TestSegmentCost:
    def test_single_element_segment_is_free(self):
        cost = SegmentCost(np.array([1.0, 5.0, 9.0]))
        assert cost(0, 0) == 0.0
        assert cost(2, 2) == 0.0

    def test_two_element_segment(self):
        cost = SegmentCost(np.array([2.0, 6.0]))
        # Mean 4 -> deviations 2 + 2.
        assert cost(0, 1) == pytest.approx(4.0)

    def test_matches_direct_computation(self):
        values = np.sort(np.array([3.0, 1.0, 7.0, 7.0, 20.0]))
        cost = SegmentCost(values)
        for start in range(len(values)):
            for end in range(start, len(values)):
                segment = values[start : end + 1]
                expected = np.abs(segment - segment.mean()).sum()
                assert cost(start, end) == pytest.approx(expected)

    def test_median_center_uses_median(self):
        values = np.array([0.0, 0.0, 10.0])
        cost = SegmentCost(values, center="median")
        assert cost(0, 2) == pytest.approx(10.0)  # deviations from median 0
        mean_cost = SegmentCost(values, center="mean")
        assert mean_cost(0, 2) == pytest.approx(13.333333, rel=1e-5)

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            SegmentCost(np.array([3.0, 1.0]))

    def test_invalid_center_rejected(self):
        with pytest.raises(ValueError):
            SegmentCost(np.array([1.0]), center="mode")

    @pytest.mark.parametrize("center", ["mean", "median"])
    def test_costs_ending_at_matches_scalar_calls(self, center, rng):
        values = np.sort(rng.integers(0, 200, size=40).astype(float))
        cost = SegmentCost(values, center=center)
        for end in (0, 5, 20, 39):
            vector = cost.costs_ending_at(end)
            expected = np.array([cost(start, end) for start in range(end + 1)])
            np.testing.assert_allclose(vector, expected, atol=1e-9)

    def test_cluster_cost_matrix_upper_triangular(self):
        matrix = cluster_cost_matrix(np.array([1.0, 2.0, 10.0]))
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 0.0
        assert matrix[0, 2] > matrix[0, 1]


class TestDynamicProgramming:
    def test_well_separated_clusters_recovered(self):
        frequencies = np.array([1.0, 2.0, 3.0, 100.0, 101.0, 102.0, 1000.0])
        result = dynamic_programming(frequencies, 3)
        labels = result.assignment.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[6] not in (labels[0], labels[3])

    def test_more_buckets_than_elements_gives_zero_cost(self):
        frequencies = np.array([4.0, 9.0, 1.0])
        result = dynamic_programming(frequencies, 10)
        assert result.cost == pytest.approx(0.0)
        assert estimation_error(frequencies, result.assignment) == pytest.approx(0.0)

    def test_single_bucket_cost_is_total_deviation(self):
        frequencies = np.array([0.0, 10.0])
        result = dynamic_programming(frequencies, 1)
        assert result.cost == pytest.approx(10.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            dynamic_programming(np.array([]), 2)
        with pytest.raises(ValueError):
            dynamic_programming(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            dynamic_programming(np.array([1.0]), 2, method="alien")

    @pytest.mark.parametrize("method", ["quadratic", "smawk", "divide_conquer"])
    def test_all_methods_agree_for_median_center(self, method, rng):
        frequencies = rng.integers(0, 100, size=60).astype(float)
        reference = dynamic_programming(
            frequencies, 6, center="median", method="quadratic"
        )
        result = dynamic_programming(frequencies, 6, center="median", method=method)
        assert result.cost == pytest.approx(reference.cost)

    def test_fast_methods_rejected_for_mean_center(self, rng):
        frequencies = rng.integers(0, 100, size=20).astype(float)
        with pytest.raises(ValueError):
            dynamic_programming(frequencies, 3, center="mean", method="smawk")
        with pytest.raises(ValueError):
            dynamic_programming(frequencies, 3, center="mean", method="divide_conquer")

    def test_matches_exhaustive_contiguous_enumeration(self, rng):
        for _ in range(5):
            frequencies = rng.integers(0, 30, size=8).astype(float)
            result = dynamic_programming(frequencies, 3)
            assert result.cost == pytest.approx(
                contiguous_optimum(frequencies, 3), abs=1e-9
            )
            # ... and never beats the unrestricted global optimum.
            _, best_value = solve_exact_enumeration(frequencies, None, 3, lam=1.0)
            assert result.cost >= best_value - 1e-9

    def test_mean_center_contiguity_counterexample(self):
        # The optimal mean-centre partition is NOT always contiguous in
        # sorted order (unlike k-median): here the global optimum puts the
        # outlier 21 in with the low bucket, skipping over the 17s.  The DP
        # must return the best *contiguous* split — this pins both values
        # so the gap is a documented property, not a flaky surprise.
        frequencies = np.array([0.0, 11.0, 11.0, 11.0, 17.0, 17.0, 21.0])
        result = dynamic_programming(frequencies, 2)
        assert result.cost == pytest.approx(131.0 / 6.0)  # {0,11,11,11}|{17,17,21}
        _, best_value = solve_exact_enumeration(frequencies, None, 2, lam=1.0)
        assert best_value == pytest.approx(21.6)  # {0,11,11,11,21}|{17,17}

    def test_reported_cost_matches_assignment(self, rng):
        frequencies = rng.integers(0, 1000, size=40).astype(float)
        result = dynamic_programming(frequencies, 5)
        assert result.cost == pytest.approx(
            estimation_error(frequencies, result.assignment)
        )

    def test_duplicate_frequencies_handled(self):
        frequencies = np.array([5.0] * 10 + [50.0] * 10)
        result = dynamic_programming(frequencies, 2)
        assert result.cost == pytest.approx(0.0)

    def test_median_variant_lower_or_equal_on_kmedian_objective(self, rng):
        frequencies = rng.integers(0, 100, size=30).astype(float)
        median_result = dynamic_programming(frequencies, 4, center="median")
        assert median_result.cost >= 0.0
        assert median_result.assignment.num_elements == 30

    def test_auto_method_selects_smawk_for_large_median_inputs(self, rng):
        frequencies = rng.integers(0, 1000, size=300).astype(float)
        result = dynamic_programming(frequencies, 8, center="median", method="auto")
        assert result.method == "smawk"
        reference = dynamic_programming(
            frequencies, 8, center="median", method="quadratic"
        )
        assert result.cost == pytest.approx(reference.cost)

    def test_auto_method_stays_quadratic_for_mean_center(self, rng):
        frequencies = rng.integers(0, 1000, size=300).astype(float)
        result = dynamic_programming(frequencies, 4, center="mean", method="auto")
        assert result.method == "quadratic"


@given(
    frequencies=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=9
    ),
    num_buckets=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_dp_is_contiguous_optimal_property(frequencies, num_buckets):
    """The DP cost equals the optimum over contiguous sorted partitions —
    its actual search space — and never beats the unrestricted global
    optimum.  (Under the mean centre the two can differ: see
    ``test_mean_center_contiguity_counterexample``.)
    """
    frequencies = np.array(frequencies, dtype=float)
    result = dynamic_programming(frequencies, num_buckets)
    assert result.cost == pytest.approx(
        contiguous_optimum(frequencies, num_buckets), abs=1e-9
    )
    _, best_value = solve_exact_enumeration(frequencies, None, num_buckets, lam=1.0)
    assert result.cost >= best_value - 1e-9


@given(
    frequencies=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=8
    ),
    num_buckets=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_median_dp_is_globally_optimal_property(frequencies, num_buckets):
    """For the k-median variant contiguity does hold, so the DP really is
    the unrestricted global optimum over all ``b^n`` labelings.
    """
    values = np.array(frequencies, dtype=float)
    result = dynamic_programming(values, num_buckets, center="median")
    n = len(values)
    best = float("inf")
    for labels in itertools.product(range(min(num_buckets, n)), repeat=n):
        labels = np.array(labels)
        total = 0.0
        for bucket in range(num_buckets):
            members = values[labels == bucket]
            if members.size:
                total += float(np.abs(members - np.median(members)).sum())
        best = min(best, total)
    assert result.cost == pytest.approx(best, abs=1e-9)


@given(
    frequencies=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=2, max_size=120
    ),
    num_buckets=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_smawk_and_quadratic_layers_agree_property(frequencies, num_buckets):
    """The O(nb) SMAWK formulation matches the O(n^2 b) reference DP.

    Exactness of the fast layers requires the Monge condition, which holds
    for the median-centre cost.
    """
    frequencies = np.array(frequencies, dtype=float)
    fast = dynamic_programming(frequencies, num_buckets, center="median", method="smawk")
    slow = dynamic_programming(
        frequencies, num_buckets, center="median", method="quadratic"
    )
    assert fast.cost == pytest.approx(slow.cost, abs=1e-9)
