"""Tests for the MILP reformulation (Theorem 1) and its branch-and-bound solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.milp import MilpModel, solve_exact_enumeration, solve_milp
from repro.optimize.objective import BucketAssignment, evaluate_assignment


class TestMilpModel:
    def test_variable_counts_match_formulation(self):
        model = MilpModel(np.array([1.0, 2.0, 3.0]), None, num_buckets=2, lam=1.0)
        n, b = 3, 2
        assert model.num_z == n * b
        assert model.num_e == n * b
        assert model.num_theta == n * n * b
        assert model.num_delta == n * n * b
        assert model.num_variables == 2 * n * b + 2 * n * n * b

    def test_constraint_counts_match_formulation(self):
        model = MilpModel(np.array([1.0, 2.0, 3.0]), None, num_buckets=2, lam=0.5)
        n, b = 3, 2
        assert model.A_eq.shape == (n, model.num_variables)
        # 2nb mean-linearization rows + 6 n^2 b big-M / product rows.
        assert model.A_ub.shape[0] == 2 * n * b + 6 * n * n * b

    def test_big_m_upper_bounds_frequencies(self):
        frequencies = np.array([3.0, 7.0, 11.0])
        model = MilpModel(frequencies, None, num_buckets=2, lam=1.0)
        assert model.big_m >= frequencies.max()

    def test_relaxation_lower_bounds_integral_objective(self, small_frequencies, small_features):
        model = MilpModel(small_frequencies[:5], small_features[:5], num_buckets=2, lam=0.5)
        relaxation = model.solve_relaxation({})
        assert relaxation.success
        _, best_value = solve_exact_enumeration(
            small_frequencies[:5], small_features[:5], 2, 0.5
        )
        assert relaxation.fun <= best_value + 1e-6

    def test_objective_of_assignment_matches_problem_one(self, small_frequencies, small_features):
        model = MilpModel(small_frequencies, small_features, num_buckets=3, lam=0.4)
        assignment = BucketAssignment(labels=[0, 0, 1, 1, 2, 2, 0, 1], num_buckets=3)
        expected = evaluate_assignment(
            small_frequencies, small_features, assignment, 0.4
        ).overall
        assert model.objective_of_assignment(assignment) == pytest.approx(expected)


class TestSolveMilp:
    def test_lambda_one_small_instance_solved_to_optimality(self):
        frequencies = np.array([1.0, 2.0, 10.0, 11.0, 50.0])
        result = solve_milp(frequencies, None, num_buckets=2, lam=1.0, time_limit=30)
        _, best_value = solve_exact_enumeration(frequencies, None, 2, 1.0)
        assert result.objective.overall == pytest.approx(best_value, abs=1e-6)
        assert result.status == "optimal"
        assert result.gap <= 1e-6 or result.objective.overall == 0.0

    def test_general_lambda_matches_enumeration(self):
        frequencies = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        features = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0], [5.0, 5.1]]
        )
        result = solve_milp(
            frequencies, features, num_buckets=2, lam=0.5, time_limit=60, random_state=0
        )
        _, best_value = solve_exact_enumeration(frequencies, features, 2, 0.5)
        assert result.objective.overall == pytest.approx(best_value, abs=1e-6)

    def test_lower_bound_never_exceeds_incumbent(self):
        frequencies = np.array([4.0, 5.0, 20.0, 21.0])
        result = solve_milp(frequencies, None, num_buckets=2, lam=1.0, time_limit=30)
        assert result.lower_bound <= result.objective.overall + 1e-9

    def test_warm_start_disabled_still_solves(self):
        frequencies = np.array([1.0, 9.0, 10.0])
        result = solve_milp(
            frequencies, None, num_buckets=2, lam=1.0, warm_start=False, time_limit=30
        )
        _, best_value = solve_exact_enumeration(frequencies, None, 2, 1.0)
        assert result.objective.overall == pytest.approx(best_value, abs=1e-6)

    def test_node_limit_returns_feasible_solution(self):
        frequencies = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 50.0])
        result = solve_milp(
            frequencies, None, num_buckets=3, lam=1.0, node_limit=1, time_limit=5
        )
        # Even when the search is truncated, the warm-started incumbent is valid.
        assert result.assignment.num_elements == 7
        assert result.objective.overall >= result.lower_bound - 1e-9

    def test_enumeration_guard_on_large_inputs(self):
        with pytest.raises(ValueError):
            solve_exact_enumeration(np.arange(20, dtype=float), None, 3)


@given(
    seed=st.integers(min_value=0, max_value=200),
    num_buckets=st.integers(min_value=2, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_milp_matches_enumeration_property(seed, num_buckets):
    """Branch-and-bound finds the global optimum on random tiny instances."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 6))
    frequencies = rng.integers(0, 30, size=n).astype(float)
    features = rng.normal(size=(n, 2))
    result = solve_milp(
        frequencies, features, num_buckets=num_buckets, lam=0.5, time_limit=30, random_state=seed
    )
    _, best_value = solve_exact_enumeration(frequencies, features, num_buckets, 0.5)
    assert result.objective.overall == pytest.approx(best_value, abs=1e-5)
