"""Tests for the BCD initialization strategies."""

import numpy as np
import pytest

from repro.optimize.initialization import (
    heavy_hitter_assignment,
    initialize_assignment,
    random_assignment,
    sorted_assignment,
)
from repro.optimize.objective import estimation_error


class TestRandomAssignment:
    def test_labels_within_range(self, rng):
        assignment = random_assignment(50, 7, rng=rng)
        assert assignment.num_elements == 50
        assert assignment.labels.min() >= 0
        assert assignment.labels.max() < 7

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            random_assignment(0, 3)


class TestSortedAssignment:
    def test_buckets_are_frequency_contiguous(self):
        frequencies = np.array([50.0, 1.0, 2.0, 51.0, 3.0, 52.0])
        assignment = sorted_assignment(frequencies, 2)
        # The three smallest frequencies share a bucket, the three largest the other.
        small_bucket = assignment.labels[1]
        assert assignment.labels[2] == small_bucket
        assert assignment.labels[4] == small_bucket
        large_bucket = assignment.labels[0]
        assert assignment.labels[3] == large_bucket
        assert assignment.labels[5] == large_bucket
        assert small_bucket != large_bucket

    def test_bucket_sizes_balanced(self):
        assignment = sorted_assignment(np.arange(10, dtype=float), 3)
        sizes = assignment.bucket_sizes()
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_better_than_single_bucket_for_spread_frequencies(self):
        frequencies = np.array([1.0, 2.0, 100.0, 101.0, 1000.0, 1001.0])
        sorted_init = sorted_assignment(frequencies, 3)
        single = sorted_assignment(frequencies, 1)
        assert estimation_error(frequencies, sorted_init) < estimation_error(
            frequencies, single
        )


class TestHeavyHitterAssignment:
    def test_top_elements_isolated(self, rng):
        frequencies = np.array([1.0, 2.0, 3.0, 100.0, 200.0])
        assignment = heavy_hitter_assignment(frequencies, 3, rng=rng)
        # The two heaviest elements get buckets of their own.
        assert assignment.labels[3] != 0
        assert assignment.labels[4] != 0
        assert assignment.labels[3] != assignment.labels[4]
        # Light elements share the catch-all bucket 0.
        assert assignment.labels[0] == assignment.labels[1] == assignment.labels[2] == 0

    def test_more_buckets_than_elements(self, rng):
        frequencies = np.array([5.0, 1.0])
        assignment = heavy_hitter_assignment(frequencies, 10, rng=rng)
        assert assignment.num_buckets == 10
        assert len(set(assignment.labels.tolist())) == 2


class TestInitializeAssignment:
    @pytest.mark.parametrize("strategy", ["random", "sorted", "heavy_hitter", "dp"])
    def test_all_strategies_produce_valid_assignments(self, strategy, rng):
        frequencies = np.array([1.0, 2.0, 3.0, 10.0, 20.0, 30.0])
        assignment = initialize_assignment(frequencies, 3, strategy=strategy, rng=rng)
        assert assignment.num_elements == 6
        assert assignment.num_buckets == 3
        assert np.all((assignment.labels >= 0) & (assignment.labels < 3))

    def test_dp_strategy_is_optimal_for_lambda_one(self):
        frequencies = np.array([1.0, 1.0, 10.0, 10.0, 100.0, 100.0])
        assignment = initialize_assignment(frequencies, 3, strategy="dp")
        assert estimation_error(frequencies, assignment) == pytest.approx(0.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            initialize_assignment(np.array([1.0]), 1, strategy="quantum")
