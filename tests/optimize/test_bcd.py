"""Tests for the block coordinate descent (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.bcd import block_coordinate_descent
from repro.optimize.dp import dynamic_programming
from repro.optimize.initialization import random_assignment
from repro.optimize.objective import (
    BucketAssignment,
    evaluate_assignment,
    estimation_error,
)


class TestBcdBasics:
    def test_returns_valid_assignment(self, small_frequencies, small_features):
        result = block_coordinate_descent(
            small_frequencies, small_features, num_buckets=3, lam=0.5, random_state=0
        )
        assignment = result.assignment
        assert assignment.num_elements == 8
        assert np.all((assignment.labels >= 0) & (assignment.labels < 3))

    def test_objective_matches_reported_assignment(self, small_frequencies, small_features):
        result = block_coordinate_descent(
            small_frequencies, small_features, num_buckets=3, lam=0.5, random_state=0
        )
        recomputed = evaluate_assignment(
            small_frequencies, small_features, result.assignment, 0.5
        )
        assert result.objective.overall == pytest.approx(recomputed.overall)

    def test_history_is_monotone_non_increasing(self, small_frequencies, small_features):
        result = block_coordinate_descent(
            small_frequencies, small_features, num_buckets=3, lam=0.5, random_state=1
        )
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-9)

    def test_converged_flag_set_when_improvement_stalls(self, small_frequencies):
        result = block_coordinate_descent(
            small_frequencies, None, num_buckets=3, lam=1.0, max_iterations=50, random_state=2
        )
        assert result.converged
        assert result.iterations <= 50

    def test_iteration_budget_respected(self, small_frequencies, small_features):
        result = block_coordinate_descent(
            small_frequencies,
            small_features,
            num_buckets=3,
            lam=0.5,
            max_iterations=1,
            random_state=3,
        )
        assert result.iterations == 1

    def test_invalid_parameters_rejected(self, small_frequencies):
        with pytest.raises(ValueError):
            block_coordinate_descent(small_frequencies, num_buckets=2, max_iterations=0)
        with pytest.raises(ValueError):
            block_coordinate_descent(small_frequencies, num_buckets=2, num_restarts=0)
        with pytest.raises(ValueError):
            block_coordinate_descent(small_frequencies, num_buckets=2, lam=-0.1)


class TestBcdQuality:
    def test_clusters_obvious_frequency_groups(self):
        frequencies = np.array([1.0, 2.0, 3.0, 100.0, 101.0, 102.0])
        result = block_coordinate_descent(
            frequencies, None, num_buckets=2, lam=1.0, random_state=0
        )
        labels = result.assignment.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_improves_over_random_initialization(self, rng):
        frequencies = rng.integers(0, 200, size=60).astype(float)
        features = rng.normal(size=(60, 2))
        initial = random_assignment(60, 5, rng=np.random.default_rng(0))
        initial_value = evaluate_assignment(frequencies, features, initial, 0.5).overall
        result = block_coordinate_descent(
            frequencies,
            features,
            num_buckets=5,
            lam=0.5,
            initial_assignment=initial,
            random_state=0,
        )
        assert result.objective.overall <= initial_value + 1e-9

    def test_near_optimal_versus_dp_at_lambda_one(self, rng):
        frequencies = rng.integers(0, 500, size=80).astype(float)
        optimal = dynamic_programming(frequencies, 6).cost
        result = block_coordinate_descent(
            frequencies, None, num_buckets=6, lam=1.0, num_restarts=3, random_state=0
        )
        assert result.objective.estimation >= optimal - 1e-9
        # BCD is a local method, but on 1-D problems it lands close to the optimum.
        assert result.objective.estimation <= 1.5 * optimal + 1e-6

    def test_lambda_zero_groups_by_features(self):
        frequencies = np.array([1.0, 100.0, 1.0, 100.0])
        features = np.array([[0.0, 0.0], [0.1, 0.1], [10.0, 10.0], [10.1, 10.1]])
        result = block_coordinate_descent(
            frequencies, features, num_buckets=2, lam=0.0, random_state=0
        )
        labels = result.assignment.labels
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_multiple_restarts_never_hurt(self, rng):
        frequencies = rng.integers(0, 300, size=40).astype(float)
        features = rng.normal(size=(40, 2))
        single = block_coordinate_descent(
            frequencies, features, num_buckets=4, lam=0.5, num_restarts=1, random_state=7
        )
        multi = block_coordinate_descent(
            frequencies, features, num_buckets=4, lam=0.5, num_restarts=4, random_state=7
        )
        assert multi.objective.overall <= single.objective.overall + 1e-9
        assert multi.num_restarts == 4

    @pytest.mark.parametrize("strategy", ["random", "sorted", "heavy_hitter", "dp"])
    def test_all_initialization_strategies_work(self, strategy, small_frequencies, small_features):
        result = block_coordinate_descent(
            small_frequencies,
            small_features,
            num_buckets=3,
            lam=0.5,
            initialization=strategy,
            random_state=0,
        )
        assert result.assignment.num_elements == 8


@given(
    seed=st.integers(min_value=0, max_value=300),
    num_buckets=st.integers(min_value=1, max_value=5),
    lam=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_bcd_objective_never_worse_than_initialization_property(seed, num_buckets, lam):
    """Each BCD sweep is greedy per element, so the final objective cannot
    exceed the initial one."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 20))
    frequencies = rng.integers(0, 100, size=n).astype(float)
    features = rng.normal(size=(n, 2))
    initial = random_assignment(n, num_buckets, rng=rng)
    initial_value = evaluate_assignment(frequencies, features, initial, lam).overall
    result = block_coordinate_descent(
        frequencies,
        features,
        num_buckets=num_buckets,
        lam=lam,
        initial_assignment=initial,
        random_state=seed,
    )
    assert result.objective.overall <= initial_value + 1e-6
