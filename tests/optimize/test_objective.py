"""Tests for the Problem (1) objective and the assignment container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    estimation_error,
    evaluate_assignment,
    overall_error,
    pairwise_squared_distances,
    similarity_error,
    validate_inputs,
)


class TestBucketAssignment:
    def test_one_hot_roundtrip(self):
        assignment = BucketAssignment(labels=[0, 2, 1, 2], num_buckets=3)
        Z = assignment.one_hot()
        assert Z.shape == (4, 3)
        assert np.all(Z.sum(axis=1) == 1)
        recovered = BucketAssignment.from_one_hot(Z)
        np.testing.assert_array_equal(recovered.labels, assignment.labels)

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValueError):
            BucketAssignment(labels=[0, 3], num_buckets=3)
        with pytest.raises(ValueError):
            BucketAssignment(labels=[-1], num_buckets=2)
        with pytest.raises(ValueError):
            BucketAssignment(labels=[0], num_buckets=0)

    def test_from_one_hot_validates_rows(self):
        with pytest.raises(ValueError):
            BucketAssignment.from_one_hot(np.array([[1, 1], [0, 1]]))

    def test_bucket_members_and_sizes(self):
        assignment = BucketAssignment(labels=[0, 1, 0, 2], num_buckets=4)
        np.testing.assert_array_equal(assignment.bucket_members(0), [0, 2])
        np.testing.assert_array_equal(assignment.bucket_sizes(), [2, 1, 1, 0])

    def test_bucket_means_handle_empty_buckets(self):
        assignment = BucketAssignment(labels=[0, 0, 2], num_buckets=3)
        means = assignment.bucket_means([2.0, 4.0, 10.0])
        np.testing.assert_allclose(means, [3.0, 0.0, 10.0])

    def test_copy_is_independent(self):
        assignment = BucketAssignment(labels=[0, 1], num_buckets=2)
        clone = assignment.copy()
        clone.labels[0] = 1
        assert assignment.labels[0] == 0


class TestEstimationError:
    def test_matches_hand_computation(self):
        frequencies = np.array([1.0, 3.0, 10.0])
        assignment = BucketAssignment(labels=[0, 0, 1], num_buckets=2)
        # Bucket 0 mean = 2 -> errors 1 + 1; bucket 1 exact.
        assert estimation_error(frequencies, assignment) == pytest.approx(2.0)

    def test_per_element_scaling(self):
        frequencies = np.array([1.0, 3.0, 10.0])
        assignment = BucketAssignment(labels=[0, 0, 1], num_buckets=2)
        assert estimation_error(frequencies, assignment, per_element=True) == pytest.approx(2 / 3)

    def test_zero_when_each_element_isolated(self):
        frequencies = np.array([5.0, 9.0, 2.0])
        assignment = BucketAssignment(labels=[0, 1, 2], num_buckets=3)
        assert estimation_error(frequencies, assignment) == 0.0

    def test_zero_when_frequencies_equal(self):
        frequencies = np.full(6, 7.0)
        assignment = BucketAssignment(labels=[0] * 6, num_buckets=2)
        assert estimation_error(frequencies, assignment) == 0.0


class TestSimilarityError:
    def test_matches_pairwise_sum(self):
        features = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0], [3.0, 3.0]])
        assignment = BucketAssignment(labels=[0, 0, 0, 1], num_buckets=2)
        distances = pairwise_squared_distances(features)
        members = [0, 1, 2]
        expected = sum(distances[i, k] for i in members for k in members)
        assert similarity_error(features, assignment) == pytest.approx(expected)

    def test_zero_without_features(self):
        assignment = BucketAssignment(labels=[0, 0], num_buckets=1)
        assert similarity_error(np.zeros((2, 0)), assignment) == 0.0

    def test_singleton_buckets_contribute_nothing(self):
        features = np.array([[1.0], [2.0], [3.0]])
        assignment = BucketAssignment(labels=[0, 1, 2], num_buckets=3)
        assert similarity_error(features, assignment) == 0.0

    def test_per_pair_scaling(self):
        features = np.array([[0.0], [2.0]])
        assignment = BucketAssignment(labels=[0, 0], num_buckets=1)
        # Ordered pairs: (0,0), (0,1), (1,0), (1,1) -> total 8, 4 pairs.
        assert similarity_error(features, assignment, per_pair=True) == pytest.approx(2.0)


class TestOverallError:
    def test_convex_combination(self, small_frequencies, small_features):
        assignment = BucketAssignment(
            labels=[0, 0, 0, 1, 1, 1, 2, 2], num_buckets=3
        )
        value = evaluate_assignment(small_frequencies, small_features, assignment, 0.3)
        assert isinstance(value, ObjectiveValue)
        assert value.overall == pytest.approx(
            0.3 * value.estimation + 0.7 * value.similarity
        )
        assert overall_error(
            small_frequencies, small_features, assignment, 0.3
        ) == pytest.approx(value.overall)

    def test_lambda_one_ignores_similarity(self, small_frequencies, small_features):
        assignment = BucketAssignment(labels=[0] * 8, num_buckets=2)
        value = evaluate_assignment(small_frequencies, small_features, assignment, 1.0)
        assert value.overall == pytest.approx(value.estimation)


class TestValidateInputs:
    def test_rejects_bad_shapes_and_values(self):
        with pytest.raises(ValueError):
            validate_inputs(np.array([]), None, 2, 0.5)
        with pytest.raises(ValueError):
            validate_inputs(np.array([-1.0]), None, 2, 0.5)
        with pytest.raises(ValueError):
            validate_inputs(np.array([1.0]), np.zeros((2, 2)), 2, 0.5)
        with pytest.raises(ValueError):
            validate_inputs(np.array([1.0]), None, 0, 0.5)
        with pytest.raises(ValueError):
            validate_inputs(np.array([1.0]), None, 2, 1.5)

    def test_one_dimensional_features_promoted(self):
        _, features, _, _ = validate_inputs(np.array([1.0, 2.0]), np.array([3.0, 4.0]), 2, 0.5)
        assert features.shape == (2, 1)


class TestPairwiseSquaredDistances:
    def test_matches_manual_computation(self):
        features = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_squared_distances(features)
        np.testing.assert_allclose(distances, [[0.0, 25.0], [25.0, 0.0]])

    def test_never_negative(self, rng):
        features = rng.normal(size=(30, 5))
        assert (pairwise_squared_distances(features) >= 0).all()


@given(
    labels=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=25),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_errors_invariant_under_bucket_relabeling(labels, seed):
    """Renaming buckets (a permutation of the bucket indices) changes nothing."""
    rng = np.random.default_rng(seed)
    frequencies = rng.integers(0, 50, size=len(labels)).astype(float)
    features = rng.normal(size=(len(labels), 2))
    permutation = rng.permutation(4)
    original = BucketAssignment(labels=labels, num_buckets=4)
    relabeled = BucketAssignment(labels=permutation[np.asarray(labels)], num_buckets=4)
    assert estimation_error(frequencies, original) == pytest.approx(
        estimation_error(frequencies, relabeled)
    )
    assert similarity_error(features, original) == pytest.approx(
        similarity_error(features, relabeled)
    )


@given(
    labels=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=25),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_singleton_buckets_have_zero_error_and_nonnegative_otherwise(labels, seed):
    """Every error term is non-negative, and isolating all elements zeroes both."""
    rng = np.random.default_rng(seed)
    frequencies = rng.integers(0, 50, size=len(labels)).astype(float)
    features = rng.normal(size=(len(labels), 2))
    assignment = BucketAssignment(labels=labels, num_buckets=4)
    assert estimation_error(frequencies, assignment) >= 0.0
    assert similarity_error(features, assignment) >= 0.0
    singleton = BucketAssignment(
        labels=np.arange(len(labels)), num_buckets=len(labels)
    )
    assert estimation_error(frequencies, singleton) == pytest.approx(0.0)
    assert similarity_error(features, singleton) == pytest.approx(0.0)
