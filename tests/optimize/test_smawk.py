"""Tests for the SMAWK row-minima algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.smawk import smawk_row_minima


def brute_force_row_minima(matrix):
    """Leftmost column index of each row's minimum."""
    return [int(np.argmin(row)) for row in matrix]


def random_totally_monotone_matrix(num_rows, num_cols, rng):
    """Build a totally monotone matrix from a Monge (concave QI) construction.

    ``M[i][j] = (a_i - b_j)^2`` with ``a`` and ``b`` sorted is a Monge matrix,
    and every Monge matrix is totally monotone.
    """
    a = np.sort(rng.uniform(0, 100, size=num_rows))
    b = np.sort(rng.uniform(0, 100, size=num_cols))
    return (a[:, None] - b[None, :]) ** 2


class TestSmawk:
    def test_single_row_and_column(self):
        matrix = np.array([[3.0, 1.0, 2.0]])
        assert smawk_row_minima(1, 3, lambda i, j: matrix[i, j]) == [1]
        column = np.array([[5.0], [2.0], [9.0]])
        assert smawk_row_minima(3, 1, lambda i, j: column[i, j]) == [0, 0, 0]

    def test_small_monge_matrix(self):
        matrix = np.array(
            [
                [10.0, 17.0, 24.0],
                [11.0, 16.0, 22.0],
                [15.0, 15.0, 19.0],
            ]
        )
        assert smawk_row_minima(3, 3, lambda i, j: matrix[i, j]) == [0, 0, 0]

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            smawk_row_minima(0, 3, lambda i, j: 0.0)
        with pytest.raises(ValueError):
            smawk_row_minima(3, 0, lambda i, j: 0.0)

    def test_matches_brute_force_on_random_monge_matrices(self, rng):
        for _ in range(20):
            num_rows = int(rng.integers(1, 40))
            num_cols = int(rng.integers(1, 40))
            matrix = random_totally_monotone_matrix(num_rows, num_cols, rng)
            expected = brute_force_row_minima(matrix)
            actual = smawk_row_minima(num_rows, num_cols, lambda i, j: matrix[i, j])
            assert actual == expected

    def test_lookup_call_count_is_subquadratic(self):
        rng = np.random.default_rng(0)
        n = 256
        matrix = random_totally_monotone_matrix(n, n, rng)
        calls = 0

        def lookup(i, j):
            nonlocal calls
            calls += 1
            return matrix[i, j]

        smawk_row_minima(n, n, lookup)
        # SMAWK needs O(n) evaluations (with a moderate constant); a full
        # scan would need n^2 = 65536.
        assert calls < 16 * n


@given(
    num_rows=st.integers(min_value=1, max_value=30),
    num_cols=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_smawk_property_against_brute_force(num_rows, num_cols, seed):
    rng = np.random.default_rng(seed)
    matrix = random_totally_monotone_matrix(num_rows, num_cols, rng)
    expected = brute_force_row_minima(matrix)
    actual = smawk_row_minima(num_rows, num_cols, lambda i, j: matrix[i, j])
    assert actual == expected
