"""Tests for the unified solver dispatch."""

import numpy as np
import pytest

from repro.optimize.solvers import learn_hashing_scheme


class TestLearnHashingScheme:
    def test_bcd_dispatch(self, small_frequencies, small_features):
        result = learn_hashing_scheme(
            small_frequencies, small_features, num_buckets=3, lam=0.5, solver="bcd", random_state=0
        )
        assert result.solver == "bcd"
        assert result.assignment.num_elements == 8
        assert result.details.iterations >= 1

    def test_dp_dispatch_evaluates_objective_at_requested_lambda(
        self, small_frequencies, small_features
    ):
        result = learn_hashing_scheme(
            small_frequencies, small_features, num_buckets=3, lam=0.5, solver="dp"
        )
        assert result.solver == "dp"
        # The dp solver ignores lambda internally but the reported objective
        # is evaluated at the requested lambda.
        assert result.objective.lam == 0.5
        assert result.objective.similarity >= 0.0

    def test_milp_dispatch(self):
        frequencies = np.array([1.0, 2.0, 10.0, 11.0])
        result = learn_hashing_scheme(
            frequencies, None, num_buckets=2, lam=1.0, solver="milp", time_limit=20
        )
        assert result.solver == "milp"
        assert result.objective.estimation == pytest.approx(2.0, abs=1e-6)

    def test_unknown_solver_rejected(self, small_frequencies):
        with pytest.raises(ValueError):
            learn_hashing_scheme(small_frequencies, None, num_buckets=2, solver="simplex")

    def test_solver_options_forwarded(self, small_frequencies, small_features):
        result = learn_hashing_scheme(
            small_frequencies,
            small_features,
            num_buckets=3,
            lam=0.5,
            solver="bcd",
            random_state=0,
            num_restarts=2,
        )
        assert result.details.num_restarts == 2

    def test_dp_and_bcd_agree_on_trivial_problem(self):
        frequencies = np.array([5.0, 5.0, 50.0, 50.0])
        dp = learn_hashing_scheme(frequencies, None, num_buckets=2, lam=1.0, solver="dp")
        bcd = learn_hashing_scheme(
            frequencies, None, num_buckets=2, lam=1.0, solver="bcd", random_state=0
        )
        assert dp.objective.estimation == pytest.approx(0.0)
        assert bcd.objective.estimation == pytest.approx(0.0)
