"""Tests for the incremental bucket statistics behind Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.bucket_stats import BucketStats
from repro.optimize.objective import (
    BucketAssignment,
    estimation_error,
    evaluate_assignment,
    similarity_error,
)


def build_stats(frequencies, features, labels, num_buckets=3):
    assignment = BucketAssignment(labels=labels, num_buckets=num_buckets)
    return BucketStats(np.asarray(frequencies, float), np.asarray(features, float), assignment)


class TestInitialization:
    def test_initial_errors_match_objective_module(self, small_frequencies, small_features):
        labels = [0, 0, 1, 1, 2, 2, 0, 1]
        stats = build_stats(small_frequencies, small_features, labels)
        assignment = BucketAssignment(labels=labels, num_buckets=3)
        assert stats.estimation_errors.sum() == pytest.approx(
            estimation_error(small_frequencies, assignment)
        )
        assert stats.similarity_errors.sum() == pytest.approx(
            similarity_error(small_features, assignment)
        )

    def test_total_error_is_convex_combination(self, small_frequencies, small_features):
        labels = [0, 1, 2, 0, 1, 2, 0, 1]
        stats = build_stats(small_frequencies, small_features, labels)
        value = evaluate_assignment(
            small_frequencies,
            small_features,
            BucketAssignment(labels=labels, num_buckets=3),
            0.4,
        )
        assert stats.total_error(0.4) == pytest.approx(value.overall)

    def test_mean_of_empty_bucket_is_zero(self):
        stats = build_stats([1.0, 2.0], [[0.0], [1.0]], [0, 0], num_buckets=2)
        assert stats.mean(1) == 0.0

    def test_featureless_inputs_supported(self):
        stats = build_stats([1.0, 5.0, 9.0], np.zeros((3, 0)), [0, 0, 1], num_buckets=2)
        assert stats.similarity_errors.sum() == 0.0
        assert stats.estimation_errors[0] == pytest.approx(4.0)


class TestMoves:
    def test_remove_then_add_restores_state(self, small_frequencies, small_features):
        labels = [0, 0, 1, 1, 2, 2, 0, 1]
        stats = build_stats(small_frequencies, small_features, labels)
        before_est = stats.estimation_errors.copy()
        before_sim = stats.similarity_errors.copy()
        bucket = stats.remove(3)
        stats.add(3, bucket)
        np.testing.assert_allclose(stats.estimation_errors, before_est)
        np.testing.assert_allclose(stats.similarity_errors, before_sim)

    def test_add_requires_prior_removal(self, small_frequencies, small_features):
        stats = build_stats(small_frequencies, small_features, [0] * 8)
        with pytest.raises(ValueError):
            stats.add(0, 1)

    def test_snapshot_fails_with_unassigned_element(self, small_frequencies, small_features):
        stats = build_stats(small_frequencies, small_features, [0] * 8)
        stats.remove(0)
        with pytest.raises(RuntimeError):
            stats.to_assignment()

    def test_hypothetical_errors_match_actual_move(self, small_frequencies, small_features):
        labels = [0, 0, 1, 1, 2, 2, 0, 1]
        stats = build_stats(small_frequencies, small_features, labels)
        stats.remove(5)
        predicted_est = stats.estimation_error_with(5, 0)
        predicted_sim = stats.similarity_error_with(5, 0)
        stats.add(5, 0)
        assert stats.estimation_errors[0] == pytest.approx(predicted_est)
        assert stats.similarity_errors[0] == pytest.approx(predicted_sim)

    def test_marginal_cost_equals_objective_delta(self, small_frequencies, small_features):
        labels = [0, 0, 1, 1, 2, 2, 0, 1]
        lam = 0.6
        stats = build_stats(small_frequencies, small_features, labels)
        stats.remove(2)
        base = stats.total_error(lam)
        marginal = stats.marginal_cost(2, 2, lam)
        stats.add(2, 2)
        assert stats.total_error(lam) == pytest.approx(base + marginal)

    def test_to_assignment_reflects_moves(self, small_frequencies, small_features):
        stats = build_stats(small_frequencies, small_features, [0] * 8)
        stats.remove(7)
        stats.add(7, 2)
        assignment = stats.to_assignment()
        assert assignment.labels[7] == 2


@given(
    seed=st.integers(min_value=0, max_value=500),
    num_moves=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_incremental_errors_stay_consistent_after_random_moves(seed, num_moves):
    """After arbitrary move sequences the incremental stats equal a recompute."""
    rng = np.random.default_rng(seed)
    n, b = 12, 4
    frequencies = rng.integers(0, 40, size=n).astype(float)
    features = rng.normal(size=(n, 3))
    labels = rng.integers(0, b, size=n)
    stats = BucketStats(frequencies, features, BucketAssignment(labels=labels, num_buckets=b))
    for _ in range(num_moves):
        element = int(rng.integers(n))
        stats.remove(element)
        stats.add(element, int(rng.integers(b)))
    assignment = stats.to_assignment()
    assert stats.estimation_errors.sum() == pytest.approx(
        estimation_error(frequencies, assignment)
    )
    assert stats.similarity_errors.sum() == pytest.approx(
        similarity_error(features, assignment)
    )
