"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.stream import Element, Stream, StreamPrefix
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_frequencies() -> np.ndarray:
    """A tiny frequency vector with three clear groups."""
    return np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 50.0, 52.0])


@pytest.fixture
def small_features() -> np.ndarray:
    """Features matching ``small_frequencies``: co-frequent elements are close."""
    return np.array(
        [
            [0.0, 0.0],
            [0.1, 0.0],
            [0.0, 0.1],
            [5.0, 5.0],
            [5.1, 5.0],
            [5.0, 5.1],
            [10.0, 0.0],
            [10.1, 0.0],
        ]
    )


@pytest.fixture
def small_generator() -> SyntheticGenerator:
    """A small synthetic workload (G=4) used across integration-ish tests."""
    return SyntheticGenerator(SyntheticConfig(num_groups=4, fraction_seen=0.5, seed=7))


@pytest.fixture
def small_prefix(small_generator) -> StreamPrefix:
    return small_generator.generate_prefix(200)


@pytest.fixture
def toy_prefix() -> StreamPrefix:
    """A hand-built prefix with known frequencies and 1-D features."""
    elements = {
        "a": Element.with_features("a", [0.0]),
        "b": Element.with_features("b", [0.1]),
        "c": Element.with_features("c", [5.0]),
        "d": Element.with_features("d", [5.1]),
    }
    arrivals = (
        [elements["a"]] * 6
        + [elements["b"]] * 5
        + [elements["c"]] * 1
        + [elements["d"]] * 2
    )
    return StreamPrefix(arrivals=arrivals)


@pytest.fixture
def toy_stream(toy_prefix) -> Stream:
    """A follow-up stream re-using the toy prefix elements plus one unseen."""
    unseen = Element.with_features("e", [5.2])
    arrivals = list(toy_prefix.arrivals) + [unseen] * 3
    return Stream(arrivals=arrivals)
