"""Smoke tests for the top-level package surface."""

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_key_entry_points_importable(self):
        # The names used throughout the README quickstart.
        from repro import (  # noqa: F401
            CountMinSketch,
            OptHashConfig,
            train_opt_hash,
        )
        from repro.streams import SyntheticConfig, SyntheticGenerator  # noqa: F401
        from repro.evaluation import run_error_vs_size, run_lambda_sweep  # noqa: F401

    def test_subpackage_all_exports_resolve(self):
        import repro.evaluation
        import repro.ml
        import repro.optimize
        import repro.sketches
        import repro.streams

        for module in (
            repro.streams,
            repro.sketches,
            repro.ml,
            repro.optimize,
            repro.evaluation,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
