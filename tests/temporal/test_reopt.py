"""Online re-optimization: retrain on fresh counts, hot-swap into a live
session.

The contract under test: a ``key -> count`` table (a drift detector's
buffer, a pane, an exact counter) stands in for a training prefix via
:class:`WeightedPrefix`; :class:`ReOptimizer` re-runs the full learning
phase on it and swaps the result into any target exposing
``hot_swap(spec, estimator, close_old=)`` — with the old estimator
either released or handed back intact for auditing.
"""

import numpy as np
import pytest

import repro
from repro.api import SpecError, SketchSpec
from repro.sketches import ExactCounter
from repro.streams.stream import Element
from repro.temporal import (
    BackgroundReOptimizer,
    DriftDetector,
    ReOptimizer,
    prefix_from_counts,
)
from repro.temporal.reopt import WeightedPrefix

SPEC = repro.OptHashSpec(num_buckets=5, lam=0.5, solver="bcd", classifier="cart", seed=6)


def element_counts(seed=0, universe=60, total=2000):
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(1.3, size=total) % universe
    counts = {}
    for rank in ranks:
        element = Element.with_features(f"key-{rank}", [float(rank)])
        counts[element.key] = counts.get(element.key, 0) + 1
    features = {f"key-{r}": (float(r),) for r in set(ranks.tolist())}
    return counts, features


class TestWeightedPrefix:
    def test_wears_the_prefix_protocol(self):
        counts, features = element_counts()
        prefix = WeightedPrefix(counts, features)
        assert len(prefix) == sum(counts.values())
        assert {e.key for e in prefix.distinct_elements()} == set(counts)
        keys, X, freqs = prefix.training_arrays()
        assert X.shape == (len(counts), 1)
        assert freqs.sum() == sum(counts.values())
        assert dict(zip(keys, freqs)) == {k: float(v) for k, v in counts.items()}

    def test_featureless_counts_train_featureless(self):
        prefix = WeightedPrefix({"a": 3, "b": 1})
        _, X, _ = prefix.training_arrays()
        assert X.shape == (2, 0)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            WeightedPrefix({})
        with pytest.raises(ValueError):
            WeightedPrefix({"a": -1})

    def test_trains_an_actual_scheme(self):
        counts, features = element_counts()
        training = ReOptimizer(SPEC).retrain(counts, features)
        assert training.scheme.num_buckets == SPEC.num_buckets
        # heavy keys answer with their (bucket-averaged) weight
        heavy = max(counts, key=counts.get)
        estimate = training.estimator.estimate_batch(
            [Element.with_features(heavy, features[heavy])]
        )[0]
        assert estimate > 0


class TestPrefixFromCounts:
    def test_accepts_mapping_detector_and_exact_counter(self):
        counts, features = element_counts()
        assert len(prefix_from_counts(counts, features)) == sum(counts.values())

        training = ReOptimizer(SPEC).retrain(counts, features)
        detector = DriftDetector(training.scheme, training)
        detector.observe(
            [Element.with_features(k, features[k]) for k in list(counts)[:40]]
        )
        lifted = prefix_from_counts(detector)
        assert len(lifted) == 40
        # the detector's element features ride along automatically
        _, X, _ = lifted.training_arrays()
        assert X.shape[1] == 1

        counter = ExactCounter()
        counter.update_batch(["a", "a", "b"])
        assert len(prefix_from_counts(counter)) == 3

    def test_rejects_unextractable_inputs(self):
        with pytest.raises(TypeError):
            prefix_from_counts(42)


class TestReOptimizer:
    def test_rejects_non_opt_hash_specs(self):
        with pytest.raises(SpecError):
            ReOptimizer(SketchSpec("count_min", total_buckets=64, depth=1, seed=0))

    def test_reoptimize_swaps_a_session(self):
        counts, features = element_counts(seed=1)
        with repro.open(SPEC, prefix=_as_prefix(counts, features)) as session:
            before = session.estimator
            fresh_counts, fresh_features = element_counts(seed=2)
            result = ReOptimizer(SPEC).reoptimize(
                session, fresh_counts, fresh_features, close_old=False
            )
            assert session.estimator is result.estimator
            assert result.old_estimator is before
            assert session.estimator is not before

    def test_target_without_hot_swap_raises(self):
        counts, features = element_counts()
        with pytest.raises(TypeError):
            ReOptimizer(SPEC).reoptimize(object(), counts, features)

    def test_background_cycle_joins_with_result(self):
        counts, features = element_counts(seed=3)
        with repro.open(SPEC, prefix=_as_prefix(counts, features)) as session:
            background = BackgroundReOptimizer(
                ReOptimizer(SPEC), session, close_old=False
            )
            background.start(*element_counts(seed=4))
            result = background.join(timeout=60)
            assert not background.running
            assert session.estimator is result.estimator

    def test_background_rejects_overlapping_cycles(self):
        import threading

        release = threading.Event()

        class SlowTarget:
            def hot_swap(self, spec, estimator, *, close_old=True):
                release.wait(30)
                return None

        counts, features = element_counts(seed=5)
        background = BackgroundReOptimizer(ReOptimizer(SPEC), SlowTarget())
        background.start(counts, features)
        try:
            with pytest.raises(RuntimeError):
                background.start(counts, features)
        finally:
            release.set()
            background.join(timeout=60)

    def test_background_surfaces_errors_on_join(self):
        background = BackgroundReOptimizer(ReOptimizer(SPEC), object())
        background.start({"a": 1})
        with pytest.raises(TypeError):
            background.join(timeout=60)


def _as_prefix(counts, features):
    from repro.streams.stream import StreamPrefix

    arrivals = []
    for key, count in counts.items():
        arrivals.extend([Element.with_features(key, features[key])] * count)
    return StreamPrefix(arrivals=arrivals)
