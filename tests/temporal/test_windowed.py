"""Sliding-window semantics: rotation and expiry must be *exact*.

The fence around the temporal layer is bit-identity: a windowed sketch
after any interleaving of ingests and rotations must answer exactly like
a fresh base sketch fed only the in-window arrivals.  Hypothesis drives
that property per base sketch (CMS, Count Sketch, AMS, exact counter),
through merge of two windowed sketches, and through serialization and
the shm storage backend.  The ``ExactCounter`` suite doubles as the
oracle: exact in-window counts under rotation, no approximation to hide
behind.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.api import SketchSpec, SpecError, WindowedSpec, build, spec_from_dict
from repro.sketches.base import IncompatibleSketchError
from repro.sketches.serialization import SerializationError, loads
from repro.streams.stream import Element
from repro.temporal import DecayedSketch, SlidingWindowSketch

BASE_SPECS = {
    "count_min": {"kind": "count_min", "total_buckets": 256, "depth": 2, "seed": 5},
    "count_sketch": {"kind": "count_sketch", "width": 64, "depth": 3, "seed": 5},
    "ams": {"kind": "ams", "num_estimators": 32, "means_groups": 4, "seed": 5},
    "exact_counter": {"kind": "exact_counter"},
}

key_lists = st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=120)


def windowed(base: str, **kwargs) -> SlidingWindowSketch:
    return build(WindowedSpec(spec_from_dict(BASE_SPECS[base]), **kwargs))


def in_window_suffix(keys, counts, num_panes, pane_items):
    """The weighted arrivals a fully-rotated rebuild would keep.

    With count-based rotation the window holds the head's current fill
    plus ``num_panes - 1`` full panes of ``pane_items`` arrivals each.
    """
    total = int(np.sum(counts))
    head_fill = total % pane_items
    keep = head_fill + (num_panes - 1) * pane_items
    if keep >= total:
        return list(keys), list(counts)
    kept_keys, kept_counts = [], []
    remaining = keep
    for key, count in zip(reversed(keys), reversed(counts)):
        take = min(int(count), remaining)
        if take:
            kept_keys.append(key)
            kept_counts.append(take)
            remaining -= take
        if remaining == 0:
            break
    return list(reversed(kept_keys)), list(reversed(kept_counts))


# ----------------------------------------------------------------------
# the ExactCounter oracle
# ----------------------------------------------------------------------
class TestExactOracle:
    def test_exact_in_window_counts_under_rotation(self):
        """Acceptance: the window over an exact counter IS the exact
        in-window count, through arbitrary count-based rotations."""
        sketch = windowed("exact_counter", num_panes=3, pane_items=10)
        rng = np.random.default_rng(0)
        history = []
        for _ in range(40):
            batch = rng.integers(0, 12, size=rng.integers(1, 9))
            sketch.update_batch(batch)
            history.extend(int(k) for k in batch)
            # oracle: the last head_fill + 2*10 arrivals, exactly
            state = sketch.window_state()
            keep = state["head_fill"] + (sketch.num_panes - 1) * 10
            window = history[-keep:] if keep else []
            probe = np.arange(12)
            expected = np.array([window.count(int(k)) for k in probe], dtype=float)
            got = sketch.estimate_batch(probe)
            np.testing.assert_array_equal(got, expected)

    def test_tick_expiry_is_total(self):
        sketch = windowed("exact_counter", num_panes=4)
        sketch.update_batch(["a"] * 9 + ["b"])
        assert sketch.estimate_batch(["a", "b"]).tolist() == [9.0, 1.0]
        for _ in range(sketch.num_panes):
            sketch.tick()
        assert sketch.estimate_batch(["a", "b"]).tolist() == [0.0, 0.0]
        assert sketch.rotations == 4

    def test_partial_expiry_drops_oldest_pane_only(self):
        sketch = windowed("exact_counter", num_panes=3)
        sketch.update_batch(["old"] * 5)
        sketch.tick()
        sketch.update_batch(["mid"] * 3)
        sketch.tick()
        sketch.update_batch(["new"] * 2)
        assert sketch.estimate_batch(["old", "mid", "new"]).tolist() == [5.0, 3.0, 2.0]
        sketch.tick()  # "old" pane expires
        assert sketch.estimate_batch(["old", "mid", "new"]).tolist() == [0.0, 3.0, 2.0]


# ----------------------------------------------------------------------
# bit-identity per base sketch (hypothesis)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("base", sorted(BASE_SPECS))
class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(keys=key_lists, data=st.data())
    def test_count_rotation_matches_in_window_rebuild(self, base, keys, data):
        counts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=7),
                min_size=len(keys),
                max_size=len(keys),
            )
        )
        num_panes = data.draw(st.integers(min_value=2, max_value=5))
        pane_items = data.draw(st.integers(min_value=1, max_value=30))
        sketch = windowed(base, num_panes=num_panes, pane_items=pane_items)
        chunk = data.draw(st.integers(min_value=1, max_value=len(keys)))
        for start in range(0, len(keys), chunk):
            sketch.update_batch(
                keys[start : start + chunk], counts[start : start + chunk]
            )
        kept_keys, kept_counts = in_window_suffix(keys, counts, num_panes, pane_items)
        reference = build(spec_from_dict(BASE_SPECS[base]))
        if kept_keys:
            reference.update_batch(kept_keys, kept_counts)
        probe = sorted(set(keys)) + [999]
        if base == "ams":
            assert sketch.estimate_second_moment() == pytest.approx(
                reference.estimate_second_moment()
            )
        else:
            np.testing.assert_array_equal(
                sketch.estimate_batch(probe), reference.estimate_batch(probe)
            )

    @settings(max_examples=20, deadline=None)
    @given(first=key_lists, second=key_lists, ticks=st.integers(0, 3))
    def test_merge_matches_concatenated_window(self, base, first, second, ticks):
        """Two tick-aligned windows merge into the window of the union."""
        left = windowed(base, num_panes=3)
        right = windowed(base, num_panes=3)
        both = windowed(base, num_panes=3)
        left.update_batch(first)
        right.update_batch(second)
        both.update_batch(first)
        both.update_batch(second)
        for _ in range(ticks):
            left.tick(), right.tick(), both.tick()
        left.merge(right)
        probe = sorted(set(first) | set(second)) + [999]
        if base == "ams":
            assert left.estimate_second_moment() == pytest.approx(
                both.estimate_second_moment()
            )
        else:
            np.testing.assert_array_equal(
                left.estimate_batch(probe), both.estimate_batch(probe)
            )

    @settings(max_examples=20, deadline=None)
    @given(keys=key_lists, ticks=st.integers(0, 4))
    def test_serialization_round_trip(self, base, keys, ticks):
        sketch = windowed(base, num_panes=3)
        sketch.update_batch(keys)
        for _ in range(ticks):
            sketch.tick()
        restored = loads(sketch.to_bytes())
        assert type(restored) is SlidingWindowSketch
        assert restored.rotations == sketch.rotations
        probe = sorted(set(keys)) + [999]
        if base == "ams":
            assert restored.estimate_second_moment() == pytest.approx(
                sketch.estimate_second_moment()
            )
        else:
            np.testing.assert_array_equal(
                restored.estimate_batch(probe), sketch.estimate_batch(probe)
            )
        # the restored ring keeps rotating and merging like the original
        restored.update_batch(keys)
        sketch.update_batch(keys)
        restored.tick(), sketch.tick()
        if base != "ams":
            np.testing.assert_array_equal(
                restored.estimate_batch(probe), sketch.estimate_batch(probe)
            )


# ----------------------------------------------------------------------
# storage backends
# ----------------------------------------------------------------------
class TestShmBackedPanes:
    SHM_INNER = {
        "kind": "count_min",
        "total_buckets": 256,
        "depth": 2,
        "seed": 3,
        "storage": "shm",
    }

    def test_shm_window_matches_dense_and_round_trips(self):
        shm = build(WindowedSpec(spec_from_dict(self.SHM_INNER), num_panes=3))
        dense_inner = {k: v for k, v in self.SHM_INNER.items() if k != "storage"}
        dense = build(WindowedSpec(spec_from_dict(dense_inner), num_panes=3))
        try:
            rng = np.random.default_rng(1)
            for _ in range(5):
                batch = rng.integers(0, 50, size=200)
                shm.update_batch(batch)
                dense.update_batch(batch)
                shm.tick(), dense.tick()
            probe = np.arange(50)
            # seed=3 on both: the shm ring is bit-identical to the dense one
            np.testing.assert_array_equal(
                shm.estimate_batch(probe), dense.estimate_batch(probe)
            )
            restored = loads(shm.to_bytes())
            np.testing.assert_array_equal(
                restored.estimate_batch(probe), dense.estimate_batch(probe)
            )
            assert restored.rotations == shm.rotations
        finally:
            shm.close()

    def test_rotation_releases_expired_shm_panes(self):
        sketch = build(WindowedSpec(spec_from_dict(self.SHM_INNER), num_panes=2))
        try:
            sketch.update_batch(np.arange(100))
            sketch.estimate_batch(np.arange(4))  # materialize a merged cache
            for _ in range(6):  # rotations discard old panes AND stale caches
                sketch.tick()
            assert sketch.estimate_batch(np.arange(4)).tolist() == [0.0] * 4
        finally:
            sketch.close()


# ----------------------------------------------------------------------
# spec and API surface
# ----------------------------------------------------------------------
class TestWindowedSpec:
    def test_round_trips_through_dict(self):
        spec = WindowedSpec(
            SketchSpec("count_min", total_buckets=64, depth=1, seed=2),
            num_panes=4,
            pane_items=100,
        )
        clone = spec_from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.kind == "sliding_window"

    def test_decay_selects_the_decayed_kind(self):
        spec = WindowedSpec(SketchSpec("exact_counter"), num_panes=3, decay=0.5)
        assert spec.kind == "decayed"
        assert type(build(spec)) is DecayedSketch

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_panes": 1},
            {"num_panes": 0},
            {"pane_items": 0},
            {"pane_items": -5},
            {"decay": 0.0},
            {"decay": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(SpecError):
            WindowedSpec(SketchSpec("exact_counter"), **kwargs).validate()

    def test_rejects_nested_windows(self):
        inner = WindowedSpec(SketchSpec("exact_counter"), num_panes=2)
        with pytest.raises(SpecError):
            WindowedSpec(inner, num_panes=2).validate()

    def test_session_open_snapshot_restore(self, tmp_path):
        spec = WindowedSpec(
            SketchSpec("count_min", total_buckets=128, depth=2, seed=8), num_panes=3
        )
        path = str(tmp_path / "window.snap")
        with repro.open(spec) as session:
            session.ingest(list(range(30)))
            session.estimator.tick()
            session.ingest(list(range(10)))
            expected = session.estimate(list(range(30)))
            session.save(path)
        with repro.load(path) as restored:
            assert restored.kind == "sliding_window"
            np.testing.assert_array_equal(
                restored.estimate(list(range(30))), expected
            )

    def test_describe_names_the_ring(self):
        sketch = windowed("count_min", num_panes=3, pane_items=7)
        description = sketch.describe()
        assert description["kind"] == "sliding_window"
        assert description["params"]["num_panes"] == 3
        assert description["params"]["pane_items"] == 7


# ----------------------------------------------------------------------
# alignment and failure edges
# ----------------------------------------------------------------------
class TestEdges:
    def test_merge_rejects_pane_misalignment(self):
        left = windowed("exact_counter", num_panes=3)
        right = windowed("exact_counter", num_panes=3)
        right.tick()
        with pytest.raises(IncompatibleSketchError):
            left.merge(right)

    def test_merge_rejects_differing_rings(self):
        left = windowed("exact_counter", num_panes=3)
        right = windowed("exact_counter", num_panes=4)
        with pytest.raises(IncompatibleSketchError):
            left.merge(right)

    def test_opt_hash_window_is_not_serializable(self, toy_prefix):
        spec = WindowedSpec(
            repro.OptHashSpec(num_buckets=3, solver="bcd", classifier="cart", seed=1),
            num_panes=2,
        )
        sketch = build(spec, prefix=toy_prefix)
        sketch.update_batch(toy_prefix.arrivals)
        assert sketch.estimate_batch([toy_prefix.arrivals[0]])[0] > 0
        with pytest.raises(SerializationError):
            sketch.to_bytes()

    def test_opt_hash_window_expires_like_any_other(self, toy_prefix):
        spec = WindowedSpec(
            repro.OptHashSpec(num_buckets=3, solver="bcd", classifier="cart", seed=1),
            num_panes=2,
        )
        sketch = build(spec, prefix=toy_prefix)
        sketch.update_batch(toy_prefix.arrivals)
        probe = [toy_prefix.arrivals[0]]
        assert sketch.estimate_batch(probe)[0] > 0
        sketch.tick()
        sketch.tick()
        assert sketch.estimate_batch(probe)[0] == 0.0

    def test_window_state_reports_pane_arrivals_youngest_first(self):
        sketch = windowed("exact_counter", num_panes=3)
        sketch.update_batch(["a"] * 4)
        sketch.tick()
        sketch.update_batch(["b"] * 2)
        state = sketch.window_state()
        assert state["pane_arrivals"][:2] == [2, 4]
        assert state["rotations"] == 1
        assert state["head_fill"] == 2
