"""Time-decayed estimation: geometric down-weighting by pane age.

A :class:`DecayedSketch` never rescales counters — it weights each pane's
*estimate* by ``decay ** age`` at query time, which keeps the one-sided
CMS guarantee intact inside every pane.  These tests pin the arithmetic
to hand-computable cases and fence the parts that cannot decompose
(second moments are quadratic in the counters, so F2 over a decayed
mixture is undefined and must refuse loudly).
"""

import numpy as np
import pytest

from repro.api import SketchSpec, WindowedSpec, build, spec_from_dict
from repro.sketches.serialization import loads
from repro.temporal import DecayedSketch


def decayed(decay=0.5, num_panes=4, base=None):
    inner = spec_from_dict(base or {"kind": "exact_counter"})
    return build(WindowedSpec(inner, num_panes=num_panes, decay=decay))


class TestDecayArithmetic:
    def test_exact_geometric_weighting(self):
        sketch = decayed(decay=0.5, num_panes=4)
        sketch.update_batch(["k"] * 8)  # age 0 at first, then pushed back
        sketch.tick()
        sketch.update_batch(["k"] * 4)
        sketch.tick()
        sketch.update_batch(["k"] * 2)
        # ages: 0 -> 2 arrivals, 1 -> 4, 2 -> 8; weights 1, .5, .25
        assert sketch.estimate_batch(["k"])[0] == pytest.approx(2 + 2.0 + 2.0)

    def test_fresh_mass_counts_in_full(self):
        sketch = decayed(decay=0.25)
        sketch.update_batch(["a"] * 10)
        assert sketch.estimate_batch(["a"])[0] == 10.0

    def test_expired_mass_is_gone_not_just_small(self):
        sketch = decayed(decay=0.9, num_panes=3)
        sketch.update_batch(["a"] * 100)
        for _ in range(3):
            sketch.tick()
        assert sketch.estimate_batch(["a"])[0] == 0.0

    def test_each_tick_multiplies_old_mass_by_decay(self):
        sketch = decayed(decay=0.5, num_panes=8)
        sketch.update_batch(["a"] * 16)
        values = [sketch.estimate_batch(["a"])[0]]
        for _ in range(4):
            sketch.tick()
            values.append(sketch.estimate_batch(["a"])[0])
        assert values == [16.0, 8.0, 4.0, 2.0, 1.0]

    def test_cms_panes_keep_the_one_sided_guarantee(self):
        base = {"kind": "count_min", "total_buckets": 512, "depth": 2, "seed": 4}
        approx = decayed(decay=0.5, num_panes=3, base=base)
        exact = decayed(decay=0.5, num_panes=3)
        rng = np.random.default_rng(0)
        for _ in range(3):
            batch = rng.integers(0, 100, size=400)
            approx.update_batch(batch)
            exact.update_batch(batch)
            approx.tick(), exact.tick()
        probe = np.arange(100)
        assert (approx.estimate_batch(probe) >= exact.estimate_batch(probe)).all()


class TestDecayedSurface:
    def test_second_moment_refuses(self):
        base = {"kind": "ams", "num_estimators": 16, "means_groups": 4, "seed": 1}
        sketch = decayed(decay=0.5, base=base)
        sketch.update_batch([1, 2, 3])
        with pytest.raises(TypeError):
            sketch.estimate_second_moment()

    def test_serialization_preserves_decay(self):
        sketch = decayed(decay=0.5, num_panes=3)
        sketch.update_batch(["x"] * 4)
        sketch.tick()
        restored = loads(sketch.to_bytes())
        assert type(restored) is DecayedSketch
        assert restored.decay == 0.5
        assert restored.estimate_batch(["x"])[0] == 2.0

    def test_merge_requires_matching_decay(self):
        from repro.sketches.base import IncompatibleSketchError

        left = decayed(decay=0.5)
        right = decayed(decay=0.25)
        with pytest.raises(IncompatibleSketchError):
            left.merge(right)

    def test_scalar_estimate_matches_batch(self):
        from repro.streams.stream import Element

        sketch = decayed(decay=0.5, num_panes=3)
        sketch.update_batch(["k"] * 6)
        sketch.tick()
        assert sketch.estimate(Element(key="k")) == sketch.estimate_batch(["k"])[0]

    def test_window_state_reports_decay(self):
        sketch = decayed(decay=0.75, num_panes=5)
        assert sketch.window_state()["decay"] == 0.75
