"""Drift detection: the learned scheme must notice its own staleness.

The detector scores two failure modes of a trained hashing scheme —
bucket mass migrating (total-variation on the share vectors) and
within-bucket dispersion growing (relative MAE, the scale-free form of
the training objective).  The fences here: an unchanged distribution
scores ~0, a key permutation scores high, tiny samples cannot trigger,
and feature-carrying Elements keep their features for routing unseen
keys through the classifier.
"""

import numpy as np
import pytest

import repro
from repro.streams.stream import Element
from repro.streams.synthetic import DriftingStreamGenerator, DriftingZipfConfig
from repro.temporal import DriftDetector
from repro.temporal.drift import BucketErrorProfile, DriftSignal


@pytest.fixture(scope="module")
def trained():
    """An opt-hash training run over a drifting stream's stable prefix."""
    generator = DriftingStreamGenerator(
        DriftingZipfConfig(
            universe_size=150, segment_length=3000, num_segments=3, seed=11
        )
    )
    prefix = generator.generate_prefix()
    spec = repro.OptHashSpec(
        num_buckets=8, lam=0.5, solver="bcd", classifier="cart", seed=2
    )
    training = repro.api.train(spec, prefix)
    return generator, training


class TestBucketErrorProfile:
    def test_shares_sum_to_one(self, trained):
        _, training = trained
        profile = BucketErrorProfile.from_training(training)
        assert profile.mass_share.sum() == pytest.approx(1.0)
        assert profile.num_buckets == training.scheme.num_buckets
        assert profile.relative_mae >= 0.0

    def test_empty_profile_is_all_zero(self, trained):
        _, training = trained
        profile = BucketErrorProfile.from_frequencies(training.scheme, [], [])
        assert profile.total_mass == 0.0
        assert profile.num_keys == 0
        assert (profile.mass_share == 0).all()

    def test_from_counts_matches_from_frequencies(self, trained):
        generator, training = trained
        counts = {}
        for element in generator.generate_prefix(500):
            counts[element] = counts.get(element, 0) + 1
        via_counts = BucketErrorProfile.from_counts(training.scheme, counts)
        via_freq = BucketErrorProfile.from_frequencies(
            training.scheme, list(counts), list(counts.values())
        )
        np.testing.assert_allclose(via_counts.mass_share, via_freq.mass_share)
        assert via_counts.relative_mae == pytest.approx(via_freq.relative_mae)

    def test_misaligned_inputs_raise(self, trained):
        _, training = trained
        with pytest.raises(ValueError):
            BucketErrorProfile.from_frequencies(training.scheme, ["a"], [1.0, 2.0])


class TestDriftDetector:
    def test_stable_distribution_scores_near_zero(self, trained):
        generator, training = trained
        detector = DriftDetector(training.scheme, training, threshold=0.25)
        detector.observe(generator.generate_segment(0, 3000))
        signal = detector.check()
        assert signal.score < 0.15
        assert not signal.drifted
        assert not signal  # __bool__ is the verdict

    def test_rotated_permutation_drifts(self, trained):
        generator, training = trained
        detector = DriftDetector(training.scheme, training, threshold=0.25)
        detector.observe(generator.generate_segment(2, 3000))
        signal = detector.check()
        assert signal.score > 0.25
        assert signal.drifted
        assert signal.mass_shift <= 1.0

    def test_min_keys_gates_the_verdict(self, trained):
        generator, training = trained
        detector = DriftDetector(
            training.scheme, training, threshold=0.01, min_keys=10_000
        )
        detector.observe(generator.generate_segment(2, 3000))
        signal = detector.check()
        assert not signal.drifted  # high score, too few distinct keys
        assert signal.observed_keys < 10_000

    def test_reset_and_check_reset_clear_the_buffer(self, trained):
        generator, training = trained
        detector = DriftDetector(training.scheme, training)
        detector.observe(generator.generate_segment(2, 500))
        assert detector.observed_counts
        detector.check(reset=True)
        assert not detector.observed_counts
        assert not detector.observed_features

    def test_observe_accumulates_weighted_counts(self, trained):
        _, training = trained
        detector = DriftDetector(training.scheme, training)
        keys = list(training.stored_keys)[:3]
        detector.observe(keys, [5, 2, 1])
        detector.observe(keys[:1], [4])
        assert detector.observed_counts[keys[0]] == 9

    def test_elements_keep_their_features_for_routing(self, trained):
        generator, training = trained
        detector = DriftDetector(training.scheme, training)
        segment = generator.generate_segment(1, 800)
        detector.observe(segment)
        features = detector.observed_features
        assert features  # drifting elements carry rank features
        example = next(iter(features.values()))
        assert len(example) == generator.config.feature_dim
        # check() routes through the classifier without blowing up on
        # keys the exact table has never seen
        assert isinstance(detector.check(), DriftSignal)

    def test_bucket_count_mismatch_raises(self, trained):
        _, training = trained
        wrong = BucketErrorProfile(
            num_buckets=training.scheme.num_buckets + 1,
            mass_share=np.zeros(training.scheme.num_buckets + 1),
            relative_mae=0.0,
            total_mass=0.0,
            num_keys=0,
        )
        with pytest.raises(ValueError):
            DriftDetector(training.scheme, wrong)

    def test_reference_must_be_profile_or_training(self, trained):
        _, training = trained
        with pytest.raises(TypeError):
            DriftDetector(training.scheme, {"not": "a profile"})
