"""Bit-identity of the kernel backends.

Every compute backend (NumPy reference, ctypes-driven C, Numba) implements
the exact integer recurrences of :mod:`repro.sketches.hashing`, so two
sketches that differ only in ``backend=`` must hold byte-identical state and
return byte-identical answers — across sketch kinds, hash schemes, key
types, weighted batches, merges, serialization, storage backends, and
sharded layouts.  These tests run against every backend available on the
machine (the NumPy baseline always is; the compiled ones are skipped where
no compiler/Numba exists, and CI runs dedicated legs with and without them).
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import kernels
from repro.errors import KernelError
from repro.sketches import AmsSketch, BloomFilter, CountMinSketch, CountSketch

SCHEMES = ("universal", "tabulation")

COMPILED = [name for name in kernels.available_backends() if name != "numpy"]

requires_compiled = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel backend available (no cc/numba)"
)


def compiled_params():
    return COMPILED or [
        pytest.param(
            "native", marks=pytest.mark.skip(reason="no compiled backend")
        )
    ]


def int_keys(num=4000, support=500, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(-(2**62), 2**62, size=num, dtype=np.int64)
    # Skew toward a small hot set so estimates exercise real collisions.
    hot = rng.integers(0, support, size=num, dtype=np.int64)
    use_hot = rng.random(num) < 0.8
    return np.where(use_hot, hot, keys)


def str_keys(num=2000, support=300, seed=1):
    ranks = np.random.default_rng(seed).integers(0, support, size=num)
    return [f"query {int(r)} text" for r in ranks]


def weights(num, seed=2):
    return np.random.default_rng(seed).integers(0, 9, size=num).astype(np.int64)


def probe(keys):
    if isinstance(keys, np.ndarray):
        return np.concatenate([np.unique(keys), [10**9, -(10**9)]])
    return sorted(set(keys)) + ["never seen a", "never seen b"]


def make_pair(factory, backend):
    """The same sketch twice: NumPy reference vs the backend under test."""
    return factory(backend="numpy"), factory(backend=backend)


def table_of(sketch):
    for attr in ("_table", "_counters", "_bits"):
        if hasattr(sketch, attr):
            return np.asarray(getattr(sketch, attr))
    raise AssertionError(f"no state array on {type(sketch).__name__}")


# ----------------------------------------------------------------------
# core matrix: backend x sketch x scheme x key type x weighted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", compiled_params())
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("key_kind", ("int", "str"))
@pytest.mark.parametrize("weighted", (False, True))
class TestIngestQueryIdentity:
    def keys(self, key_kind):
        return int_keys() if key_kind == "int" else str_keys()

    def run_pair(self, factory, backend, key_kind, weighted):
        keys = self.keys(key_kind)
        counts = weights(len(keys)) if weighted else None
        ref, fast = make_pair(factory, backend)
        assert fast.kernel_backend == backend
        for sketch in (ref, fast):
            sketch.update_batch(keys, counts)
        np.testing.assert_array_equal(table_of(ref), table_of(fast))
        return ref, fast, keys

    def test_count_min(self, backend, scheme, key_kind, weighted):
        def factory(**kw):
            return CountMinSketch(width=256, depth=4, seed=11, hash_scheme=scheme, **kw)

        ref, fast, keys = self.run_pair(factory, backend, key_kind, weighted)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_count_min_conservative(self, backend, scheme, key_kind, weighted):
        def factory(**kw):
            return CountMinSketch(
                width=256, depth=4, seed=3, hash_scheme=scheme, conservative=True, **kw
            )

        ref, fast, keys = self.run_pair(factory, backend, key_kind, weighted)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_count_sketch(self, backend, scheme, key_kind, weighted):
        def factory(**kw):
            return CountSketch(width=256, depth=5, seed=7, hash_scheme=scheme, **kw)

        ref, fast, keys = self.run_pair(factory, backend, key_kind, weighted)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_count_sketch_even_depth_median(self, backend, scheme, key_kind, weighted):
        def factory(**kw):
            return CountSketch(width=128, depth=4, seed=9, hash_scheme=scheme, **kw)

        ref, fast, keys = self.run_pair(factory, backend, key_kind, weighted)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_ams(self, backend, scheme, key_kind, weighted):
        def factory(**kw):
            return AmsSketch(num_estimators=64, seed=5, hash_scheme=scheme, **kw)

        ref, fast, _ = self.run_pair(factory, backend, key_kind, weighted)
        assert ref.estimate_second_moment() == fast.estimate_second_moment()


@pytest.mark.parametrize("backend", compiled_params())
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("key_kind", ("int", "str"))
class TestBloomIdentity:
    def test_add_contains_observe(self, backend, scheme, key_kind):
        keys = int_keys(1500) if key_kind == "int" else str_keys(1500)

        def factory(**kw):
            return BloomFilter(
                num_bits=4096, num_hashes=4, seed=13, hash_scheme=scheme, **kw
            )

        ref, fast = make_pair(factory, backend)
        half = len(keys) // 2
        ref_new = ref.observe_batch(keys[:half])
        fast_new = fast.observe_batch(keys[:half])
        np.testing.assert_array_equal(ref_new, fast_new)
        ref.add_batch(keys[half:])
        fast.add_batch(keys[half:])
        np.testing.assert_array_equal(ref._bits, fast._bits)
        assert ref.num_inserted == fast.num_inserted
        np.testing.assert_array_equal(
            ref.contains_batch(probe(keys)), fast.contains_batch(probe(keys))
        )


# ----------------------------------------------------------------------
# non-power-of-two table widths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", compiled_params())
@pytest.mark.parametrize("width", (1, 3, 257, 2730, 999983))
class TestOddWidthIdentity:
    """Widths that are not powers of two.

    Regression for the fastmod reciprocal: a ceil(log2) shift makes the
    precomputed magic overflow 64 bits for every non-power-of-two width,
    which shorts the quotient so badly the fixup loop effectively hangs.
    The floor(log2) shift keeps magic in range for all widths, including
    the degenerate width-1 table.
    """

    def test_count_min(self, backend, width):
        keys = int_keys(2000)
        ref, fast = make_pair(
            lambda **kw: CountMinSketch(width=width, depth=3, seed=17, **kw),
            backend,
        )
        for sketch in (ref, fast):
            sketch.update_batch(keys)
        np.testing.assert_array_equal(ref._table, fast._table)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_count_sketch(self, backend, width):
        keys = int_keys(2000)
        ref, fast = make_pair(
            lambda **kw: CountSketch(width=width, depth=3, seed=19, **kw),
            backend,
        )
        for sketch in (ref, fast):
            sketch.update_batch(keys)
        np.testing.assert_array_equal(ref._table, fast._table)
        np.testing.assert_array_equal(
            ref.estimate_batch(probe(keys)), fast.estimate_batch(probe(keys))
        )

    def test_bloom(self, backend, width):
        keys = int_keys(1000)
        ref, fast = make_pair(
            lambda **kw: BloomFilter(num_bits=width, num_hashes=3, seed=23, **kw),
            backend,
        )
        ref.add_batch(keys)
        fast.add_batch(keys)
        np.testing.assert_array_equal(ref._bits, fast._bits)
        np.testing.assert_array_equal(
            ref.contains_batch(probe(keys)), fast.contains_batch(probe(keys))
        )


# ----------------------------------------------------------------------
# hypothesis: adversarial key/weight patterns
# ----------------------------------------------------------------------
any_int_key = st.integers(min_value=-(2**63), max_value=2**64 - 1)
any_str_key = st.text(max_size=12)


@requires_compiled
class TestHypothesisIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(any_int_key, min_size=1, max_size=60),
        counts=st.none() | st.just("draw"),
        data=st.data(),
    )
    def test_cms_int_keys(self, keys, counts, data):
        if counts == "draw":
            counts = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=10**6),
                    min_size=len(keys),
                    max_size=len(keys),
                )
            )
        for backend in COMPILED:
            ref, fast = make_pair(
                lambda **kw: CountMinSketch(width=32, depth=3, seed=1, **kw), backend
            )
            ref.update_batch(keys, counts)
            fast.update_batch(keys, counts)
            np.testing.assert_array_equal(ref._table, fast._table)
            np.testing.assert_array_equal(
                ref.estimate_batch(keys), fast.estimate_batch(keys)
            )

    @settings(max_examples=40, deadline=None)
    @given(keys=st.lists(any_str_key, min_size=1, max_size=40))
    def test_count_sketch_str_keys(self, keys):
        for backend in COMPILED:
            ref, fast = make_pair(
                lambda **kw: CountSketch(width=32, depth=4, seed=2, **kw), backend
            )
            ref.update_batch(keys)
            fast.update_batch(keys)
            np.testing.assert_array_equal(ref._table, fast._table)
            np.testing.assert_array_equal(
                ref.estimate_batch(keys), fast.estimate_batch(keys)
            )

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(any_int_key, min_size=1, max_size=50))
    def test_bloom_observe_first_occurrence(self, keys):
        for backend in COMPILED:
            ref, fast = make_pair(
                lambda **kw: BloomFilter(num_bits=64, num_hashes=3, seed=3, **kw),
                backend,
            )
            np.testing.assert_array_equal(
                ref.observe_batch(keys), fast.observe_batch(keys)
            )
            np.testing.assert_array_equal(ref._bits, fast._bits)


# ----------------------------------------------------------------------
# merge / serialization / storage / sharding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", compiled_params())
class TestStateIdentity:
    def test_merge_matches_numpy(self, backend):
        def halves(be):
            a = CountMinSketch(width=128, depth=4, seed=21, backend=be)
            b = CountMinSketch(width=128, depth=4, seed=21, backend=be)
            a.update_batch(int_keys(seed=4))
            b.update_batch(int_keys(seed=5))
            return a.merge(b)

        np.testing.assert_array_equal(halves("numpy")._table, halves(backend)._table)

    def test_serialized_state_is_backend_independent(self, backend):
        """Modulo the recorded backend name, the wire bytes are identical."""
        from repro.sketches.serialization import unpack

        def blob(be):
            sketch = CountSketch(width=64, depth=3, seed=8, backend=be)
            sketch.update_batch(str_keys(800))
            return sketch.to_bytes()

        tag_a, state_a, arrays_a = unpack(blob("numpy"))
        tag_b, state_b, arrays_b = unpack(blob(backend))
        assert tag_a == tag_b
        assert state_a.pop("backend") == "numpy"
        assert state_b.pop("backend") == backend
        assert state_a == state_b
        assert sorted(arrays_a) == sorted(arrays_b)
        for name in arrays_a:
            np.testing.assert_array_equal(arrays_a[name], arrays_b[name])

    def test_roundtrip_preserves_backend(self, backend):
        sketch = CountMinSketch(width=64, depth=3, seed=2, backend=backend)
        sketch.update_batch(int_keys(1000))
        twin = CountMinSketch.from_bytes(sketch.to_bytes())
        assert twin.backend == backend
        assert twin.kernel_backend == backend
        np.testing.assert_array_equal(sketch._table, twin._table)

    def test_auto_backend_not_serialized(self, backend):
        from repro.sketches.serialization import unpack

        sketch = CountMinSketch(width=8, depth=2, seed=1)  # backend="auto"
        _, state, _ = unpack(sketch.to_bytes())
        assert "backend" not in state

    @pytest.mark.parametrize("storage", ("shm", "mmap"))
    def test_storage_backends_identical(self, backend, storage, tmp_path):
        def factory(**kw):
            extra = {"storage_path": str(tmp_path / f"{kw['backend']}.bin")}
            if storage != "mmap":
                extra = {}
            return CountMinSketch(
                width=128, depth=3, seed=6, storage=storage, **extra, **kw
            )

        ref, fast = make_pair(factory, backend)
        try:
            keys = int_keys(2000)
            ref.update_batch(keys)
            fast.update_batch(keys)
            np.testing.assert_array_equal(
                np.asarray(ref._table), np.asarray(fast._table)
            )
        finally:
            for sketch in (ref, fast):
                close = getattr(sketch, "close", None)
                if close is not None:
                    close()

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_sharded_identical(self, backend, executor):
        def build(be):
            spec = repro.ShardedSpec(
                repro.SketchSpec(
                    "count_min", width=64, depth=3, seed=9, backend=be
                ),
                num_shards=3,
                executor=executor,
            )
            est = repro.build(spec)
            est.update_batch(int_keys(2000))
            return est

        ref, fast = build("numpy"), build(backend)
        try:
            assert fast.kernel_backend == backend
            keys = probe(int_keys(2000))
            np.testing.assert_array_equal(
                ref.estimate_batch(keys), fast.estimate_batch(keys)
            )
        finally:
            ref.close()
            fast.close()

    def test_session_snapshot_roundtrip(self, backend):
        spec = {"kind": "count_min", "width": 64, "depth": 3, "seed": 4}
        with repro.open(spec, options=repro.Options(backend=backend)) as session:
            session.ingest(int_keys(1500))
            blob = session.snapshot()
            reference = session.estimate(probe(int_keys(1500)))
        twin = repro.restore(blob)
        assert twin.describe()["kernel_backend"] == backend
        np.testing.assert_array_equal(
            reference, twin.estimate(probe(int_keys(1500)))
        )


# ----------------------------------------------------------------------
# fallback: restoring a compiled-backend snapshot without the compiled path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", compiled_params())
class TestRestoreFallback:
    def test_restore_without_compiled_backend_warns_and_matches(
        self, backend, monkeypatch
    ):
        sketch = CountMinSketch(width=64, depth=3, seed=12, backend=backend)
        sketch.update_batch(int_keys(1200))
        blob = sketch.to_bytes()
        reference = sketch.estimate_batch(probe(int_keys(1200)))

        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "all-compiled")
        with pytest.warns(RuntimeWarning, match="falling back"):
            twin = CountMinSketch.from_bytes(blob)
        assert twin.kernel_backend == "numpy"
        assert twin.backend == backend  # the pin survives for re-serialization
        np.testing.assert_array_equal(sketch._table, twin._table)
        np.testing.assert_array_equal(
            reference, twin.estimate_batch(probe(int_keys(1200)))
        )

    def test_explicit_construction_still_raises(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "all-compiled")
        with pytest.raises(KernelError, match="unavailable"):
            CountMinSketch(width=8, depth=2, seed=1, backend=backend)

    def test_auto_degrades_silently(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "all-compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sketch = CountMinSketch(width=8, depth=2, seed=1, backend="auto")
        assert sketch.kernel_backend == "numpy"


# ----------------------------------------------------------------------
# dispatch API surface
# ----------------------------------------------------------------------
class TestDispatchApi:
    def test_numpy_always_available(self):
        assert kernels.backend_available("numpy")
        assert kernels.get_backend("numpy").name == "numpy"
        assert kernels.resolve_backend("auto") in kernels.BACKEND_NAMES

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError, match="unknown"):
            kernels.resolve_backend("fortran")
        with pytest.raises(repro.SpecError):
            repro.SketchSpec("count_min", width=8, depth=2, backend="fortran").validate()

    def test_spec_with_backend_drills_through_wrappers(self):
        spec = repro.ShardedSpec(
            repro.SketchSpec("count_min", width=16, depth=2, seed=1),
            num_shards=2,
        )
        pinned = repro.api.spec_with_backend(spec, "numpy")
        assert pinned.inner.params["backend"] == "numpy"

    def test_spec_with_backend_rejects_nonkernel_kinds(self):
        with pytest.raises(repro.SpecError, match="backend"):
            repro.api.spec_with_backend(repro.SketchSpec("exact_counter"), "numpy")

    def test_describe_reports_resolved_backend(self):
        sketch = CountMinSketch(width=8, depth=2, seed=1, backend="numpy")
        info = sketch.describe()
        assert info["kernel_backend"] == "numpy"
        assert info["storage_backend"] == "dense"
        assert info["params"]["backend"] == "numpy"
