"""Tests for the synthetic AOL-like query-log generator."""

import numpy as np
import pytest

from repro.streams.querylog import QueryLogConfig, QueryLogGenerator


def small_config(**overrides):
    defaults = dict(
        num_unique_queries=500,
        num_days=5,
        arrivals_per_day=2000,
        zipf_exponent=0.8,
        daily_churn_fraction=0.02,
        seed=0,
    )
    defaults.update(overrides)
    return QueryLogConfig(**defaults)


class TestQueryLogConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueryLogConfig(num_unique_queries=0)
        with pytest.raises(ValueError):
            QueryLogConfig(num_days=0)
        with pytest.raises(ValueError):
            QueryLogConfig(arrivals_per_day=0)
        with pytest.raises(ValueError):
            QueryLogConfig(daily_churn_fraction=1.0)


class TestQueryLogGenerator:
    def test_universe_has_unique_texts(self):
        generator = QueryLogGenerator(small_config())
        texts = [query.text for query in generator.queries]
        assert len(texts) == len(set(texts)) == 500

    def test_head_queries_are_navigational(self):
        generator = QueryLogGenerator(small_config())
        head_texts = [query.text for query in generator.queries[:30]]
        assert any("www." in text or text.endswith(".com") for text in head_texts)
        # Head queries are short.
        assert np.mean([len(text.split()) for text in head_texts]) < 2.5

    def test_tail_queries_are_longer_than_head(self):
        generator = QueryLogGenerator(small_config())
        head_words = np.mean([len(q.text.split()) for q in generator.queries[:20]])
        tail_words = np.mean([len(q.text.split()) for q in generator.queries[-100:]])
        assert tail_words > head_words

    def test_day_stream_has_configured_length(self):
        generator = QueryLogGenerator(small_config())
        day = generator.generate_day(0)
        assert len(day) == 2000

    def test_popularity_is_zipfian(self):
        generator = QueryLogGenerator(small_config(arrivals_per_day=20_000, num_days=1))
        day = generator.generate_day(0)
        frequencies = day.frequencies()
        top_text = generator.queries[0].text
        mid_text = generator.queries[99].text
        # Rank 1 should be much more frequent than rank 100 (about 100^0.8 ≈ 40x).
        assert frequencies[top_text] > 10 * max(1, frequencies[mid_text])

    def test_popular_queries_recur_across_days(self):
        generator = QueryLogGenerator(small_config())
        day0 = generator.generate_day(0).frequencies()
        day1 = generator.generate_day(1).frequencies()
        top = [query.text for query in generator.queries[:5]]
        assert all(day0[text] > 0 for text in top)
        assert all(day1[text] > 0 for text in top)

    def test_churn_introduces_new_queries(self):
        generator = QueryLogGenerator(small_config(daily_churn_fraction=0.1))
        base_texts = {query.text for query in generator.queries}
        day = generator.generate_day(0)
        new_queries = [e.key for e in day if e.key not in base_texts]
        assert len(new_queries) == int(round(0.1 * 2000))

    def test_zero_churn_stays_within_base_universe(self):
        generator = QueryLogGenerator(small_config(daily_churn_fraction=0.0))
        base_texts = {query.text for query in generator.queries}
        day = generator.generate_day(0)
        assert all(element.key in base_texts for element in day)


class TestQueryLogDataset:
    def test_dataset_has_all_days(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        assert len(dataset.days) == 5

    def test_prefix_is_day_zero(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        prefix = dataset.prefix()
        assert [e.key for e in prefix] == [e.key for e in dataset.days[0]]

    def test_cumulative_frequencies_accumulate(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        day0 = dataset.cumulative_frequencies(0)
        day2 = dataset.cumulative_frequencies(2)
        assert day2.total == 3 * 2000
        assert day0.total == 2000
        some_key = dataset.days[0][0].key
        assert day2[some_key] >= day0[some_key]

    def test_cumulative_frequencies_bounds_checked(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        with pytest.raises(ValueError):
            dataset.cumulative_frequencies(99)

    def test_arrivals_after_prefix_excludes_day_zero(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        arrivals = list(dataset.arrivals_after_prefix(2))
        assert len(arrivals) == 2 * 2000

    def test_queries_seen_by_grows_with_days(self):
        dataset = QueryLogGenerator(small_config()).generate_dataset()
        seen_day0 = dataset.queries_seen_by(0)
        seen_day3 = dataset.queries_seen_by(3)
        assert set(seen_day0).issubset(set(seen_day3))
        assert len(seen_day3) >= len(seen_day0)
