"""Tests for the core stream abstractions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.streams.stream import (
    Element,
    FrequencyVector,
    Stream,
    StreamPrefix,
    exact_frequencies,
)


class TestElement:
    def test_with_features_coerces_to_float_tuple(self):
        element = Element.with_features("key", [1, 2, 3])
        assert element.features == (1.0, 2.0, 3.0)

    def test_feature_array_roundtrip(self):
        element = Element.with_features(5, [0.5, -1.5])
        np.testing.assert_allclose(element.feature_array(), [0.5, -1.5])

    def test_elements_are_hashable_and_comparable(self):
        first = Element.with_features("a", [1.0])
        second = Element.with_features("a", [1.0])
        assert first == second
        assert hash(first) == hash(second)

    def test_default_features_empty(self):
        assert Element(key="x").feature_array().shape == (0,)


class TestFrequencyVector:
    def test_increment_and_lookup(self):
        freq = FrequencyVector()
        freq.increment("a")
        freq.increment("a", 2)
        assert freq["a"] == 3
        assert freq["missing"] == 0

    def test_negative_increment_rejected(self):
        freq = FrequencyVector()
        with pytest.raises(ValueError):
            freq.increment("a", -1)

    def test_total_and_len(self):
        freq = FrequencyVector({"a": 2, "b": 3})
        assert freq.total == 5
        assert len(freq) == 2

    def test_most_common_ordering(self):
        freq = FrequencyVector({"a": 1, "b": 5, "c": 3})
        assert [key for key, _ in freq.most_common(2)] == ["b", "c"]

    def test_copy_is_independent(self):
        freq = FrequencyVector({"a": 1})
        clone = freq.copy()
        clone.increment("a")
        assert freq["a"] == 1
        assert clone["a"] == 2

    def test_contains_and_iteration(self):
        freq = FrequencyVector({"a": 1, "b": 2})
        assert "a" in freq
        assert set(iter(freq)) == {"a", "b"}


class TestStream:
    def test_exact_frequencies_counts_arrivals(self):
        a, b = Element(key="a"), Element(key="b")
        stream = Stream(arrivals=[a, b, a, a])
        freq = stream.frequencies()
        assert freq["a"] == 3
        assert freq["b"] == 1

    def test_prefix_and_suffix_partition_the_stream(self):
        elements = [Element(key=i) for i in range(10)]
        stream = Stream(arrivals=elements)
        prefix = stream.prefix(4)
        suffix = stream.suffix(4)
        assert len(prefix) == 4
        assert len(suffix) == 6
        assert [e.key for e in prefix] + [e.key for e in suffix] == list(range(10))

    def test_prefix_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Stream(arrivals=[]).prefix(-1)

    def test_distinct_elements_preserve_first_appearance_order(self):
        a, b = Element(key="a"), Element(key="b")
        stream = Stream(arrivals=[b, a, b, a])
        assert [e.key for e in stream.distinct_elements()] == ["b", "a"]

    def test_append_and_extend(self):
        stream = Stream()
        stream.append(Element(key=1))
        stream.extend([Element(key=2), Element(key=3)])
        assert len(stream) == 3
        assert stream[2].key == 3


class TestStreamPrefix:
    def test_training_arrays_are_aligned(self, toy_prefix):
        keys, features, frequencies = toy_prefix.training_arrays()
        assert keys == ["a", "b", "c", "d"]
        np.testing.assert_allclose(frequencies, [6, 5, 1, 2])
        assert features.shape == (4, 1)
        np.testing.assert_allclose(features.ravel(), [0.0, 0.1, 5.0, 5.1])

    def test_training_arrays_without_features(self):
        prefix = StreamPrefix(arrivals=[Element(key="x"), Element(key="x")])
        keys, features, frequencies = prefix.training_arrays()
        assert keys == ["x"]
        assert features.shape == (1, 0)
        np.testing.assert_allclose(frequencies, [2.0])

    def test_empirical_frequencies_alias(self, toy_prefix):
        assert toy_prefix.empirical_frequencies()["a"] == 6


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
def test_exact_frequencies_match_manual_count(keys):
    elements = [Element(key=key) for key in keys]
    freq = exact_frequencies(elements)
    assert freq.total == len(keys)
    for key in set(keys):
        assert freq[key] == keys.count(key)
