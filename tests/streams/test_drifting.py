"""The piecewise-Zipf drifting workload.

Fences: per-segment distributions are valid and genuinely different
(rotation moves the heavy ranks onto previously-cold keys), features
encode the *initial* rank and stay put under rotation (that staleness is
the whole point — it is what a drift detector must catch), and
generation is deterministic under a seed.
"""

import numpy as np
import pytest

from repro.streams.stream import Stream, StreamPrefix
from repro.streams.synthetic import DriftingStreamGenerator, DriftingZipfConfig


def small_config(**overrides):
    defaults = dict(
        universe_size=64, segment_length=500, num_segments=3, seed=42
    )
    defaults.update(overrides)
    return DriftingZipfConfig(**defaults)


class TestConfig:
    def test_defaults_validate(self):
        config = DriftingZipfConfig()
        assert config.total_length == 40_000
        assert config.change_points == [10_000, 20_000, 30_000]
        assert config.effective_rotation == 256

    @pytest.mark.parametrize(
        "overrides",
        [
            {"universe_size": 1},
            {"alpha": 0.0},
            {"segment_length": 0},
            {"num_segments": 0},
            {"rotation": -1},
            {"rotation": 64},
            {"feature_dim": 0},
            {"feature_noise": -0.1},
        ],
    )
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ValueError):
            small_config(**overrides)

    def test_explicit_rotation_wins(self):
        assert small_config(rotation=5).effective_rotation == 5

    def test_zero_rotation_means_stationary(self):
        generator = DriftingStreamGenerator(small_config(rotation=0))
        np.testing.assert_array_equal(
            generator.segment_permutation(0), generator.segment_permutation(2)
        )


class TestDistributions:
    def test_probabilities_are_distributions(self):
        generator = DriftingStreamGenerator(small_config())
        for segment in range(3):
            p = generator.key_probabilities(segment)
            assert p.shape == (64,)
            assert (p > 0).all()
            assert p.sum() == pytest.approx(1.0)

    def test_rotation_is_a_relabeling_not_a_reshaping(self):
        """Each segment has the same sorted probability profile — only
        the assignment of probabilities to keys moves."""
        generator = DriftingStreamGenerator(small_config())
        base = np.sort(generator.key_probabilities(0))
        for segment in (1, 2):
            np.testing.assert_allclose(
                np.sort(generator.key_probabilities(segment)), base
            )

    def test_segments_differ_in_total_variation(self):
        generator = DriftingStreamGenerator(small_config())
        p0 = generator.key_probabilities(0)
        p2 = generator.key_probabilities(2)
        tv = 0.5 * np.abs(p0 - p2).sum()
        assert tv > 0.3

    def test_segment_of_arrival_tracks_change_points(self):
        generator = DriftingStreamGenerator(small_config())
        assert generator.segment_of_arrival(0) == 0
        assert generator.segment_of_arrival(499) == 0
        assert generator.segment_of_arrival(500) == 1
        assert generator.segment_of_arrival(1499) == 2


class TestGeneration:
    def test_prefix_and_stream_shapes(self):
        generator = DriftingStreamGenerator(small_config())
        prefix, stream = generator.generate_prefix_and_stream()
        assert isinstance(prefix, StreamPrefix)
        assert isinstance(stream, Stream)
        assert len(prefix.arrivals) == 500
        assert len(stream.arrivals) == 1500

    def test_deterministic_under_seed(self):
        first = DriftingStreamGenerator(small_config()).generate_stream()
        second = DriftingStreamGenerator(small_config()).generate_stream()
        assert [e.key for e in first.arrivals] == [e.key for e in second.arrivals]

    def test_features_encode_initial_rank_and_do_not_rotate(self):
        """The same key carries the same features in every segment,
        even after the permutation moved its rank — stale by design."""
        generator = DriftingStreamGenerator(small_config(feature_noise=0.0))
        by_key = {}
        for segment in range(3):
            for element in generator.generate_segment(segment, 400).arrivals:
                seen = by_key.setdefault(element.key, element.features)
                assert tuple(seen) == tuple(element.features)
        config = generator.config
        example = next(iter(by_key.values()))
        assert len(example) == config.feature_dim

    def test_heavy_keys_migrate_between_segments(self):
        generator = DriftingStreamGenerator(small_config())
        def heavy(segment):
            counts = {}
            for element in generator.generate_segment(segment, 2000).arrivals:
                counts[element.key] = counts.get(element.key, 0) + 1
            return max(counts, key=counts.get)
        assert heavy(0) != heavy(2)

    def test_universe_covers_every_key_once(self):
        generator = DriftingStreamGenerator(small_config())
        universe = generator.universe
        assert len(universe) == 64
        assert len({element.key for element in universe}) == 64
