"""Tests for the synthetic workload generator (paper Section 6.1)."""

import numpy as np
import pytest

from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


class TestSyntheticConfig:
    def test_group_sizes_grow_exponentially(self):
        config = SyntheticConfig(num_groups=4, smallest_group_exponent=2)
        assert config.group_sizes == [8, 16, 32, 64]
        assert config.universe_size == 120

    def test_default_prefix_length_matches_paper(self):
        config = SyntheticConfig(num_groups=10)
        assert config.default_prefix_length == 10 * 2**10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_groups=0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_groups=3, fraction_seen=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_groups=3, fraction_seen=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(num_groups=3, feature_dim=0)


class TestSyntheticGenerator:
    def test_universe_has_expected_size_and_features(self):
        generator = SyntheticGenerator(SyntheticConfig(num_groups=3, seed=0))
        universe = generator.universe
        assert len(universe) == SyntheticConfig(num_groups=3).universe_size
        assert all(len(element.features) == 2 for element in universe)

    def test_group_membership_is_consistent(self):
        generator = SyntheticGenerator(SyntheticConfig(num_groups=3, seed=0))
        for group_index in range(3):
            members = generator.group_members(group_index)
            assert all(generator.group_of(m.key) == group_index for m in members)

    def test_group_probabilities_proportional_to_inverse_rank(self):
        generator = SyntheticGenerator(SyntheticConfig(num_groups=4, seed=0))
        probabilities = generator.group_probabilities
        expected = np.array([1.0, 1 / 2, 1 / 3, 1 / 4])
        np.testing.assert_allclose(probabilities, expected / expected.sum())

    def test_prefix_respects_fraction_seen(self):
        config = SyntheticConfig(num_groups=5, fraction_seen=0.3, seed=1)
        generator = SyntheticGenerator(config)
        prefix = generator.generate_prefix(5000)
        distinct = set(prefix.distinct_keys())
        # The prefix can never contain more than fraction_seen of each group
        # (rounded per group).
        for group_index in range(config.num_groups):
            members = {m.key for m in generator.group_members(group_index)}
            eligible_cap = max(1, int(round(0.3 * len(members))))
            assert len(distinct & members) <= eligible_cap

    def test_stream_can_contain_any_element(self):
        config = SyntheticConfig(num_groups=3, fraction_seen=0.2, seed=2)
        generator = SyntheticGenerator(config)
        stream = generator.generate_stream(4000)
        distinct = set(e.key for e in stream)
        # With enough arrivals, the stream should reach elements outside the
        # prefix-eligible fraction of at least one group.
        assert len(distinct) > 0.2 * config.universe_size

    def test_smaller_groups_are_heavier(self):
        config = SyntheticConfig(num_groups=5, seed=3)
        generator = SyntheticGenerator(config)
        stream = generator.generate_stream(20_000)
        frequencies = stream.frequencies()
        group_totals = np.zeros(config.num_groups)
        for key, count in frequencies.items():
            group_totals[generator.group_of(key)] += count
        per_element = group_totals / np.array(config.group_sizes)
        # Elements of the first (smallest) group are the heavy hitters.
        assert per_element[0] == per_element.max()

    def test_prefix_and_stream_multiplier(self):
        generator = SyntheticGenerator(SyntheticConfig(num_groups=3, seed=4))
        prefix, stream = generator.generate_prefix_and_stream(
            prefix_length=100, stream_multiplier=5
        )
        assert len(prefix) == 100
        assert len(stream) == 500

    def test_reproducibility_with_seed(self):
        first = SyntheticGenerator(SyntheticConfig(num_groups=3, seed=9))
        second = SyntheticGenerator(SyntheticConfig(num_groups=3, seed=9))
        prefix_one = first.generate_prefix(50)
        prefix_two = second.generate_prefix(50)
        assert [e.key for e in prefix_one] == [e.key for e in prefix_two]

    def test_default_prefix_length_used_when_omitted(self):
        config = SyntheticConfig(num_groups=3, seed=5)
        generator = SyntheticGenerator(config)
        prefix = generator.generate_prefix()
        assert len(prefix) == config.default_prefix_length
