"""Tests for the Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.streams.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_weights_sum_to_one(self):
        weights = zipf_weights(100, exponent=1.0)
        assert weights.shape == (100,)
        assert np.isclose(weights.sum(), 1.0)

    def test_weights_are_decreasing(self):
        weights = zipf_weights(50, exponent=1.2)
        assert np.all(np.diff(weights) <= 0)

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, exponent=0.0)
        np.testing.assert_allclose(weights, np.full(10, 0.1))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, exponent=-1.0)

    def test_ratio_matches_power_law(self):
        weights = zipf_weights(1000, exponent=0.8)
        # p_1 / p_10 should equal 10^0.8.
        assert np.isclose(weights[0] / weights[9], 10**0.8, rtol=1e-9)


class TestZipfSampler:
    def test_samples_within_support(self, rng):
        sampler = ZipfSampler(num_items=20, exponent=1.0, rng=rng)
        draws = sampler.sample(1000)
        assert draws.min() >= 0
        assert draws.max() < 20

    def test_rank_zero_is_most_frequent(self, rng):
        sampler = ZipfSampler(num_items=50, exponent=1.0, rng=rng)
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=50)
        assert counts[0] == counts.max()

    def test_expected_counts_scale_with_arrivals(self):
        sampler = ZipfSampler(num_items=10, exponent=1.0)
        expected = sampler.expected_counts(1000)
        assert np.isclose(expected.sum(), 1000)

    def test_negative_sample_size_rejected(self):
        sampler = ZipfSampler(num_items=5)
        with pytest.raises(ValueError):
            sampler.sample(-1)

    def test_sample_one_returns_int(self, rng):
        sampler = ZipfSampler(num_items=5, rng=rng)
        assert isinstance(sampler.sample_one(), int)

    def test_reproducible_with_seeded_rng(self):
        first = ZipfSampler(10, rng=np.random.default_rng(3)).sample(100)
        second = ZipfSampler(10, rng=np.random.default_rng(3)).sample(100)
        np.testing.assert_array_equal(first, second)


@given(
    num_items=st.integers(min_value=1, max_value=200),
    exponent=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_zipf_weights_always_form_distribution(num_items, exponent):
    weights = zipf_weights(num_items, exponent)
    assert np.all(weights >= 0)
    assert np.isclose(weights.sum(), 1.0)
