"""End-to-end integration tests across subsystems.

These tests assemble the full pipeline the way the paper's evaluation does —
generate a workload, train the learned scheme, stream the remaining data,
and compare against the conventional baselines — and assert the qualitative
relationships the paper reports (opt-hash ≪ count-min at small memory,
errors shrink with memory, the adaptive extension tracks unseen elements).
"""

import numpy as np
import pytest

from repro import (
    CountMinSketch,
    LearnedCountMinSketch,
    OptHashConfig,
    train_opt_hash,
)
from repro.evaluation.metrics import average_absolute_error, expected_magnitude_error
from repro.ml.text import QueryFeaturizer
from repro.sketches.learned_cms import IdealHeavyHitterOracle
from repro.streams.querylog import QueryLogConfig, QueryLogGenerator
from repro.streams.stream import Element
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


@pytest.fixture(scope="module")
def query_dataset():
    config = QueryLogConfig(
        num_unique_queries=400,
        num_days=3,
        arrivals_per_day=2000,
        zipf_exponent=0.8,
        daily_churn_fraction=0.01,
        seed=42,
    )
    return QueryLogGenerator(config).generate_dataset()


class TestSyntheticEndToEnd:
    def test_opt_hash_beats_count_min_on_synthetic_stream(self):
        generator = SyntheticGenerator(
            SyntheticConfig(num_groups=5, fraction_seen=0.6, seed=3)
        )
        prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=5)

        training = train_opt_hash(
            prefix, OptHashConfig(num_buckets=12, lam=0.5, solver="bcd", seed=3)
        )
        opt_hash = training.estimator
        num_total_buckets = 12 + training.scheme.num_stored_ids
        count_min = CountMinSketch.from_total_buckets(num_total_buckets, depth=2, seed=3)

        count_min.update_many(prefix)
        for element in stream:
            opt_hash.update(element)
            count_min.update(element)

        truth = prefix.frequencies()
        for element in stream:
            truth.increment(element.key)
        lookup = {element.key: element for element in generator.universe}

        opt_error = average_absolute_error(opt_hash, truth, element_lookup=lookup)
        cms_error = average_absolute_error(count_min, truth, element_lookup=lookup)
        assert opt_error < cms_error

    def test_adaptive_estimator_tracks_unseen_elements(self):
        generator = SyntheticGenerator(
            SyntheticConfig(num_groups=4, fraction_seen=0.3, seed=5)
        )
        prefix, stream = generator.generate_prefix_and_stream(stream_multiplier=5)
        static = train_opt_hash(
            prefix, OptHashConfig(num_buckets=8, lam=0.5, solver="bcd", seed=5)
        ).estimator
        adaptive = train_opt_hash(
            prefix,
            OptHashConfig(
                num_buckets=8, lam=0.5, solver="bcd", adaptive=True,
                expected_distinct=2000, seed=5,
            ),
        ).estimator
        for element in stream:
            static.update(element)
            adaptive.update(element)

        prefix_keys = set(prefix.distinct_keys())
        unseen = [
            element
            for element in stream.distinct_elements()
            if element.key not in prefix_keys
        ]
        assert unseen, "the stream should contain elements outside the prefix"
        truth = stream.frequencies()
        adaptive_error = np.mean(
            [abs(adaptive.estimate(e) - truth[e.key]) for e in unseen]
        )
        static_error = np.mean(
            [abs(static.estimate(e) - truth[e.key]) for e in unseen]
        )
        # The adaptive extension actually counts unseen arrivals, so it should
        # not be (much) worse than the static estimator on unseen elements.
        assert adaptive_error <= static_error * 1.5 + 5.0


class TestQueryLogEndToEnd:
    def test_opt_hash_beats_baselines_on_query_log(self, query_dataset):
        prefix = query_dataset.prefix()
        featurizer_model = QueryFeaturizer(vocabulary_size=60)
        featurizer_model.fit([e.key for e in prefix.distinct_elements()])

        total_buckets = 250  # 1 KB budget
        num_stored = int(round(total_buckets / 1.3))
        num_buckets = total_buckets - num_stored
        training = train_opt_hash(
            prefix,
            OptHashConfig(
                num_buckets=num_buckets,
                lam=1.0,
                solver="dp",
                classifier="cart",
                classifier_options={"max_depth": 8},
                max_stored_elements=num_stored,
                seed=0,
            ),
            featurizer=lambda e: featurizer_model.transform_one(str(e.key)),
        )
        opt_hash = training.estimator

        final_day = len(query_dataset.days) - 1
        truth = query_dataset.cumulative_frequencies(final_day)
        oracle = IdealHeavyHitterOracle.from_frequencies(dict(truth.items()), 50)
        lcms = LearnedCountMinSketch(
            total_buckets=total_buckets, num_heavy_buckets=50, oracle=oracle, depth=1, seed=0
        )
        cms = CountMinSketch.from_total_buckets(total_buckets, depth=2, seed=0)

        cms.update_many(query_dataset.days[0])
        lcms.update_many(query_dataset.days[0])
        for element in query_dataset.arrivals_after_prefix(final_day):
            opt_hash.update(element)
            cms.update(element)
            lcms.update(element)

        keys = list(truth.keys())
        opt_hash.scheme.precompute([Element(key=key) for key in keys])
        opt_avg = average_absolute_error(opt_hash, truth)
        cms_avg = average_absolute_error(cms, truth)
        lcms_avg = average_absolute_error(lcms, truth)
        opt_exp = expected_magnitude_error(opt_hash, truth)
        cms_exp = expected_magnitude_error(cms, truth)

        # The orderings reported in the paper at low memory budgets.
        assert opt_avg < lcms_avg
        assert opt_avg < cms_avg
        assert lcms_avg <= cms_avg
        assert opt_exp < cms_exp

    def test_memory_accounting_consistent_across_estimators(self, query_dataset):
        total_buckets = 250
        cms = CountMinSketch.from_total_buckets(total_buckets, depth=1, seed=0)
        oracle = IdealHeavyHitterOracle([])
        lcms = LearnedCountMinSketch(
            total_buckets=total_buckets, num_heavy_buckets=20, oracle=oracle, depth=1
        )
        assert cms.size_bytes == total_buckets * 4
        assert lcms.size_bytes == total_buckets * 4
