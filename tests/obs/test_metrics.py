"""Unit tests of the metrics registry: semantics, exposition, round-trip."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM


# ----------------------------------------------------------------------
# counter / gauge / histogram semantics
# ----------------------------------------------------------------------
def test_counter_monotone():
    counter = Counter("c_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 3.5


def test_counter_inc_to_is_set_to_max():
    counter = Counter("c_total")
    counter.inc_to(10)
    assert counter.value == 10
    counter.inc_to(7)  # stale reading: no-op, never goes down
    assert counter.value == 10
    counter.inc_to(12)
    assert counter.value == 12


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(4)
    assert gauge.value == 3.0


def test_histogram_buckets_and_totals():
    hist = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
    for value in (0.0005, 0.001, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(5.5515)
    # observe(bound) lands in that bucket (le is an inclusive upper bound)
    cumulative = dict(hist.cumulative_buckets())
    assert cumulative["0.001"] == 2
    assert cumulative["0.01"] == 2
    assert cumulative["0.1"] == 3
    assert cumulative["1"] == 4
    assert cumulative["+Inf"] == 5


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0, 2.0))


def test_histogram_timer_observes_duration():
    hist = Histogram("h_seconds")
    with hist.time():
        pass
    assert hist.count == 1
    assert 0.0 <= hist.sum < 1.0


def test_default_buckets_are_strictly_increasing():
    for buckets in (DEFAULT_LATENCY_BUCKETS, DEFAULT_SIZE_BUCKETS):
        assert all(b2 > b1 for b1, b2 in zip(buckets, buckets[1:]))
    assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
    assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)


# ----------------------------------------------------------------------
# labels
# ----------------------------------------------------------------------
def test_labels_create_and_cache_children():
    counter = Counter("req_total", label_names=("op",))
    counter.labels(op="ingest").inc(3)
    counter.labels(op="estimate").inc()
    assert counter.labels(op="ingest") is counter.labels(op="ingest")
    assert counter.labels(op="ingest").value == 3
    assert counter.labels(op="estimate").value == 1


def test_labels_validation():
    counter = Counter("req_total", label_names=("op",))
    with pytest.raises(ValueError):
        counter.labels()  # missing
    with pytest.raises(ValueError):
        counter.labels(op="x", extra="y")  # extraneous
    unlabeled = Counter("plain_total")
    with pytest.raises(ValueError):
        unlabeled.labels(op="x")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    first = registry.counter("a_total", "help text")
    second = registry.counter("a_total")
    assert first is second


def test_registry_rejects_type_and_label_conflicts():
    registry = MetricsRegistry()
    registry.counter("a_total")
    with pytest.raises(ValueError):
        registry.gauge("a_total")
    registry.counter("b_total", labels=("op",))
    with pytest.raises(ValueError):
        registry.counter("b_total", labels=("shard",))


def test_registry_validates_names():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("bad name")
    with pytest.raises(ValueError):
        registry.counter("ok_total", labels=("bad-label",))


def test_disabled_registry_hands_out_null_metrics():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a_total") is NULL_COUNTER
    assert registry.gauge("g") is NULL_GAUGE
    assert registry.histogram("h") is NULL_HISTOGRAM
    # every call is a no-op, including labels() and the timer
    NULL_COUNTER.labels(op="x").inc(5)
    NULL_GAUGE.set(3)
    with NULL_HISTOGRAM.time():
        pass
    assert NULL_COUNTER.value == 0.0
    assert registry.exposition() == ""
    assert registry.samples() == {}


def test_counter_thread_safety():
    counter = Counter("c_total")
    barrier = threading.Barrier(4)

    def work():
        barrier.wait()
        for _ in range(10_000):
            counter.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 40_000


# ----------------------------------------------------------------------
# exposition format + round-trip
# ----------------------------------------------------------------------
def test_exposition_format():
    registry = MetricsRegistry()
    registry.counter("req_total", "Requests.", labels=("op",)).labels(op="ingest").inc(
        7
    )
    registry.gauge("depth", "Buffer depth.").set(3)
    text = registry.exposition()
    assert "# HELP req_total Requests.\n" in text
    assert "# TYPE req_total counter\n" in text
    assert 'req_total{op="ingest"} 7\n' in text
    assert "# TYPE depth gauge\n" in text
    assert "depth 3\n" in text


def test_exposition_histogram_series():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    text = registry.exposition()
    assert 'lat_seconds_bucket{le="0.1"} 1\n' in text
    assert 'lat_seconds_bucket{le="1"} 2\n' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
    assert "lat_seconds_count 3\n" in text
    assert "lat_seconds_sum 2.55" in text


def test_exposition_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c_total", labels=("path",)).labels(path='a"b\\c\nd').inc()
    text = registry.exposition()
    assert 'c_total{path="a\\"b\\\\c\\nd"} 1\n' in text


def test_samples_match_parsed_exposition_exactly():
    registry = MetricsRegistry()
    registry.counter("req_total", "Requests.", labels=("op",)).labels(op="ingest").inc(
        41
    )
    registry.gauge("depth").set(2.5)
    hist = registry.histogram("lat_seconds", buckets=(0.001, 0.1, 10.0))
    for value in (0.0001, 0.05, 0.0999, 3.0, 100.0):
        hist.observe(value)
    assert parse_exposition(registry.exposition()) == registry.samples()


def test_parse_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("just-one-token\n")
