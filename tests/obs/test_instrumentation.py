"""Instrumentation plumbing: session stages, replay, sharding, worker pool.

One registry threads through the whole tree (session → sharded estimator →
worker pool); these tests assert each layer actually lands its series, and
that the un-instrumented path records nothing.
"""

import numpy as np
import pytest

import repro.api as api
from repro.core.pipeline import replay
from repro.core.sharding import ShardedEstimator
from repro.obs import MetricsRegistry

CMS_SPEC = {"kind": "count_min", "total_buckets": 4096, "depth": 2, "seed": 3}
SHM_SPEC = {
    "kind": "sharded",
    "inner": CMS_SPEC,
    "num_shards": 2,
    "mode": "round-robin",
    "executor": "process",
    "transport": "shm",
}


def test_session_records_stage_timings(tmp_path):
    registry = MetricsRegistry()
    session = api.open(CMS_SPEC, metrics=registry)
    keys = np.arange(1000, dtype=np.int64)
    session.ingest(keys)
    session.estimate(keys[:10])
    session.drain()
    session.save(str(tmp_path / "s.snap"))
    stage = registry.get("repro_session_stage_seconds")
    assert stage.labels(stage="ingest").count == 1
    assert stage.labels(stage="estimate").count == 1
    assert stage.labels(stage="snapshot").count == 1
    # plain CMS has no drain(); only sharded estimators time that stage
    assert stage.labels(stage="drain").count == 0


def test_uninstrumented_session_registers_nothing():
    registry = MetricsRegistry()
    session = api.open(CMS_SPEC)  # no metrics=
    session.ingest(np.arange(100, dtype=np.int64))
    assert registry.samples() == {}
    assert session._metrics is None


def test_replay_records_per_chunk_metrics():
    registry = MetricsRegistry()
    estimator = api.open(CMS_SPEC).estimator
    n = replay(
        estimator, np.arange(10_000, dtype=np.int64), batch_size=4096, metrics=registry
    )
    assert n == 10_000
    assert registry.get("repro_replay_keys_total").value == 10_000
    assert registry.get("repro_replay_chunk_seconds").count == 3  # ceil(10000/4096)


def test_sharded_routing_and_skew_metrics():
    registry = MetricsRegistry()
    sharded = ShardedEstimator(CMS_SPEC, num_shards=4).instrument(registry)
    try:
        sharded.update_batch(np.arange(8_000, dtype=np.int64))
        routing = registry.get("repro_sharded_routing_seconds")
        assert routing.count == 1
        per_shard = registry.get("repro_sharded_keys_total")
        total = sum(
            per_shard.labels(shard=str(index)).value for index in range(4)
        )
        assert total == 8_000
        sharded.sync_metrics()
        assert registry.get("repro_sharded_pending_batches").value == 0
    finally:
        sharded.close()


def test_restored_session_cascades_instrumentation(tmp_path):
    path = str(tmp_path / "s.snap")
    api.open(CMS_SPEC).save(path)
    registry = MetricsRegistry()
    session = api.load(path, metrics=registry)
    session.ingest(np.arange(500, dtype=np.int64))
    stage = registry.get("repro_session_stage_seconds")
    assert stage.labels(stage="ingest").count == 1


def test_worker_pool_metrics_via_shm_sharded():
    registry = MetricsRegistry()
    sharded = ShardedEstimator(
        CMS_SPEC,
        num_shards=2,
        mode="round-robin",
        executor="process",
        transport="shm",
    ).instrument(registry)
    try:
        sharded.warm_up()
        keys = np.arange(20_000, dtype=np.int64)
        sharded.update_batch(keys)
        sharded.drain()
        sharded.sync_metrics()
        samples = registry.samples()
        submitted = sum(
            value
            for name, value in samples.items()
            if name.startswith("repro_pool_submitted_batches_total")
        )
        acked = sum(
            value
            for name, value in samples.items()
            if name.startswith("repro_pool_acked_batches_total")
        )
        assert submitted >= 2  # one batch per shard at minimum
        assert acked == submitted  # drained
        assert samples["repro_sharded_pending_batches"] == 0
        assert registry.get("repro_pool_queue_wait_seconds").count >= 2
        assert registry.get("repro_pool_worker_deaths_total").value == 0
        # pool-level point-in-time stats agree
        stats = sharded._worker_pool.stats()
        assert sum(w["acked"] for w in stats["workers"]) == acked
        assert all(w["scatter_seconds"] >= 0 for w in stats["workers"])
    finally:
        sharded.close()
    # after close the workers are gone; estimates still answer
    assert sharded.estimate_batch(np.array([5], dtype=np.int64))[0] >= 1
