"""Unit tests of the structured JSON-lines logger and its stage timers."""

import io
import json

import pytest

from repro.obs import Histogram, StructuredLogger


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_one_json_object_per_line():
    stream = io.StringIO()
    log = StructuredLogger("test", stream, clock=lambda: 123.456)
    log.info("started", port=8080)
    log.error("boom", detail="bad")
    first, second = _lines(stream)
    assert first == {
        "ts": 123.456,
        "level": "info",
        "logger": "test",
        "event": "started",
        "port": 8080,
    }
    assert second["level"] == "error"
    assert second["detail"] == "bad"


def test_disabled_logger_is_a_noop():
    log = StructuredLogger("test")  # no stream
    assert not log.enabled
    log.info("ignored", anything=object())  # non-JSON field: still no error


def test_rejects_unknown_level():
    log = StructuredLogger("test", io.StringIO())
    with pytest.raises(ValueError):
        log.log("loud", "event")


def test_non_json_fields_are_stringified():
    stream = io.StringIO()
    log = StructuredLogger("test", stream)
    log.info("event", obj={1, 2})  # sets are not JSON; default=str covers it
    (record,) = _lines(stream)
    assert isinstance(record["obj"], str)


def test_stage_timer_logs_and_observes():
    stream = io.StringIO()
    log = StructuredLogger("test", stream)
    hist = Histogram("stage_seconds")
    with log.stage("drain", histogram=hist, path="/x") as timer:
        pass
    assert hist.count == 1
    assert timer.seconds is not None and timer.seconds >= 0
    (record,) = _lines(stream)
    assert record["event"] == "drain"
    assert record["level"] == "info"
    assert record["path"] == "/x"
    assert record["seconds"] == pytest.approx(timer.seconds, abs=1e-5)


def test_stage_timer_logs_error_and_propagates():
    stream = io.StringIO()
    log = StructuredLogger("test", stream)
    with pytest.raises(RuntimeError, match="kaboom"):
        with log.stage("snapshot"):
            raise RuntimeError("kaboom")
    (record,) = _lines(stream)
    assert record["level"] == "error"
    assert record["error"] == "RuntimeError: kaboom"
    assert "seconds" in record
