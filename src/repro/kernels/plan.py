"""Per-sketch kernel plans: packed hash parameters + prepared key batches.

A :class:`KernelPlan` is the bridge between a sketch's drawn hash functions
(:class:`~repro.sketches.hashing.UniversalHash` /
:class:`~repro.sketches.hashing.TabulationHash` objects) and the flat arrays
a compiled kernel consumes:

* the NumPy reference backend uses :attr:`KernelPlan.hashes` directly — its
  code is the pre-kernels sketch code, moved, so bit-identity with history
  is by construction;
* the native/Numba backends use :meth:`KernelPlan.packed` — per-level
  Carter–Wegman coefficients (``a``, ``b``, ``seeds``) or stacked
  tabulation tables — plus a :class:`PreparedKeys` view of the key batch.

Key preparation mirrors the dispatch of
:func:`repro.sketches.hashing.fingerprint64_batch` exactly: integer batches
travel as raw ``uint64`` (two's-complement masked) and are fingerprinted
*inside* the fused kernel; string/object batches are fingerprinted here with
the existing column-parallel FNV-1a (one ``(depth, n)`` matrix per seed set)
because the bytes of a Python ``repr`` cannot cross into C cheaply; mixed
batches fall back to the NumPy backend for that one call.  Every path
produces bit-identical hash values.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

__all__ = ["KernelPlan", "PreparedKeys", "SIGN_XOR"]

_MASK64 = (1 << 64) - 1

#: Scheme-specific XOR applied to a level's seed to derive its sign seed
#: (see ``UniversalHash.sign`` / ``TabulationHash.sign``).
SIGN_XOR = {"universal": 0x5A5A5A5A, "tabulation": 0x3C3C3C3C}


class PreparedKeys:
    """One normalized key batch, ready for a compiled kernel.

    ``mode`` is ``"ints"`` (raw uint64 keys, fingerprint in-kernel),
    ``"repr"`` (per-level fingerprint matrices computed host-side), or
    ``None`` — a mixed int/non-int batch the compiled backends refuse and
    route to the NumPy reference implementation instead.
    """

    __slots__ = ("plan", "mode", "n", "int_keys", "key_list", "_fps_cache")

    def __init__(self, plan: "KernelPlan", keys) -> None:
        self.plan = plan
        self.int_keys: Optional[np.ndarray] = None
        self.key_list: Optional[list] = None
        self._fps_cache = {}
        if isinstance(keys, np.ndarray) and keys.ndim == 1 and keys.dtype.kind in "iu":
            self.mode: Optional[str] = "ints"
            self.n = keys.shape[0]
            # Two's-complement wrap of signed dtypes matches int(key) & MASK64.
            self.int_keys = np.ascontiguousarray(
                keys.view(np.uint64)
                if keys.dtype == np.int64
                else keys.astype(np.uint64)
            )
            return
        from repro.sketches.hashing import _is_int_key

        key_list = keys.tolist() if isinstance(keys, np.ndarray) else list(keys)
        self.n = len(key_list)
        int_flags = [_is_int_key(key) for key in key_list]
        if self.n and all(int_flags):
            self.mode = "ints"
            self.int_keys = np.fromiter(
                ((int(key) & _MASK64) for key in key_list), np.uint64, self.n
            )
        elif not any(int_flags):
            self.mode = "repr"
            self.key_list = key_list
        else:
            self.mode = None  # mixed batch: NumPy fallback

    def fps(self, *, sign: bool = False) -> np.ndarray:
        """The ``(depth, n)`` per-level fingerprint matrix (``repr`` mode).

        ``sign=True`` fingerprints with the scheme's sign-seed XOR applied,
        as the scalar ``sign()`` paths do.  Matrices are cached per batch so
        an ingest that needs both position and sign fingerprints pays the
        FNV pass once per seed set.
        """
        if sign in self._fps_cache:
            return self._fps_cache[sign]
        from repro.sketches.hashing import _fingerprint_repr_batch

        plan = self.plan
        xor = SIGN_XOR[plan.scheme] if sign else 0
        matrix = np.empty((plan.depth, self.n), dtype=np.uint64)
        for level, seed in enumerate(plan.seed_list):
            matrix[level] = _fingerprint_repr_batch(self.key_list, seed ^ xor)
        self._fps_cache[sign] = matrix
        return matrix


class KernelPlan:
    """Packed hash-function state for one sketch instance.

    Built once at sketch construction/rehydration (the hash functions never
    change afterwards) and shared by every batch call.  Also owns the
    per-thread position scratch the NumPy reference kernels reuse between
    calls (the PR 4 micro-optimization, relocated here with the code).
    """

    __slots__ = (
        "hashes",
        "scheme",
        "depth",
        "output_range",
        "seed_list",
        "levels",
        "levels_col",
        "_scratch",
        "_packed",
    )

    def __init__(self, hashes: List, scheme: str) -> None:
        if scheme not in SIGN_XOR:
            raise ValueError(f"unknown hash scheme {scheme!r}")
        self.hashes = list(hashes)
        self.scheme = scheme
        self.depth = len(self.hashes)
        self.output_range = int(self.hashes[0].output_range) if self.hashes else 1
        self.seed_list = [int(h._seed) for h in self.hashes]
        self.levels = np.arange(self.depth)
        self.levels_col = self.levels[:, None]
        self._scratch = threading.local()
        self._packed = None

    # ------------------------------------------------------------------
    # compiled-backend views
    # ------------------------------------------------------------------
    def packed(self) -> dict:
        """Per-level parameters as contiguous uint64 arrays.

        ``{"seeds": (d,), "a": (d,), "b": (d,)}`` for the universal scheme;
        ``{"seeds": (d,), "tables": (d, 8, 256)}`` for tabulation.
        """
        if self._packed is None:
            seeds = np.asarray(self.seed_list, dtype=np.uint64)
            if self.scheme == "universal":
                self._packed = {
                    "seeds": seeds,
                    "a": np.asarray([h._a for h in self.hashes], dtype=np.uint64),
                    "b": np.asarray([h._b for h in self.hashes], dtype=np.uint64),
                }
            else:
                # Table entries are drawn in [0, 2^63) so the int64 → uint64
                # reinterpretation below is value-preserving.
                stacked = np.stack([h._tables for h in self.hashes])
                self._packed = {
                    "seeds": seeds,
                    "tables": np.ascontiguousarray(stacked.astype(np.uint64)),
                }
        return self._packed

    def prepare(self, keys) -> PreparedKeys:
        """Normalize a key batch for a compiled kernel (see PreparedKeys)."""
        return PreparedKeys(self, keys)

    # ------------------------------------------------------------------
    # NumPy-backend scratch (relocated from CountMinSketch._positions)
    # ------------------------------------------------------------------
    def position_scratch(self, n: int) -> np.ndarray:
        """A ``(depth, n)`` int64 view into a per-thread growable buffer.

        Each thread's view is consumed before its next call, so reuse is
        safe; growth is geometric to amortize reallocation.
        """
        scratch = self._scratch
        buffer = getattr(scratch, "buffer", None)
        if buffer is None or buffer.shape[1] < n:
            grown = n if buffer is None else max(n, 2 * buffer.shape[1])
            buffer = np.empty((self.depth, grown), dtype=np.int64)
            scratch.buffer = buffer
        return buffer[:, :n]
