"""The pure-NumPy reference kernels.

This is the hot-path code the sketches carried from PR 1 through PR 8,
relocated behind the :mod:`repro.kernels` dispatch surface — same
``hash_batch`` / ``sign_batch`` calls, same ``np.add.at`` scatters, same
per-thread position scratch.  It is the bit-identity baseline: every other
backend must reproduce these results exactly, and the fallback every
machine can run.

Op contract (shared by all backends; ``plan`` is a
:class:`~repro.kernels.plan.KernelPlan`, ``keys`` an already-normalized key
batch from ``as_key_batch``):

* ``cms_ingest(table, plan, keys, counts, conservative)`` — Count-Min
  scatter-add (order-replaying min/max logic when ``conservative``).
* ``cms_query(table, plan, keys)`` — min-over-levels gather, float64.
* ``cs_ingest(table, plan, keys, counts)`` — Count-Sketch signed scatter.
* ``cs_query(table, plan, keys)`` — median-over-levels of signed gathers.
* ``ams_ingest(counters, plan, keys, counts)`` — per-estimator signed sums.
* ``bloom_add / bloom_contains / bloom_observe(bits, plan, keys)`` — bit
  sets, vectorized membership, and in-order first-occurrence marking.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Reference implementation; always available."""

    name = "numpy"
    compiled = False

    # ------------------------------------------------------------------
    # shared position computation
    # ------------------------------------------------------------------
    def _positions(self, plan, keys) -> np.ndarray:
        """Per-level bucket positions as a (depth, n) scratch-backed view."""
        out = plan.position_scratch(len(keys))
        for level, h in enumerate(plan.hashes):
            out[level] = h.hash_batch(keys)
        return out

    # ------------------------------------------------------------------
    # Count-Min
    # ------------------------------------------------------------------
    def cms_ingest(self, table, plan, keys, counts, conservative: bool) -> None:
        positions = self._positions(plan, keys)
        if not conservative:
            for level in range(plan.depth):
                np.add.at(table[level], positions[level], counts)
            return
        levels = plan.levels
        for index in range(positions.shape[1]):
            count = counts[index]
            if count == 0:
                continue
            column = positions[:, index]
            current = table[levels, column]
            # Raising every counter to min+count equals `count` consecutive
            # conservative +1 updates of the same key.
            table[levels, column] = np.maximum(current, current.min() + count)

    def cms_query(self, table, plan, keys) -> np.ndarray:
        positions = self._positions(plan, keys)
        gathered = table[plan.levels_col, positions]
        return gathered.min(axis=0).astype(np.float64)

    # ------------------------------------------------------------------
    # Count Sketch
    # ------------------------------------------------------------------
    def cs_ingest(self, table, plan, keys, counts) -> None:
        for level, h in enumerate(plan.hashes):
            np.add.at(
                table[level],
                h.hash_batch(keys),
                h.sign_batch(keys) * counts,
            )

    def cs_query(self, table, plan, keys) -> np.ndarray:
        signed = np.stack(
            [
                h.sign_batch(keys) * table[level, h.hash_batch(keys)]
                for level, h in enumerate(plan.hashes)
            ]
        )
        return np.median(signed, axis=0)

    # ------------------------------------------------------------------
    # AMS
    # ------------------------------------------------------------------
    def ams_ingest(self, counters, plan, keys, counts) -> None:
        for index, h in enumerate(plan.hashes):
            counters[index] += int(np.dot(h.sign_batch(keys), counts))

    # ------------------------------------------------------------------
    # Bloom filter
    # ------------------------------------------------------------------
    def _bloom_positions(self, plan, keys) -> np.ndarray:
        return np.stack([h.hash_batch(keys) for h in plan.hashes])

    def bloom_add(self, bits, plan, keys) -> None:
        positions = self._bloom_positions(plan, keys)
        if positions.shape[1] == 0:
            return
        bits[positions.ravel()] = True

    def bloom_contains(self, bits, plan, keys) -> np.ndarray:
        positions = self._bloom_positions(plan, keys)
        if positions.shape[1] == 0:
            return np.zeros(0, dtype=bool)
        return bits[positions].all(axis=0)

    def bloom_observe(self, bits, plan, keys) -> np.ndarray:
        """In-order first-occurrence marking; True where the key was new."""
        positions = self._bloom_positions(plan, keys)
        n = positions.shape[1]
        new_flags = np.zeros(n, dtype=bool)
        for index in range(n):
            column = positions[:, index]
            if not bits[column].all():
                bits[column] = True
                new_flags[index] = True
        return new_flags
