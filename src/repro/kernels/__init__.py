"""repro.kernels — pluggable compute backends for the sketch hot paths.

Every table sketch boils down to the same three inner loops: hash a batch of
keys (splitmix64 / FNV fingerprint, then Carter–Wegman multiply-mod-Mersenne-61
or tabulation lookups), turn the hashes into table positions, and
gather/scatter counters.  This package makes *which implementation runs those
loops* a configuration choice, exactly like ``storage=`` made "where the
counters live" one:

* ``numpy`` — the pure-NumPy reference implementation (the code every PR
  since PR 1 shipped, relocated here verbatim).  Always available; the
  bit-identity baseline every other backend is tested against.
* ``native`` — a small C library (``_native.c``) compiled on demand with the
  system C compiler and driven through :mod:`ctypes`.  Fuses fingerprint +
  position computation + scatter-add into one pass per batch with no
  intermediate arrays, and releases the GIL while it runs.
* ``numba`` — the same fused kernels expressed as ``@njit(cache=True)``
  functions, available when :mod:`numba` is importable.

All backends are **bit-identical**: they implement the exact integer
recurrences of :mod:`repro.sketches.hashing`, so estimates, merges, and
serialized tables never depend on which backend produced them.  That is
enforced by ``tests/kernels/test_backend_equivalence.py`` across every
(backend × sketch × hash scheme × key type) combination.

Selection
---------
``backend="auto"`` (the default everywhere) picks the fastest available
backend (numba → native → numpy) and silently falls back to NumPy when no
compiler/Numba exists — it never raises.  Naming a backend explicitly
(``backend="native"``) raises :class:`~repro.errors.KernelError` when that
backend cannot be provided, **except** when rehydrating serialized state,
where the restore path falls back to NumPy with a ``RuntimeWarning`` so a
snapshot taken on a machine with the compiled path restores (bit-identically)
on one without it.

The environment variable ``REPRO_KERNELS_DISABLE`` (comma-separated backend
names, or ``all-compiled``) masks backends at resolve time — the hook the
fallback tests and the no-Numba CI leg use to prove clean degradation.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.kernels.plan import KernelPlan

__all__ = [
    "KernelError",
    "KernelPlan",
    "KernelDispatch",
    "BACKEND_NAMES",
    "BACKEND_SCHEMA",
    "available_backends",
    "backend_available",
    "default_backend",
    "get_backend",
    "resolve_backend",
    "bind",
]

#: Every selectable backend name, in ``auto`` preference order (compiled
#: paths first).  ``auto`` itself is a selection rule, not a backend.
BACKEND_NAMES = ("numba", "native", "numpy")

#: Schema fragment the kernel-capable sketches merge into their spec
#: schemas, mirroring ``repro.core.storage.STORAGE_SCHEMA``.  The registry
#: treats the presence of the ``backend`` field as the signal that a kind
#: supports kernel dispatch (``kind_supports_backend``).
BACKEND_SCHEMA = {
    "backend": {"type": "str", "choices": ("auto",) + BACKEND_NAMES},
}

_lock = threading.Lock()
_instances: Dict[str, object] = {}
_load_errors: Dict[str, str] = {}


def _disabled_names() -> frozenset:
    """Backends masked via ``REPRO_KERNELS_DISABLE`` (read per call).

    Reading the environment at resolve time (not import time) lets tests
    and subprocess harnesses flip availability without reloading modules.
    """
    raw = os.environ.get("REPRO_KERNELS_DISABLE", "")
    names = {part.strip() for part in raw.split(",") if part.strip()}
    if "all-compiled" in names:
        names |= {"numba", "native"}
    return frozenset(names)


def _load(name: str) -> Optional[object]:
    """Load (and cache) the backend singleton for ``name``; None if broken.

    A failed load is cached as unavailable with its reason — compiling the
    native library or importing Numba is attempted at most once per process.
    """
    if name in _instances:
        return _instances[name]
    if name in _load_errors:
        return None
    with _lock:
        if name in _instances:
            return _instances[name]
        if name in _load_errors:
            return None
        try:
            if name == "numpy":
                from repro.kernels.numpy_backend import NumpyBackend

                instance: object = NumpyBackend()
            elif name == "native":
                from repro.kernels.native_backend import NativeBackend

                instance = NativeBackend()
            elif name == "numba":
                from repro.kernels.numba_backend import NumbaBackend

                instance = NumbaBackend()
            else:  # pragma: no cover - callers validate names first
                raise KernelError(f"unknown kernel backend {name!r}")
        except KernelError:
            raise
        except Exception as error:  # compiler missing, import failure, ...
            _load_errors[name] = f"{type(error).__name__}: {error}"
            return None
        _instances[name] = instance
        return instance


def backend_available(name: str) -> bool:
    """Whether ``name`` can be provided right now (env mask respected)."""
    if name not in BACKEND_NAMES:
        return False
    if name in _disabled_names():
        return False
    return _load(name) is not None


def available_backends() -> Tuple[str, ...]:
    """The loadable backend names, in ``auto`` preference order."""
    return tuple(name for name in BACKEND_NAMES if backend_available(name))


def unavailable_reason(name: str) -> Optional[str]:
    """Why ``name`` is unavailable (None when it is available)."""
    if name not in BACKEND_NAMES:
        return f"unknown backend {name!r}"
    if name in _disabled_names():
        return "disabled via REPRO_KERNELS_DISABLE"
    if _load(name) is not None:
        return None
    return _load_errors.get(name, "failed to load")


def resolve_backend(requested: str = "auto", *, on_unavailable: str = "raise") -> str:
    """Map a requested backend name to the name that will actually run.

    ``"auto"`` returns the first available of :data:`BACKEND_NAMES` (NumPy
    is always available, so auto always resolves).  An explicit name
    resolves to itself when available; otherwise ``on_unavailable``
    decides: ``"raise"`` (default) raises :class:`KernelError`,
    ``"fallback"`` re-resolves as ``auto`` after emitting a
    ``RuntimeWarning`` — the restore-path behavior.
    """
    if requested == "auto":
        for name in BACKEND_NAMES:
            if backend_available(name):
                return name
        return "numpy"  # pragma: no cover - numpy import cannot fail here
    if requested not in BACKEND_NAMES:
        raise KernelError(
            f"unknown kernel backend {requested!r}; expected one of "
            f"{('auto',) + BACKEND_NAMES}"
        )
    if backend_available(requested):
        return requested
    reason = unavailable_reason(requested)
    if on_unavailable == "fallback":
        fallback = resolve_backend("auto")
        warnings.warn(
            f"kernel backend {requested!r} is unavailable on this machine "
            f"({reason}); falling back to {fallback!r} (bit-identical)",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    raise KernelError(
        f"kernel backend {requested!r} is unavailable: {reason} "
        "(use backend='auto' to fall back automatically)"
    )


def default_backend() -> str:
    """The backend ``auto`` resolves to right now."""
    return resolve_backend("auto")


def get_backend(name: str = "auto"):
    """The backend singleton for ``name`` (resolving ``auto``).

    Raises :class:`KernelError` for unknown or unavailable explicit names.
    """
    resolved = resolve_backend(name)
    instance = _load(resolved)
    if instance is None:  # resolved-but-masked race; re-resolve strictly
        raise KernelError(
            f"kernel backend {resolved!r} became unavailable: "
            f"{unavailable_reason(resolved)}"
        )
    return instance


def bind(
    requested: str,
    hashes: List,
    scheme: str,
    *,
    on_unavailable: str = "raise",
):
    """Resolve ``requested`` and build the hash plan for one sketch.

    Returns ``(backend, plan)`` — the pair every kernel-capable sketch
    stores at construction/rehydration time.  ``on_unavailable="fallback"``
    is the deserialization mode (warn + degrade to NumPy instead of
    refusing to restore).
    """
    backend = get_backend(resolve_backend(requested, on_unavailable=on_unavailable))
    return backend, KernelPlan(hashes, scheme)


class KernelDispatch:
    """Mixin for sketches whose hot paths run through a kernel backend.

    Expects ``self._hashes`` and ``self.hash_scheme`` to be set before
    :meth:`_init_kernels` is called.  Stores the *requested* backend on
    ``self.backend`` (what serializes, so ``"auto"`` stays portable) and the
    resolved backend/plan pair on ``self._kernel`` / ``self._plan``.
    """

    def _init_kernels(
        self, backend: str = "auto", *, on_unavailable: str = "raise"
    ) -> None:
        self.backend = backend
        self._kernel, self._plan = bind(
            backend, self._hashes, self.hash_scheme, on_unavailable=on_unavailable
        )

    @property
    def kernel_backend(self) -> str:
        """The backend actually executing this sketch's kernels."""
        return self._kernel.name

    def _backend_serial_state(self) -> dict:
        """Serialized-state fragment recording a non-default backend choice.

        ``"auto"`` is omitted so buffers written before this field existed
        and buffers written with the default remain byte-compatible.
        """
        return {} if self.backend == "auto" else {"backend": self.backend}

    def _backend_describe_params(self) -> dict:
        """Params fragment: the requested backend when explicitly pinned."""
        return {} if self.backend == "auto" else {"backend": self.backend}
