"""Numba backend: the fused kernels as ``@njit(cache=True)`` functions.

Importable only where :mod:`numba` is installed (the ``[fast]`` extra);
:func:`repro.kernels._load` treats the ImportError as "backend unavailable".
The kernels mirror ``_native.c`` loop for loop — splitmix64 fingerprinting,
exact Carter–Wegman multiply-mod-Mersenne-61 (32-bit limb decomposition, no
128-bit type in nopython mode), tabulation XOR-folds — so they are
bit-identical to both the C and the NumPy reference backends.

Numba typing note: every constant that touches uint64 values is a
``np.uint64`` up front.  Mixing uint64 with signed literals promotes to
float64 in nopython mode, which would silently break bit-identity; keeping
the arithmetic all-uint64 (with explicit ``np.int64`` casts at the counter
boundary) keeps it exact.
"""

from __future__ import annotations

import numpy as np

import numba  # noqa: F401  (availability probe)
from numba import njit

from repro.kernels.numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]

_U = np.uint64

_GOLD = _U(0x9E3779B97F4A7C15)
_MIX1 = _U(0xBF58476D1CE4E5B9)
_MIX2 = _U(0x94D049BB133111EB)
_P61 = _U((1 << 61) - 1)
_LO32 = _U(0xFFFFFFFF)
_BYTE = _U(0xFF)
_XOR_UNIVERSAL = _U(0x5A5A5A5A)
_XOR_TABULATION = _U(0x3C3C3C3C)
_S8, _S27, _S29, _S30, _S31, _S32, _S61 = (
    _U(8), _U(27), _U(29), _U(30), _U(31), _U(32), _U(61),
)
_ONE = _U(1)
_EIGHT = _U(8)

_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_TABLES = np.empty((0, 8, 256), dtype=np.uint64)
_EMPTY_FPS = np.empty((0, 0), dtype=np.uint64)

_MAGIC_CACHE: dict = {}


def _magic_for(width) -> tuple:
    """(magic, shift) for division-free ``x mod width`` inside the kernels.

    Python ints provide the one 128-bit divide per distinct width.  The
    shift is floor(log2(d)) — with a ceil shift, magic = (2^(64+s)-1)/d
    exceeds 2^64 for every non-power-of-two d and truncation would make
    the quotient wildly short; with the floor shift magic always fits and
    the quotient underestimates the true one by at most 1 (matching
    _native.c).
    """
    d = int(width)
    cached = _MAGIC_CACHE.get(d)
    if cached is None:
        shift = max(d.bit_length() - 1, 0)
        cached = (_U(((1 << (64 + shift)) - 1) // d), _U(shift))
        _MAGIC_CACHE[d] = cached
    return cached


@njit(cache=True, nogil=True)
def _fp_int(key, seed):
    v = key ^ (seed * _GOLD)
    v = (v ^ (v >> _S30)) * _MIX1
    v = (v ^ (v >> _S27)) * _MIX2
    return v ^ (v >> _S31)


@njit(cache=True, nogil=True)
def _mulmod61(a, x):
    # Exact a*x mod 2^61-1 for a, x < 2^61 using 32-bit limbs:
    # a*x = hh*2^64 + mid*2^32 + ll, with 2^61 = 1 (mod p) so 2^64 = 8.
    a_hi = a >> _S32
    a_lo = a & _LO32
    x_hi = x >> _S32
    x_lo = x & _LO32
    hh = a_hi * x_hi                    # < 2^58
    mid = a_hi * x_lo + a_lo * x_hi     # < 2^62
    ll = a_lo * x_lo                    # < 2^64
    mid_mod = (mid >> _S61) + (mid & _P61)
    if mid_mod >= _P61:
        mid_mod -= _P61
    # y*2^32 mod p for y < p: fold the bits above 2^61 back down.
    part_mid = (mid_mod >> _S29) + ((mid_mod << _S32) & _P61)
    total = hh * _EIGHT + part_mid + (ll >> _S61) + (ll & _P61)  # < 2^63
    total = (total >> _S61) + (total & _P61)
    if total >= _P61:
        total -= _P61
    return total


@njit(cache=True, nogil=True)
def _cw(a, b, fp):
    r = _mulmod61(a, fp % _P61) + b
    if r >= _P61:
        r -= _P61
    return r


@njit(cache=True, nogil=True)
def _mulhi64(a, x):
    # High 64 bits of the 128-bit product a*x via 32-bit limbs (no 128-bit
    # type in nopython mode); all operands uint64, wrapping like C.
    a_hi = a >> _S32
    a_lo = a & _LO32
    x_hi = x >> _S32
    x_lo = x & _LO32
    lo = a_lo * x_lo
    mid1 = a_hi * x_lo + (lo >> _S32)
    mid2 = a_lo * x_hi + (mid1 & _LO32)
    return a_hi * x_hi + (mid1 >> _S32) + (mid2 >> _S32)


@njit(cache=True, nogil=True)
def _fastmod(x, d, magic, shift):
    # Division-free x mod d, mirroring _native.c: magic underestimates
    # 2^(64+shift)/d (host-side precomputed), so the quotient never
    # overshoots and <= 3 exact fixups land on the true remainder.
    q = _mulhi64(magic, x) >> shift
    r = x - q * d
    while r >= d:
        r -= d
    return r


@njit(cache=True, nogil=True)
def _tab(tables_l, fp):
    acc = _U(0)
    for i in range(8):
        acc ^= tables_l[i, (fp >> (_S8 * _U(i))) & _BYTE]
    return acc


@njit(cache=True, nogil=True)
def _pos(scheme, a, b, tables, seeds, key_mode, keys, fps, rng, mg, sh, l, j):
    if key_mode == 0:
        fp = _fp_int(keys[j], seeds[l])
    else:
        fp = fps[l, j]
    if scheme == 0:
        return _fastmod(_cw(a[l], b[l], fp), rng, mg, sh)
    return _fastmod(_tab(tables[l], fp), rng, mg, sh)


@njit(cache=True, nogil=True)
def _sgn(scheme, a, b, tables, seeds, key_mode, keys, sign_fps, l, j):
    if key_mode == 0:
        if scheme == 0:
            fp = _fp_int(keys[j], seeds[l] ^ _XOR_UNIVERSAL)
        else:
            fp = _fp_int(keys[j], seeds[l] ^ _XOR_TABULATION)
    else:
        fp = sign_fps[l, j]
    if scheme == 0:
        fp = _cw(a[l], b[l], fp)
    if fp & _ONE:
        return np.int64(1)
    return np.int64(-1)


@njit(cache=True, nogil=True)
def _cms_ingest(table, scheme, a, b, tables, seeds, key_mode, keys, fps,
                counts, conservative, mg, sh):
    depth, width = table.shape
    rng = _U(width)
    n = counts.shape[0]
    if not conservative:
        # Level-outer (like _native.c): one row stays hot in cache per pass,
        # and integer adds commute so the table is bit-identical either way.
        for l in range(depth):
            row = table[l]
            for j in range(n):
                row[_pos(scheme, a, b, tables, seeds, key_mode, keys,
                         fps, rng, mg, sh, l, j)] += counts[j]
        return
    pos = np.empty(depth, dtype=np.uint64)
    for j in range(n):
        count = counts[j]
        if count == 0:
            continue
        for l in range(depth):
            pos[l] = _pos(scheme, a, b, tables, seeds, key_mode, keys, fps,
                          rng, mg, sh, l, j)
        minimum = table[0, pos[0]]
        for l in range(1, depth):
            cell = table[l, pos[l]]
            if cell < minimum:
                minimum = cell
        target = minimum + count
        for l in range(depth):
            if table[l, pos[l]] < target:
                table[l, pos[l]] = target
    return


@njit(cache=True, nogil=True)
def _cms_query(table, scheme, a, b, tables, seeds, key_mode, keys, fps, n,
               mg, sh):
    depth, width = table.shape
    rng = _U(width)
    out = np.empty(n, dtype=np.float64)
    for j in range(n):
        minimum = table[0, _pos(scheme, a, b, tables, seeds, key_mode, keys,
                                fps, rng, mg, sh, 0, j)]
        for l in range(1, depth):
            cell = table[l, _pos(scheme, a, b, tables, seeds, key_mode, keys,
                                 fps, rng, mg, sh, l, j)]
            if cell < minimum:
                minimum = cell
        out[j] = np.float64(minimum)
    return out


@njit(cache=True, nogil=True)
def _cs_ingest(table, scheme, a, b, tables, seeds, key_mode, keys, fps,
               sign_fps, counts, mg, sh):
    depth, width = table.shape
    rng = _U(width)
    n = counts.shape[0]
    # Level-outer like _native.c: signed adds commute, so bit-identical.
    for l in range(depth):
        row = table[l]
        for j in range(n):
            p = _pos(scheme, a, b, tables, seeds, key_mode, keys, fps,
                     rng, mg, sh, l, j)
            s = _sgn(scheme, a, b, tables, seeds, key_mode, keys, sign_fps, l, j)
            row[p] += s * counts[j]
    return


@njit(cache=True, nogil=True)
def _cs_query(table, scheme, a, b, tables, seeds, key_mode, keys, fps,
              sign_fps, n, mg, sh):
    depth, width = table.shape
    rng = _U(width)
    out = np.empty(n, dtype=np.float64)
    vals = np.empty(depth, dtype=np.int64)
    for j in range(n):
        for l in range(depth):
            p = _pos(scheme, a, b, tables, seeds, key_mode, keys, fps,
                     rng, mg, sh, l, j)
            s = _sgn(scheme, a, b, tables, seeds, key_mode, keys, sign_fps, l, j)
            value = s * table[l, p]
            i = l
            while i > 0 and vals[i - 1] > value:
                vals[i] = vals[i - 1]
                i -= 1
            vals[i] = value
        if depth % 2 == 1:
            out[j] = np.float64(vals[depth // 2])
        else:
            out[j] = (np.float64(vals[depth // 2 - 1]) +
                      np.float64(vals[depth // 2])) / 2.0
    return out


@njit(cache=True, nogil=True)
def _ams_ingest(counters, scheme, a, b, tables, seeds, key_mode, keys,
                sign_fps, counts):
    depth = counters.shape[0]
    n = counts.shape[0]
    for l in range(depth):
        acc = np.int64(0)
        for j in range(n):
            acc += _sgn(scheme, a, b, tables, seeds, key_mode, keys,
                        sign_fps, l, j) * counts[j]
        counters[l] += acc
    return


@njit(cache=True, nogil=True)
def _bloom_add(bits, depth, scheme, a, b, tables, seeds, key_mode, keys,
               fps, n, mg, sh):
    rng = _U(bits.shape[0])
    for j in range(n):
        for l in range(depth):
            bits[_pos(scheme, a, b, tables, seeds, key_mode, keys, fps,
                      rng, mg, sh, l, j)] = True
    return


@njit(cache=True, nogil=True)
def _bloom_contains(bits, depth, scheme, a, b, tables, seeds, key_mode, keys,
                    fps, n, mg, sh):
    rng = _U(bits.shape[0])
    out = np.zeros(n, dtype=np.bool_)
    for j in range(n):
        all_set = True
        for l in range(depth):
            if not bits[_pos(scheme, a, b, tables, seeds, key_mode, keys,
                             fps, rng, mg, sh, l, j)]:
                all_set = False
                break
        out[j] = all_set
    return out


@njit(cache=True, nogil=True)
def _bloom_observe(bits, depth, scheme, a, b, tables, seeds, key_mode, keys,
                   fps, n, mg, sh):
    rng = _U(bits.shape[0])
    out = np.zeros(n, dtype=np.bool_)
    pos = np.empty(depth, dtype=np.uint64)
    for j in range(n):
        all_set = True
        for l in range(depth):
            pos[l] = _pos(scheme, a, b, tables, seeds, key_mode, keys, fps,
                          rng, mg, sh, l, j)
            if not bits[pos[l]]:
                all_set = False
        if not all_set:
            for l in range(depth):
                bits[pos[l]] = True
            out[j] = True
    return out


class NumbaBackend:
    """Fused ``@njit`` kernels; bit-identical to :class:`NumpyBackend`."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self._fallback = NumpyBackend()

    # ------------------------------------------------------------------
    # argument marshalling (mirrors NativeBackend._ctx)
    # ------------------------------------------------------------------
    def _ctx(self, plan, prepared, *, need_sign: bool = False):
        if prepared.mode is None:  # mixed int/str batch
            return None
        packed = plan.packed()
        scheme = 0 if plan.scheme == "universal" else 1
        a = packed.get("a", _EMPTY_U64)
        b = packed.get("b", _EMPTY_U64)
        tables = packed.get("tables", _EMPTY_TABLES)
        if prepared.mode == "ints":
            # In-kernel splitmix fingerprints; the fps matrices stay empty.
            return (scheme, a, b, tables, packed["seeds"], 0,
                    prepared.int_keys, _EMPTY_FPS, _EMPTY_FPS)
        sign_fps = prepared.fps(sign=True) if need_sign else _EMPTY_FPS
        return (scheme, a, b, tables, packed["seeds"], 1,
                _EMPTY_U64, prepared.fps(), sign_fps)

    @staticmethod
    def _counts64(counts) -> np.ndarray:
        return np.ascontiguousarray(counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def cms_ingest(self, table, plan, keys, counts, conservative: bool) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared)
        if ctx is None:
            self._fallback.cms_ingest(table, plan, keys, counts, conservative)
            return
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, _ = ctx
        mg, sh = _magic_for(table.shape[1])
        _cms_ingest(table, scheme, a, b, tables, seeds, key_mode, int_keys,
                    fps, self._counts64(counts), conservative, mg, sh)

    def cms_query(self, table, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared)
        if ctx is None:
            return self._fallback.cms_query(table, plan, keys)
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, _ = ctx
        mg, sh = _magic_for(table.shape[1])
        return _cms_query(table, scheme, a, b, tables, seeds, key_mode,
                          int_keys, fps, prepared.n, mg, sh)

    def cs_ingest(self, table, plan, keys, counts) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared, need_sign=True)
        if ctx is None:
            self._fallback.cs_ingest(table, plan, keys, counts)
            return
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, sign_fps = ctx
        mg, sh = _magic_for(table.shape[1])
        _cs_ingest(table, scheme, a, b, tables, seeds, key_mode, int_keys,
                   fps, sign_fps, self._counts64(counts), mg, sh)

    def cs_query(self, table, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared, need_sign=True)
        if ctx is None:
            return self._fallback.cs_query(table, plan, keys)
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, sign_fps = ctx
        mg, sh = _magic_for(table.shape[1])
        return _cs_query(table, scheme, a, b, tables, seeds, key_mode,
                         int_keys, fps, sign_fps, prepared.n, mg, sh)

    def ams_ingest(self, counters, plan, keys, counts) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared, need_sign=True)
        if ctx is None:
            self._fallback.ams_ingest(counters, plan, keys, counts)
            return
        scheme, a, b, tables, seeds, key_mode, int_keys, _, sign_fps = ctx
        _ams_ingest(counters, scheme, a, b, tables, seeds, key_mode,
                    int_keys, sign_fps, self._counts64(counts))

    def bloom_add(self, bits, plan, keys) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared)
        if ctx is None or prepared.n == 0:
            if prepared.n:
                self._fallback.bloom_add(bits, plan, keys)
            return
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, _ = ctx
        mg, sh = _magic_for(bits.shape[0])
        _bloom_add(bits, plan.depth, scheme, a, b, tables, seeds, key_mode,
                   int_keys, fps, prepared.n, mg, sh)

    def bloom_contains(self, bits, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared)
        if ctx is None:
            return self._fallback.bloom_contains(bits, plan, keys)
        if prepared.n == 0:
            return np.zeros(0, dtype=bool)
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, _ = ctx
        mg, sh = _magic_for(bits.shape[0])
        return _bloom_contains(bits, plan.depth, scheme, a, b, tables, seeds,
                               key_mode, int_keys, fps, prepared.n, mg, sh)

    def bloom_observe(self, bits, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared)
        if ctx is None:
            return self._fallback.bloom_observe(bits, plan, keys)
        if prepared.n == 0:
            return np.zeros(0, dtype=bool)
        scheme, a, b, tables, seeds, key_mode, int_keys, fps, _ = ctx
        mg, sh = _magic_for(bits.shape[0])
        return _bloom_observe(bits, plan.depth, scheme, a, b, tables, seeds,
                              key_mode, int_keys, fps, prepared.n, mg, sh)
