"""ctypes backend: ``_native.c`` compiled on demand with the system cc.

No build step, no ``Python.h``: the first process to request the backend
compiles ``_native.c`` with whatever C compiler the machine has
(``cc``/``gcc``/``clang``), caches the shared library under a content-hash
name, and every later process dlopens the cached artifact.  Machines without
a compiler simply fail the load, which :func:`repro.kernels.resolve_backend`
reports as "backend unavailable" — ``auto`` then falls back to NumPy.

The cache lives in ``$REPRO_KERNELS_CACHE`` (default
``~/.cache/repro-kernels``).  Artifacts are written to a unique temp name
and atomically renamed, so concurrent builds (pytest-xdist workers, shm
shard workers) race benignly.

Batches the fused kernels cannot represent — mixed int/str key batches,
non-C-contiguous tables — are delegated per call to the NumPy reference
backend, preserving bit-identity rather than guessing.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import KernelError
from repro.kernels.numpy_backend import NumpyBackend

__all__ = ["NativeBackend"]

_SOURCE = Path(__file__).with_name("_native.c")
_COMPILERS = ("cc", "gcc", "clang")
_CFLAGS = ["-O3", "-fPIC", "-shared", "-std=c99", "-fwrapv"]

_SCHEME_CODES = {"universal": 0, "tabulation": 1}

_void_p = ctypes.c_void_p
_i64 = ctypes.c_int64
_int = ctypes.c_int

# scheme, a, b, tables, seeds, key_mode, keys, fps, sign_fps, n
_CTX_ARGTYPES = [_int, _void_p, _void_p, _void_p, _void_p, _int, _void_p, _void_p, _void_p, _i64]

_PROTOTYPES = {
    "repro_cms_ingest": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p, _int],
    "repro_cms_query": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p],
    "repro_cs_ingest": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p],
    "repro_cs_query": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p],
    "repro_ams_ingest": [_void_p, _i64] + _CTX_ARGTYPES + [_void_p],
    "repro_bloom_add": [_void_p, _i64, _i64] + _CTX_ARGTYPES,
    "repro_bloom_contains": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p],
    "repro_bloom_observe": [_void_p, _i64, _i64] + _CTX_ARGTYPES + [_void_p],
}


def _cache_dir() -> Path:
    configured = os.environ.get("REPRO_KERNELS_CACHE")
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "repro-kernels"


def _build_library() -> Path:
    """Compile (or reuse) the shared library; raise KernelError on failure."""
    source_bytes = _SOURCE.read_bytes()
    digest = hashlib.sha256(source_bytes).hexdigest()[:16]
    cache = _cache_dir()
    artifact = cache / f"repro_native_{digest}.so"
    if artifact.exists():
        return artifact
    cache.mkdir(parents=True, exist_ok=True)
    errors = []
    for compiler in _COMPILERS:
        fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        try:
            subprocess.run(
                [compiler, *_CFLAGS, "-o", tmp_name, str(_SOURCE)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_name, artifact)
            return artifact
        except FileNotFoundError:
            errors.append(f"{compiler}: not found")
        except subprocess.TimeoutExpired:
            errors.append(f"{compiler}: compile timed out")
        except subprocess.CalledProcessError as error:
            stderr = (error.stderr or b"").decode("utf-8", "replace").strip()
            errors.append(f"{compiler}: {stderr.splitlines()[-1] if stderr else 'failed'}")
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    raise KernelError("no working C compiler: " + "; ".join(errors))


def _load_library() -> ctypes.CDLL:
    library = ctypes.CDLL(str(_build_library()))
    for name, argtypes in _PROTOTYPES.items():
        fn = getattr(library, name)
        fn.argtypes = argtypes
        fn.restype = None
    return library


def _ptr(array: np.ndarray):
    return ctypes.c_void_p(array.ctypes.data)


class NativeBackend:
    """Fused C kernels via ctypes; bit-identical to :class:`NumpyBackend`."""

    name = "native"
    compiled = True

    def __init__(self) -> None:
        self._lib = _load_library()
        self._fallback = NumpyBackend()

    # ------------------------------------------------------------------
    # argument marshalling
    # ------------------------------------------------------------------
    def _ctx(self, plan, prepared, *, need_sign: bool = False):
        """The ten CTX_ARGS values for one call, or None to delegate.

        Returns ``(args, holders)`` — ``holders`` keeps every array the C
        code will read alive for the duration of the call.
        """
        if prepared.mode is None:  # mixed int/str batch
            return None
        packed = plan.packed()
        scheme = _SCHEME_CODES[plan.scheme]
        holders = [packed["seeds"]]
        if scheme == 0:
            a_ptr, b_ptr = _ptr(packed["a"]), _ptr(packed["b"])
            tables_ptr = None
            holders += [packed["a"], packed["b"]]
        else:
            a_ptr = b_ptr = None
            tables_ptr = _ptr(packed["tables"])
            holders.append(packed["tables"])
        if prepared.mode == "ints":
            key_mode = 0
            keys_ptr, fps_ptr, sign_ptr = _ptr(prepared.int_keys), None, None
            holders.append(prepared.int_keys)
        else:
            key_mode = 1
            keys_ptr = None
            fps = prepared.fps()
            fps_ptr = _ptr(fps)
            holders.append(fps)
            if need_sign:
                sign_fps = prepared.fps(sign=True)
                sign_ptr = _ptr(sign_fps)
                holders.append(sign_fps)
            else:
                sign_ptr = None
        args = (
            scheme,
            a_ptr,
            b_ptr,
            tables_ptr,
            _ptr(packed["seeds"]),
            key_mode,
            keys_ptr,
            fps_ptr,
            sign_ptr,
            prepared.n,
        )
        return args, holders

    @staticmethod
    def _counts64(counts) -> np.ndarray:
        return np.ascontiguousarray(counts, dtype=np.int64)

    @staticmethod
    def _kernel_ready(table: np.ndarray) -> bool:
        return table.flags["C_CONTIGUOUS"]

    # ------------------------------------------------------------------
    # Count-Min
    # ------------------------------------------------------------------
    def cms_ingest(self, table, plan, keys, counts, conservative: bool) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared) if self._kernel_ready(table) else None
        if ctx is None:
            self._fallback.cms_ingest(table, plan, keys, counts, conservative)
            return
        args, _holders = ctx
        counts64 = self._counts64(counts)
        self._lib.repro_cms_ingest(
            _ptr(table), plan.depth, table.shape[1], *args,
            _ptr(counts64), int(bool(conservative)),
        )

    def cms_query(self, table, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared) if self._kernel_ready(table) else None
        if ctx is None:
            return self._fallback.cms_query(table, plan, keys)
        args, _holders = ctx
        out = np.empty(prepared.n, dtype=np.float64)
        self._lib.repro_cms_query(
            _ptr(table), plan.depth, table.shape[1], *args, _ptr(out)
        )
        return out

    # ------------------------------------------------------------------
    # Count Sketch
    # ------------------------------------------------------------------
    def cs_ingest(self, table, plan, keys, counts) -> None:
        prepared = plan.prepare(keys)
        ctx = (
            self._ctx(plan, prepared, need_sign=True)
            if self._kernel_ready(table)
            else None
        )
        if ctx is None:
            self._fallback.cs_ingest(table, plan, keys, counts)
            return
        args, _holders = ctx
        counts64 = self._counts64(counts)
        self._lib.repro_cs_ingest(
            _ptr(table), plan.depth, table.shape[1], *args, _ptr(counts64)
        )

    def cs_query(self, table, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = (
            self._ctx(plan, prepared, need_sign=True)
            if self._kernel_ready(table)
            else None
        )
        if ctx is None:
            return self._fallback.cs_query(table, plan, keys)
        args, _holders = ctx
        out = np.empty(prepared.n, dtype=np.float64)
        self._lib.repro_cs_query(
            _ptr(table), plan.depth, table.shape[1], *args, _ptr(out)
        )
        return out

    # ------------------------------------------------------------------
    # AMS
    # ------------------------------------------------------------------
    def ams_ingest(self, counters, plan, keys, counts) -> None:
        prepared = plan.prepare(keys)
        ctx = (
            self._ctx(plan, prepared, need_sign=True)
            if self._kernel_ready(counters)
            else None
        )
        if ctx is None:
            self._fallback.ams_ingest(counters, plan, keys, counts)
            return
        args, _holders = ctx
        counts64 = self._counts64(counts)
        self._lib.repro_ams_ingest(_ptr(counters), plan.depth, *args, _ptr(counts64))

    # ------------------------------------------------------------------
    # Bloom filter
    # ------------------------------------------------------------------
    def bloom_add(self, bits, plan, keys) -> None:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared) if self._kernel_ready(bits) else None
        if ctx is None:
            self._fallback.bloom_add(bits, plan, keys)
            return
        if prepared.n == 0:
            return
        args, _holders = ctx
        self._lib.repro_bloom_add(_ptr(bits), plan.depth, bits.shape[0], *args)

    def bloom_contains(self, bits, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared) if self._kernel_ready(bits) else None
        if ctx is None:
            return self._fallback.bloom_contains(bits, plan, keys)
        out = np.zeros(prepared.n, dtype=bool)
        if prepared.n == 0:
            return out
        args, _holders = ctx
        self._lib.repro_bloom_contains(
            _ptr(bits), plan.depth, bits.shape[0], *args, _ptr(out)
        )
        return out

    def bloom_observe(self, bits, plan, keys) -> np.ndarray:
        prepared = plan.prepare(keys)
        ctx = self._ctx(plan, prepared) if self._kernel_ready(bits) else None
        if ctx is None:
            return self._fallback.bloom_observe(bits, plan, keys)
        out = np.zeros(prepared.n, dtype=bool)
        if prepared.n == 0:
            return out
        args, _holders = ctx
        self._lib.repro_bloom_observe(
            _ptr(bits), plan.depth, bits.shape[0], *args, _ptr(out)
        )
        return out
