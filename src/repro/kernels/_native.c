/* repro.kernels native backend — fused sketch kernels.
 *
 * One C translation unit, no Python.h: the library is compiled on demand
 * with the system C compiler (see native_backend.py) and driven through
 * ctypes, so it works from a plain `PYTHONPATH=src` checkout without a
 * build step or installed headers.
 *
 * Every function fuses the three inner loops the NumPy reference backend
 * runs as separate array passes — 64-bit fingerprinting (splitmix64 for
 * integer keys, or host-side FNV fingerprints for string keys), position
 * computation (exact Carter–Wegman multiply-mod-Mersenne-61, or simple
 * tabulation), and the counter gather/scatter — into a single pass per
 * batch with no intermediate arrays.  Mod-2^61-1 reductions use shift-and-
 * fold (2^61 = 1 mod p), never a 128-bit division, and the batch loops run
 * level-outer wherever updates commute so each level's hash constants and
 * tabulation tables stay cache-resident.
 *
 * Bit-identity contract: these are the *same integer recurrences* as
 * repro/sketches/hashing.py, so every table cell and every estimate is
 * identical to the NumPy backend's.  The equivalence suite in
 * tests/kernels/ enforces this for every sketch, scheme, and key type.
 *
 * Conventions shared by all entry points:
 *   scheme    0 = universal (Carter–Wegman a,b per level)
 *             1 = tabulation (8x256 uint64 tables per level)
 *   key_mode  0 = `keys` holds n raw uint64 keys; fingerprints are
 *                 computed in-kernel per level (seed, and seed^SIGN_XOR
 *                 for signs)
 *             1 = `fps` (and `sign_fps`) hold precomputed (depth, n)
 *                 row-major fingerprint matrices (string-key batches)
 * Signed counter arithmetic intentionally wraps like NumPy int64; the
 * library is compiled with -fwrapv.
 */

#include <stdint.h>
#include <stdlib.h>

#define P61 0x1FFFFFFFFFFFFFFFULL /* 2^61 - 1 */
#define GOLD 0x9E3779B97F4A7C15ULL
#define SIGN_XOR_UNIVERSAL 0x5A5A5A5AULL
#define SIGN_XOR_TABULATION 0x3C3C3C3CULL

/* splitmix64 finalizer over (key ^ seed*GOLD): fingerprint64 for ints. */
static inline uint64_t fingerprint_int(uint64_t key, uint64_t seed) {
    uint64_t v = key ^ (seed * GOLD);
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
    return v ^ (v >> 31);
}

/* x mod 2^61-1 for any uint64 x, by folding the bits above 2^61 down
 * (2^61 = 1 mod p) — exact, no division. */
static inline uint64_t mod61(uint64_t x) {
    uint64_t r = (x >> 61) + (x & P61);
    return r >= P61 ? r - P61 : r;
}

/* Exact (a * (fp mod p) + b) mod p for the Mersenne prime p = 2^61-1.
 * The 128-bit product is reduced by two folds, not __umodti3. */
static inline uint64_t carter_wegman(uint64_t a, uint64_t b, uint64_t fp) {
    unsigned __int128 prod = (unsigned __int128)a * mod61(fp) + b;
    uint64_t r = ((uint64_t)prod & P61) + (uint64_t)(prod >> 61);
    r = (r >> 61) + (r & P61);
    return r >= P61 ? r - P61 : r;
}

/* Division-free x mod d for the batch-invariant table width d: one 128-bit
 * mulhi against a precomputed reciprocal, then bounded exact fixups.  The
 * reciprocal magic = (2^(64+shift) - 1) / d (shift = floor(log2 d), see
 * init_magic) *under*estimates 1/d, so the quotient never overshoots and
 * trails floor(x/d) by at most 1; the loop runs at most once for any
 * x < 2^64.  This replaces a ~30-cycle 64-bit division in every position
 * computation with a handful of cheap ops. */
static inline uint64_t fastmod(uint64_t x, uint64_t d, uint64_t magic,
                               int shift) {
    uint64_t q = (uint64_t)(((unsigned __int128)magic * x) >> 64) >> shift;
    uint64_t r = x - q * d;
    while (r >= d) r -= d;
    return r;
}

/* XOR-fold of the 8 fingerprint bytes through a level's 8x256 table. */
static inline uint64_t tabulate(const uint64_t *table, uint64_t fp) {
    uint64_t acc = 0;
    int i;
    for (i = 0; i < 8; i++) {
        acc ^= table[(size_t)i * 256 + ((fp >> (8 * i)) & 0xFF)];
    }
    return acc;
}

struct hash_ctx {
    int scheme;
    int key_mode;
    int64_t depth;
    uint64_t range;
    const uint64_t *a;
    const uint64_t *b;
    const uint64_t *tables; /* depth * 8 * 256 */
    const uint64_t *seeds;  /* depth */
    const uint64_t *keys;   /* n (key_mode 0) */
    const uint64_t *fps;    /* depth * n (key_mode 1) */
    const uint64_t *sign_fps; /* depth * n (key_mode 1, sign ops only) */
    int64_t n;
    uint64_t magic; /* floor(2^(64+mshift)/range); ~0 for range == 1 */
    int mshift;
};

static inline void init_magic(struct hash_ctx *c) {
    uint64_t d = c->range;
    /* shift = floor(log2(d)).  With a ceil shift the magic for every
     * non-power-of-two d exceeds 2^64 and truncates to garbage (the lost
     * high bit shorts the quotient by ~x/2^shift — an effective hang in
     * the fixup loop); with the floor shift (2^(64+shift) - 1) / d always
     * fits in 64 bits and the quotient trails the true one by at most 1.
     * d == 1 needs no special case: magic = 2^64-1, and mulhi(2^64-1, x)
     * = x-1 for x >= 1, so a single fixup lands on 0. */
    int shift = 0;
    while (shift < 63 && (d >> (shift + 1)) != 0) shift++;
    c->mshift = shift;
    c->magic = (uint64_t)(((((unsigned __int128)1) << (64 + shift)) - 1) / d);
}

/* Raw fingerprint of key j at level l for position hashing. */
static inline uint64_t fp_of(const struct hash_ctx *c, int64_t l, int64_t j) {
    return c->key_mode ? c->fps[l * c->n + j]
                       : fingerprint_int(c->keys[j], c->seeds[l]);
}

/* Position of key j at level l: matches UniversalHash.hash_batch /
 * TabulationHash.hash_batch exactly. */
static inline int64_t position_of(const struct hash_ctx *c, int64_t l, int64_t j) {
    uint64_t fp = fp_of(c, l, j);
    uint64_t h = c->scheme == 0
                     ? carter_wegman(c->a[l], c->b[l], fp)
                     : tabulate(c->tables + (size_t)l * 8 * 256, fp);
    return (int64_t)fastmod(h, c->range, c->magic, c->mshift);
}

/* Sign of key j at level l: matches UniversalHash.sign_batch (CW parity of
 * the seed^0x5A5A5A5A fingerprint) / TabulationHash.sign_batch (parity of
 * the seed^0x3C3C3C3C fingerprint). */
static inline int64_t sign_of(const struct hash_ctx *c, int64_t l, int64_t j) {
    uint64_t fp;
    if (c->key_mode) {
        fp = c->sign_fps[l * c->n + j];
    } else {
        uint64_t xor_c = c->scheme == 0 ? SIGN_XOR_UNIVERSAL : SIGN_XOR_TABULATION;
        fp = fingerprint_int(c->keys[j], c->seeds[l] ^ xor_c);
    }
    if (c->scheme == 0) {
        return (carter_wegman(c->a[l], c->b[l], fp) & 1) ? 1 : -1;
    }
    return (fp & 1) ? 1 : -1;
}

/* Level-outer position fill with per-level constants hoisted: one level's
 * (a, b) pair or 16 KiB tabulation table stays hot across the whole batch. */
static void positions_level(const struct hash_ctx *c, int64_t l, int64_t *out) {
    uint64_t range = c->range, magic = c->magic;
    int shift = c->mshift;
    int64_t j, n = c->n;
    if (c->scheme == 0) {
        uint64_t a = c->a[l], b = c->b[l];
        if (c->key_mode == 0) {
            uint64_t seed = c->seeds[l];
            for (j = 0; j < n; j++) {
                out[j] = (int64_t)fastmod(
                    carter_wegman(a, b, fingerprint_int(c->keys[j], seed)),
                    range, magic, shift);
            }
        } else {
            const uint64_t *row = c->fps + l * n;
            for (j = 0; j < n; j++) {
                out[j] = (int64_t)fastmod(
                    carter_wegman(a, b, row[j]), range, magic, shift);
            }
        }
    } else {
        const uint64_t *table = c->tables + (size_t)l * 8 * 256;
        if (c->key_mode == 0) {
            uint64_t seed = c->seeds[l];
            for (j = 0; j < n; j++) {
                out[j] = (int64_t)fastmod(
                    tabulate(table, fingerprint_int(c->keys[j], seed)),
                    range, magic, shift);
            }
        } else {
            const uint64_t *row = c->fps + l * n;
            for (j = 0; j < n; j++) {
                out[j] = (int64_t)fastmod(tabulate(table, row[j]), range,
                                          magic, shift);
            }
        }
    }
}

/* Level-outer sign fill (+1/-1), same hoisting as positions_level. */
static void signs_level(const struct hash_ctx *c, int64_t l, int64_t *out) {
    int64_t j, n = c->n;
    if (c->key_mode == 1) {
        const uint64_t *row = c->sign_fps + l * n;
        if (c->scheme == 0) {
            uint64_t a = c->a[l], b = c->b[l];
            for (j = 0; j < n; j++) {
                out[j] = (carter_wegman(a, b, row[j]) & 1) ? 1 : -1;
            }
        } else {
            for (j = 0; j < n; j++) {
                out[j] = (row[j] & 1) ? 1 : -1;
            }
        }
        return;
    }
    if (c->scheme == 0) {
        uint64_t a = c->a[l], b = c->b[l];
        uint64_t seed = c->seeds[l] ^ SIGN_XOR_UNIVERSAL;
        for (j = 0; j < n; j++) {
            out[j] = (carter_wegman(a, b, fingerprint_int(c->keys[j], seed)) & 1)
                         ? 1 : -1;
        }
    } else {
        uint64_t seed = c->seeds[l] ^ SIGN_XOR_TABULATION;
        for (j = 0; j < n; j++) {
            out[j] = (fingerprint_int(c->keys[j], seed) & 1) ? 1 : -1;
        }
    }
}

#define CTX_ARGS                                                            \
    int scheme, const uint64_t *a, const uint64_t *b, const uint64_t *tables, \
    const uint64_t *seeds, int key_mode, const uint64_t *keys,              \
    const uint64_t *fps, const uint64_t *sign_fps, int64_t n

#define MAKE_CTX(depth_, range_)                                            \
    struct hash_ctx ctx = {scheme, key_mode, (depth_), (uint64_t)(range_),  \
                           a, b, tables, seeds, keys, fps, sign_fps, n,     \
                           0, 0};                                           \
    init_magic(&ctx)

/* ------------------------------------------------------------------ */
/* Count-Min                                                           */
/* ------------------------------------------------------------------ */

void repro_cms_ingest(int64_t *table, int64_t depth, int64_t width,
                      CTX_ARGS, const int64_t *counts, int conservative) {
    MAKE_CTX(depth, width);
    int64_t j, l;
    if (!conservative) {
        /* Plain adds commute, so run level-outer with hoisted constants.
         * Fused: position and scatter-add in the same pass, no scratch. */
        for (l = 0; l < depth; l++) {
            int64_t *row = table + l * width;
            uint64_t range = ctx.range, magic = ctx.magic;
            int shift = ctx.mshift;
            if (scheme == 0) {
                uint64_t al = ctx.a[l], bl = ctx.b[l];
                if (key_mode == 0) {
                    uint64_t seed = ctx.seeds[l];
                    for (j = 0; j < n; j++) {
                        row[fastmod(carter_wegman(
                                        al, bl, fingerprint_int(keys[j], seed)),
                                    range, magic, shift)] += counts[j];
                    }
                } else {
                    const uint64_t *fpr = fps + l * n;
                    for (j = 0; j < n; j++) {
                        row[fastmod(carter_wegman(al, bl, fpr[j]), range,
                                    magic, shift)] += counts[j];
                    }
                }
            } else {
                const uint64_t *tbl = tables + (size_t)l * 8 * 256;
                if (key_mode == 0) {
                    uint64_t seed = ctx.seeds[l];
                    for (j = 0; j < n; j++) {
                        row[fastmod(tabulate(tbl,
                                             fingerprint_int(keys[j], seed)),
                                    range, magic, shift)] += counts[j];
                    }
                } else {
                    const uint64_t *fpr = fps + l * n;
                    for (j = 0; j < n; j++) {
                        row[fastmod(tabulate(tbl, fpr[j]), range, magic,
                                    shift)] += counts[j];
                    }
                }
            }
        }
        return;
    }
    {
        /* Conservative updates read min-over-levels per key, so replay must
         * stay key-ordered. */
        int64_t *pos = (int64_t *)malloc((size_t)depth * sizeof(int64_t));
        if (pos == NULL) return; /* caller pre-checks depth; defensive only */
        for (j = 0; j < n; j++) {
            int64_t count = counts[j];
            int64_t minimum, target;
            if (count == 0) continue;
            for (l = 0; l < depth; l++) pos[l] = position_of(&ctx, l, j);
            minimum = table[0 * width + pos[0]];
            for (l = 1; l < depth; l++) {
                int64_t cell = table[l * width + pos[l]];
                if (cell < minimum) minimum = cell;
            }
            /* Raising every counter to min+count equals `count` consecutive
             * conservative +1 updates of the same key. */
            target = minimum + count;
            for (l = 0; l < depth; l++) {
                int64_t *cell = &table[l * width + pos[l]];
                if (*cell < target) *cell = target;
            }
        }
        free(pos);
    }
}

void repro_cms_query(const int64_t *table, int64_t depth, int64_t width,
                     CTX_ARGS, double *out) {
    MAKE_CTX(depth, width);
    int64_t *minima = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *pos = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t j, l;
    if (minima == NULL || pos == NULL) {
        free(minima);
        free(pos);
        return;
    }
    positions_level(&ctx, 0, pos);
    for (j = 0; j < n; j++) minima[j] = table[pos[j]];
    for (l = 1; l < depth; l++) {
        const int64_t *row = table + l * width;
        positions_level(&ctx, l, pos);
        for (j = 0; j < n; j++) {
            int64_t cell = row[pos[j]];
            if (cell < minima[j]) minima[j] = cell;
        }
    }
    for (j = 0; j < n; j++) out[j] = (double)minima[j];
    free(minima);
    free(pos);
}

/* ------------------------------------------------------------------ */
/* Count Sketch                                                        */
/* ------------------------------------------------------------------ */

void repro_cs_ingest(int64_t *table, int64_t depth, int64_t width,
                     CTX_ARGS, const int64_t *counts) {
    MAKE_CTX(depth, width);
    int64_t j, l;
    /* Signed adds commute, so run level-outer and fuse position, sign, and
     * scatter into one pass — no pos/sgn scratch arrays (whose write+reread
     * traffic dominated the split version at batch sizes past L2). */
    for (l = 0; l < depth; l++) {
        int64_t *row = table + l * width;
        uint64_t range = ctx.range, magic = ctx.magic;
        int shift = ctx.mshift;
        if (scheme == 0) {
            uint64_t al = ctx.a[l], bl = ctx.b[l];
            if (key_mode == 0) {
                uint64_t seed = ctx.seeds[l];
                uint64_t sign_seed = seed ^ SIGN_XOR_UNIVERSAL;
                for (j = 0; j < n; j++) {
                    uint64_t key = keys[j];
                    uint64_t pos = fastmod(
                        carter_wegman(al, bl, fingerprint_int(key, seed)),
                        range, magic, shift);
                    uint64_t parity =
                        carter_wegman(al, bl, fingerprint_int(key, sign_seed)) & 1;
                    row[pos] += parity ? counts[j] : -counts[j];
                }
            } else {
                const uint64_t *fpr = fps + l * n;
                const uint64_t *sfpr = sign_fps + l * n;
                for (j = 0; j < n; j++) {
                    uint64_t pos = fastmod(carter_wegman(al, bl, fpr[j]),
                                           range, magic, shift);
                    uint64_t parity = carter_wegman(al, bl, sfpr[j]) & 1;
                    row[pos] += parity ? counts[j] : -counts[j];
                }
            }
        } else {
            const uint64_t *tbl = tables + (size_t)l * 8 * 256;
            if (key_mode == 0) {
                uint64_t seed = ctx.seeds[l];
                uint64_t sign_seed = seed ^ SIGN_XOR_TABULATION;
                for (j = 0; j < n; j++) {
                    uint64_t key = keys[j];
                    uint64_t pos = fastmod(
                        tabulate(tbl, fingerprint_int(key, seed)),
                        range, magic, shift);
                    uint64_t parity = fingerprint_int(key, sign_seed) & 1;
                    row[pos] += parity ? counts[j] : -counts[j];
                }
            } else {
                const uint64_t *fpr = fps + l * n;
                const uint64_t *sfpr = sign_fps + l * n;
                for (j = 0; j < n; j++) {
                    uint64_t pos = fastmod(tabulate(tbl, fpr[j]), range,
                                           magic, shift);
                    row[pos] += (sfpr[j] & 1) ? counts[j] : -counts[j];
                }
            }
        }
    }
}

void repro_cs_query(const int64_t *table, int64_t depth, int64_t width,
                    CTX_ARGS, double *out) {
    MAKE_CTX(depth, width);
    /* Fill the (depth, n) signed-estimate matrix level-outer (cache-hot
     * hash constants), then take per-key medians column-wise. */
    int64_t *signed_matrix = (int64_t *)malloc((size_t)depth * n * sizeof(int64_t));
    int64_t *pos = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *sgn = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *column = (int64_t *)malloc((size_t)depth * sizeof(int64_t));
    int64_t j, l, i;
    if (signed_matrix == NULL || pos == NULL || sgn == NULL || column == NULL) {
        free(signed_matrix);
        free(pos);
        free(sgn);
        free(column);
        return;
    }
    for (l = 0; l < depth; l++) {
        const int64_t *row = table + l * width;
        int64_t *dest = signed_matrix + l * n;
        positions_level(&ctx, l, pos);
        signs_level(&ctx, l, sgn);
        for (j = 0; j < n; j++) {
            dest[j] = sgn[j] * row[pos[j]];
        }
    }
    for (j = 0; j < n; j++) {
        for (l = 0; l < depth; l++) {
            int64_t value = signed_matrix[l * n + j];
            /* insertion sort: depth is small (<= a few dozen levels) */
            for (i = l; i > 0 && column[i - 1] > value; i--) {
                column[i] = column[i - 1];
            }
            column[i] = value;
        }
        if (depth & 1) {
            /* np.median of an odd int64 stack: the middle order statistic,
             * converted to float64. */
            out[j] = (double)column[depth / 2];
        } else {
            /* np.median of an even int64 stack: float64 mean of the two
             * middle order statistics (each converted before the sum). */
            out[j] = ((double)column[depth / 2 - 1] +
                      (double)column[depth / 2]) / 2.0;
        }
    }
    free(signed_matrix);
    free(pos);
    free(sgn);
    free(column);
}

/* ------------------------------------------------------------------ */
/* AMS                                                                 */
/* ------------------------------------------------------------------ */

void repro_ams_ingest(int64_t *counters, int64_t depth, CTX_ARGS,
                      const int64_t *counts) {
    MAKE_CTX(depth, 2);
    int64_t *sgn = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t j, l;
    if (sgn == NULL) return;
    for (l = 0; l < depth; l++) {
        int64_t acc = 0;
        signs_level(&ctx, l, sgn);
        for (j = 0; j < n; j++) {
            acc += sgn[j] * counts[j];
        }
        counters[l] += acc;
    }
    free(sgn);
}

/* ------------------------------------------------------------------ */
/* Bloom filter (bits is a NumPy bool array: one byte per bit position) */
/* ------------------------------------------------------------------ */

void repro_bloom_add(uint8_t *bits, int64_t num_hashes, int64_t num_bits,
                     CTX_ARGS) {
    MAKE_CTX(num_hashes, num_bits);
    int64_t j, l;
    for (l = 0; l < num_hashes; l++) {
        for (j = 0; j < n; j++) {
            bits[position_of(&ctx, l, j)] = 1;
        }
    }
}

void repro_bloom_contains(const uint8_t *bits, int64_t num_hashes,
                          int64_t num_bits, CTX_ARGS, uint8_t *out) {
    MAKE_CTX(num_hashes, num_bits);
    int64_t j, l;
    for (j = 0; j < n; j++) {
        uint8_t all_set = 1;
        for (l = 0; l < num_hashes; l++) {
            if (!bits[position_of(&ctx, l, j)]) {
                all_set = 0;
                break;
            }
        }
        out[j] = all_set;
    }
}

void repro_bloom_observe(uint8_t *bits, int64_t num_hashes, int64_t num_bits,
                         CTX_ARGS, uint8_t *new_flags) {
    MAKE_CTX(num_hashes, num_bits);
    int64_t *pos = (int64_t *)malloc((size_t)num_hashes * sizeof(int64_t));
    int64_t j, l;
    if (pos == NULL) return;
    for (j = 0; j < n; j++) {
        uint8_t all_set = 1;
        for (l = 0; l < num_hashes; l++) {
            pos[l] = position_of(&ctx, l, j);
            if (!bits[pos[l]]) all_set = 0;
        }
        if (all_set) {
            new_flags[j] = 0;
        } else {
            for (l = 0; l < num_hashes; l++) bits[pos[l]] = 1;
            new_flags[j] = 1;
        }
    }
    free(pos);
}
