"""repro — Learning the Optimal Hashing Scheme for streaming frequency estimation.

A from-scratch reproduction of Bertsimas & Digalakis Jr., *"Frequency
Estimation in Data Streams: Learning the Optimal Hashing Scheme"* (ICDE 2022
extended abstract / IEEE TKDE full version).

The library is organized as:

* :mod:`repro.streams` — stream model and workload generators (synthetic
  group-structured streams, an AOL-like query log);
* :mod:`repro.sketches` — conventional random-hashing baselines (Count-Min
  Sketch, Count Sketch, Learned CMS) and the Bloom filter substrate;
* :mod:`repro.ml` — classifiers (logistic regression, CART, random forest),
  model selection, and query-text featurization;
* :mod:`repro.optimize` — the hashing-scheme optimizers (MILP, block
  coordinate descent, dynamic programming);
* :mod:`repro.core` — the opt-hash estimator assembled from the above;
* :mod:`repro.api` — the declarative layer: estimator specs, the build
  registry, and the Session facade (ingest / estimate / merge / snapshot);
* :mod:`repro.temporal` — sliding-window / time-decayed estimators over any
  mergeable base, drift detection for the learned scheme, and online
  re-optimization (retrain + hot-swap into a live session or service);
* :mod:`repro.evaluation` — error metrics and the runners regenerating every
  figure and table of the paper's evaluation.

Quickstart (the declarative API)::

    import repro
    from repro.streams import SyntheticConfig, SyntheticGenerator

    generator = SyntheticGenerator(SyntheticConfig(num_groups=6, seed=0))
    prefix, stream = generator.generate_prefix_and_stream()
    spec = repro.OptHashSpec(num_buckets=10, lam=0.5, solver="bcd",
                             classifier="cart", seed=0)
    with repro.open(spec, options=repro.Options(prefix=prefix)) as session:
        session.ingest(stream)
        print(session.estimate_key(stream[0].key))
"""

from repro import errors
from repro.errors import KernelError, ReproError
from repro.core import (
    AdaptiveOptHashEstimator,
    OptHashConfig,
    OptHashEstimator,
    OptHashScheme,
    TrainingResult,
    train_opt_hash,
)
from repro import api
from repro import kernels
from repro.api import (
    EstimatorSpec,
    Options,
    OptHashSpec,
    Session,
    ShardedSpec,
    SketchSpec,
    SpecError,
    WindowedSpec,
    build,
    load,
    open,
    restore,
    train,
)
from repro.temporal import (
    DecayedSketch,
    DriftDetector,
    ReOptimizer,
    SlidingWindowSketch,
)
from repro.optimize import (
    BucketAssignment,
    block_coordinate_descent,
    dynamic_programming,
    learn_hashing_scheme,
    solve_milp,
)
from repro.sketches import (
    BloomFilter,
    CountMinSketch,
    CountSketch,
    FrequencyEstimator,
    LearnedCountMinSketch,
)
from repro.streams import Element, Stream, StreamPrefix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "errors",
    "kernels",
    "ReproError",
    "KernelError",
    "Options",
    "SpecError",
    "EstimatorSpec",
    "SketchSpec",
    "OptHashSpec",
    "ShardedSpec",
    "WindowedSpec",
    "Session",
    "SlidingWindowSketch",
    "DecayedSketch",
    "DriftDetector",
    "ReOptimizer",
    "build",
    "load",
    "open",
    "restore",
    "train",
    "AdaptiveOptHashEstimator",
    "OptHashConfig",
    "OptHashEstimator",
    "OptHashScheme",
    "TrainingResult",
    "train_opt_hash",
    "BucketAssignment",
    "block_coordinate_descent",
    "dynamic_programming",
    "learn_hashing_scheme",
    "solve_milp",
    "BloomFilter",
    "CountMinSketch",
    "CountSketch",
    "FrequencyEstimator",
    "LearnedCountMinSketch",
    "Element",
    "Stream",
    "StreamPrefix",
]
