"""Dependency-free metrics primitives: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric of a component tree (the
streaming service creates one and threads it through the shard pool, the
sharded estimator, and the session).  The design goals, in order:

1. **Cheap on the hot path.**  An increment is one lock acquire and one
   float add; a histogram observation adds a ``bisect`` over a dozen fixed
   bucket bounds.  Instrumentation happens at *batch* granularity (one
   request, one micro-batch, one shard sub-batch), never per key — the
   service-level overhead gate holds it to ≤5% of ingest throughput
   (``benchmarks/test_obs_overhead.py``).
2. **Disableable to nothing.**  ``MetricsRegistry(enabled=False)`` hands
   out shared null metrics whose methods are no-ops, so call sites stay
   unconditional and the disabled cost is one no-op method call.
3. **Prometheus text exposition.**  :meth:`MetricsRegistry.exposition`
   renders the standard ``text/plain; version=0.0.4`` format (HELP/TYPE
   comments, cumulative ``_bucket{le=...}`` histogram series);
   :func:`parse_exposition` round-trips it back into a flat sample dict,
   which is also what :meth:`MetricsRegistry.samples` returns directly.

Metrics are get-or-create by name: asking twice for the same name (with the
same type and label names) returns the same object, so independent
components can share a registry without coordination.  A name re-used with
a different type or label set raises ``ValueError``.

No third-party dependencies — stdlib only.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "parse_exposition",
]

#: Content type of the Prometheus text exposition format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Fixed log-spaced latency buckets (seconds): half-decade steps from 10µs
#: to 10s.  Fixed so every timing histogram in the tree is comparable and
#: the per-observation cost (a bisect over 13 floats) is constant.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 10) for exponent in range(-10, 3)
)

#: Fixed log-spaced size buckets (counts/bytes): decades from 1 to 10^7.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = tuple(
    float(10**exponent) for exponent in range(8)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value losslessly (``float(...)`` round-trips it)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_suffix(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + pairs + "}"


class _Timer:
    """Context manager observing its wall-clock duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _LabeledChildren:
    """Shared labels() plumbing for metric families declared with labels."""

    __slots__ = ()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **label_values: str):
        """The child metric for one concrete label-value combination."""
        if not self.label_names:
            raise ValueError(f"metric {self.name!r} was declared without labels")
        try:
            key = tuple(str(label_values[name]) for name in self.label_names)
        except KeyError as error:
            raise ValueError(
                f"metric {self.name!r} needs labels {self.label_names}"
            ) from error
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} needs exactly labels {self.label_names}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _iter_children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())


class Counter(_LabeledChildren):
    """A monotonically non-decreasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "label_names", "_value", "_children", "_lock")

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._value = 0.0
        self._children: Dict[Tuple[str, ...], Counter] = {}
        self._lock = threading.Lock()

    def _new_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    def inc_to(self, value: float) -> None:
        """Raise the counter to ``value`` if it is above the current total.

        For mirroring an externally-maintained monotonic count (a shard
        worker's shared ack counter) without double counting: calling with
        a stale or repeated reading is a no-op.
        """
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_LabeledChildren):
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "label_names", "_value", "_children", "_lock")

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._value = 0.0
        self._children: Dict[Tuple[str, ...], Gauge] = {}
        self._lock = threading.Lock()

    def _new_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_LabeledChildren):
    """Observations bucketed against fixed (log-spaced) upper bounds.

    ``buckets`` are the finite ``le`` upper bounds; an implicit ``+Inf``
    bucket catches everything above the last one.  Exposition follows the
    Prometheus convention: cumulative ``_bucket`` series plus ``_sum`` and
    ``_count``.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "label_names",
        "buckets",
        "_bucket_counts",
        "_sum",
        "_count",
        "_children",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # [..., +Inf overflow]
        self._sum = 0.0
        self._count = 0
        self._children: Dict[Tuple[str, ...], Histogram] = {}
        self._lock = threading.Lock()

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> _Timer:
        """``with histogram.time(): ...`` observes the block's duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((_format_value(bound), running))
        out.append(("+Inf", running + counts[-1]))
        return out


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    kind = "null"
    label_names: Tuple[str, ...] = ()

    def labels(self, **label_values: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def inc_to(self, value: float) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullTimer":
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


class _NullTimer:
    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_TIMER = _NullTimer()
NULL_COUNTER = _NullMetric()
NULL_GAUGE = _NullMetric()
NULL_HISTOGRAM = _NullMetric()


class MetricsRegistry:
    """Named metrics with get-or-create semantics and text exposition.

    Parameters
    ----------
    enabled:
        With ``False`` every factory returns a shared no-op metric and
        :meth:`exposition` renders nothing — the zero-overhead off switch
        the service's ``instrument=False`` mode uses.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, label_names, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(label_names)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help, label_names=label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _ordered(self):
        with self._lock:
            return sorted(self._metrics.items())

    @staticmethod
    def _instances(metric):
        """``(label_values, leaf)`` pairs: the children, or the metric itself."""
        if metric.label_names:
            return metric._iter_children()
        return [((), metric)]

    def samples(self) -> Dict[str, float]:
        """Flat ``'name{label="value"}' -> value`` snapshot.

        Histograms expand into their ``_bucket`` / ``_sum`` / ``_count``
        series.  The keys match :func:`parse_exposition` of
        :meth:`exposition` exactly (round-trip tested).
        """
        out: Dict[str, float] = {}
        for name, metric in self._ordered():
            for label_values, leaf in self._instances(metric):
                suffix = _label_suffix(metric.label_names, label_values)
                if isinstance(leaf, Histogram):
                    for le, cumulative in leaf.cumulative_buckets():
                        bucket_labels = _label_suffix(
                            metric.label_names + ("le",), label_values + (le,)
                        )
                        out[f"{name}_bucket{bucket_labels}"] = float(cumulative)
                    out[f"{name}_sum{suffix}"] = leaf.sum
                    out[f"{name}_count{suffix}"] = float(leaf.count)
                else:
                    out[f"{name}{suffix}"] = float(leaf.value)
        return out

    def exposition(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, metric in self._ordered():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for label_values, leaf in self._instances(metric):
                suffix = _label_suffix(metric.label_names, label_values)
                if isinstance(leaf, Histogram):
                    for le, cumulative in leaf.cumulative_buckets():
                        bucket_labels = _label_suffix(
                            metric.label_names + ("le",), label_values + (le,)
                        )
                        lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                    lines.append(f"{name}_sum{suffix} {_format_value(leaf.sum)}")
                    lines.append(f"{name}_count{suffix} {leaf.count}")
                else:
                    lines.append(f"{name}{suffix} {_format_value(leaf.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into the flat sample dict.

    The inverse of :meth:`MetricsRegistry.exposition` (up to float
    formatting, which :func:`_format_value` keeps lossless); clients use it
    to turn a scraped ``/metrics`` body or the ``metrics`` op's ``text``
    field into comparable numbers.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value = line.rsplit(" ", 1)
            samples[key] = float(value)
        except ValueError as error:
            raise ValueError(f"malformed exposition line {line!r}") from error
    return samples
