"""repro.obs — dependency-free observability: metrics + structured logging.

The visibility layer of the serving stack (ROADMAP: "metrics/export
endpoint" + the observability half of the config-driven runner):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (fixed log-spaced
  buckets), Prometheus text exposition and :func:`parse_exposition`.
* :mod:`repro.obs.logging` — :class:`StructuredLogger` (JSON lines) with
  per-stage :meth:`~StructuredLogger.stage` timers.

One registry threads through the runtime layers: the streaming service
creates it and hands it to the session, which hands it to the sharded
estimator, which hands it to the shard worker pool — so one ``metrics``
op (or one ``GET /metrics`` scrape) reads the whole tree.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.logging import StageTimer, StructuredLogger

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "StageTimer",
    "StructuredLogger",
]
