"""Structured (JSON-lines) logging with per-stage wall-clock timers.

A :class:`StructuredLogger` writes one JSON object per line — machine
parseable, greppable, and safe to interleave from multiple threads (each
line is a single ``write`` call).  It is disabled by default (``stream=None``
→ every call is a cheap no-op), so library code can log unconditionally and
the daemon turns it on with ``--log-json``.

The per-stage timer bridges logs and metrics::

    log = StructuredLogger("repro.service", stream=sys.stderr)
    with log.stage("drain", histogram=stage_seconds.labels(stage="drain")):
        session.drain()

emits ``{"event": "drain", "seconds": 0.018, ...}`` *and* observes the
duration into the histogram; if the block raises, the stage is logged at
``error`` level with the exception attached, and the exception propagates.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, IO, Optional

__all__ = ["StructuredLogger", "StageTimer"]

_LEVELS = ("debug", "info", "warning", "error")


class StageTimer:
    """Times one named stage; logs (and optionally observes) on exit."""

    __slots__ = ("_logger", "stage", "fields", "_histogram", "_start", "seconds")

    def __init__(self, logger: "StructuredLogger", stage: str, histogram=None, **fields) -> None:
        self._logger = logger
        self.stage = stage
        self.fields = fields
        self._histogram = histogram
        self._start = 0.0
        self.seconds: Optional[float] = None

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.seconds)
        fields = dict(self.fields, seconds=round(self.seconds, 6))
        if exc is not None:
            self._logger.error(self.stage, error=f"{type(exc).__name__}: {exc}", **fields)
        else:
            self._logger.info(self.stage, **fields)


class StructuredLogger:
    """One JSON object per line; disabled (no-op) unless given a stream."""

    def __init__(
        self,
        name: str,
        stream: Optional[IO[str]] = None,
        *,
        clock=time.time,
    ) -> None:
        self.name = name
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def log(self, level: str, event: str, **fields: Any) -> None:
        if self._stream is None:
            return
        if level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}, got {level!r}")
        record = {
            "ts": round(self._clock(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            self._stream.write(line)
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def stage(self, stage: str, histogram=None, **fields: Any) -> StageTimer:
        """``with log.stage("drain"): ...`` — time, log, and observe a stage."""
        return StageTimer(self, stage, histogram=histogram, **fields)
