"""Windowed and time-decayed estimators: a ring of mergeable panes.

The paper's estimators answer "how often has x appeared *ever*?".  A
production service under drifting traffic usually wants "how often has x
appeared *recently*?" — and the mergeable / serializable substrate built
in earlier PRs makes that nearly free:

* :class:`SlidingWindowSketch` keeps a ring of ``num_panes`` sub-sketches
  ("panes") built independently from one inner spec.  Arrivals land in the
  head pane; rotation (every ``pane_items`` weighted arrivals, or on an
  explicit :meth:`~SlidingWindowSketch.tick` in wall-clock mode) advances
  the head and drops the oldest pane in O(1) — no per-counter aging pass.
  Queries answer from the *merge* of the live panes, so for every linear
  base (count_min / count_sketch / ams / exact_counter / opt_hash) the
  window's answer is bit-identical to a fresh sketch fed only the
  in-window arrivals.
* :class:`DecayedSketch` reuses the same ring but weights pane ``age`` by
  ``decay ** age`` at query time — exponential forgetting with no
  full-table rescale anywhere on the hot path.

Both register under the one build/loads name space (kinds
``"sliding_window"`` / ``"decayed"``, described by
:class:`~repro.api.specs.WindowedSpec`), so ``repro.open``, ``restore``,
:class:`~repro.core.sharding.ShardedEstimator` and the streaming service
compose with them unchanged.

Over an opt-hash inner spec the learning phase runs **once** (panes share
the trained scheme, like sharding does) but panes start from *empty*
bucket aggregates rather than the prefix seeding — a window measures only
what arrived inside it, and seeding every pane would replicate the prefix
mass once per live pane in the merge.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import build, register_estimator
from repro.api.specs import (
    EstimatorSpec,
    OptHashSpec,
    SpecError,
    WindowedSpec,
    spec_from_dict,
)
from repro.sketches.base import FrequencyEstimator, IncompatibleSketchError
from repro.sketches.serialization import (
    SerializationError,
    loads,
    pack,
    register_sketch,
    unpack,
)
from repro.streams.stream import Element

__all__ = ["SlidingWindowSketch", "DecayedSketch"]


def _pane_factory(inner: EstimatorSpec, context: Optional[dict]):
    """``(factory, training_result)`` producing merge-compatible panes.

    Plain sketch specs build through the registry.  Opt-hash specs train
    once and share the learned scheme across every pane (rotation must not
    re-run the learning phase), with empty initial frequencies — see the
    module docstring.
    """
    context = context or {}
    if isinstance(inner, OptHashSpec):
        if context.get("prefix") is None:
            raise SpecError(
                f"a windowed spec over kind {inner.kind!r} runs a learning "
                "phase: pass the observed stream prefix, e.g. "
                "build(spec, prefix=prefix)"
            )
        from repro.api.registry import config_from_spec
        from repro.core.estimator import (
            AdaptiveOptHashEstimator,
            OptHashEstimator,
        )
        from repro.core.pipeline import train_opt_hash

        training = train_opt_hash(
            context["prefix"],
            config_from_spec(inner),
            featurizer=context.get("featurizer"),
        )
        scheme = training.scheme
        if inner.adaptive:
            factory = lambda: AdaptiveOptHashEstimator(  # noqa: E731
                scheme,
                initial_frequencies={},
                bloom_bits=inner.bloom_bits,
                expected_distinct=inner.expected_distinct,
                seed=inner.seed,
            )
        else:
            factory = lambda: OptHashEstimator(  # noqa: E731
                scheme, initial_frequencies={}, seed=inner.seed
            )
        return factory, training
    return (lambda: build(inner)), None


def _close_estimator(estimator, discard: bool) -> None:
    """Release an estimator's storage backend, tolerating every base kind.

    ``discard=True`` skips the detach-to-dense copy (the object is being
    dropped — a rotated-out pane, a stale merged cache) so owned shm
    segments unlink immediately instead of surviving as dense copies.
    """
    close = getattr(estimator, "close", None)
    if close is None:
        return
    try:
        close(detach=not discard)
    except TypeError:
        close()


def _build_windowed(cls, spec: WindowedSpec, context: dict):
    return cls._from_spec(spec, context)


@register_estimator(
    "sliding_window",
    spec_cls=WindowedSpec,
    builder=_build_windowed,
    seedless=True,
)
@register_sketch("sliding_window")
class SlidingWindowSketch(FrequencyEstimator):
    """Sliding-window estimator over any mergeable inner spec.

    Parameters
    ----------
    inner:
        The pane spec — any mergeable registered kind as an
        :class:`~repro.api.specs.EstimatorSpec` or its JSON-safe dict form
        (randomized kinds need an explicit seed so rotated-in panes stay
        merge-compatible).
    num_panes:
        Ring size ``K >= 2``.  The window covers between ``K-1`` and ``K``
        panes of history (the oldest pane is partially expired on average);
        more panes mean finer expiry granularity at ``K`` times the inner
        state.
    pane_items:
        Rotate automatically every ``pane_items`` *weighted* arrivals
        (count-based windowing; a batch straddling a boundary is split
        exactly).  ``None`` (default) rotates only on explicit
        :meth:`tick` calls — the wall-clock mode where the caller owns the
        timer, as the streaming service does.
    prefix / featurizer:
        Training context, only consulted for opt-hash inner specs.
    """

    def __init__(
        self,
        inner,
        num_panes: int = 8,
        pane_items: Optional[int] = None,
        *,
        prefix=None,
        featurizer=None,
    ) -> None:
        spec = WindowedSpec(spec_from_dict(inner), num_panes, pane_items, None)
        self._init_ring(spec, {"prefix": prefix, "featurizer": featurizer})

    # ------------------------------------------------------------------
    # construction plumbing (shared with DecayedSketch and from_bytes)
    # ------------------------------------------------------------------
    @classmethod
    def _from_spec(cls, spec: WindowedSpec, context: dict):
        if spec.kind != cls.SERIAL_TAG:
            raise SpecError(
                f"{cls.__name__} builds kind {cls.SERIAL_TAG!r}, "
                f"got a {spec.kind!r} spec"
            )
        self = cls.__new__(cls)
        self._init_ring(spec, context)
        return self

    def _init_ring(
        self, spec: WindowedSpec, context: Optional[dict], build_panes: bool = True
    ) -> None:
        self._window_spec = spec
        self.inner_spec = spec.inner
        self.num_panes = spec.num_panes
        self.pane_items = spec.pane_items
        self.decay = spec.decay
        self._factory, self.training_result = _pane_factory(spec.inner, context)
        self._panes = [self._factory() for _ in range(spec.num_panes)] if build_panes else []
        self._head = 0
        self._fill = 0
        self._rotations = 0
        self._pane_arrivals = [0] * spec.num_panes
        self._merged_cache = None
        self._dirty = True
        if self._panes:
            self._feature_routed = bool(
                getattr(self._panes[0], "routes_by_features", False)
            )
        else:
            self._feature_routed = spec.inner.kind == "adaptive_opt_hash"

    @property
    def scheme(self):
        """The shared learned scheme (opt-hash inner only; else ``None``)."""
        training = self.training_result
        return training.scheme if training is not None else None

    @property
    def routes_by_features(self) -> bool:
        """Whether ingestion must see full Elements (adaptive opt-hash)."""
        return self._feature_routed

    @property
    def kernel_backend(self):
        """The kernel backend the panes run on (None for non-kernel inners).

        Panes come from one factory, so the head pane speaks for the ring.
        """
        if not self._panes:
            return None
        return getattr(self._head_pane(), "kernel_backend", None)

    # ------------------------------------------------------------------
    # ring mechanics
    # ------------------------------------------------------------------
    def _head_pane(self):
        return self._panes[self._head]

    def pane_at_age(self, age: int):
        """The live pane ``age`` rotations old (0 = currently filling)."""
        if not 0 <= age < self.num_panes:
            raise IndexError(
                f"pane age must lie in [0, {self.num_panes}), got {age}"
            )
        return self._panes[(self._head - age) % self.num_panes]

    def _rotate(self) -> None:
        """Advance the head; the oldest pane is dropped and rebuilt blank."""
        slot = (self._head + 1) % self.num_panes
        _close_estimator(self._panes[slot], discard=True)
        self._panes[slot] = self._factory()
        self._head = slot
        self._fill = 0
        self._pane_arrivals[slot] = 0
        self._rotations += 1
        self._dirty = True

    def tick(self) -> int:
        """Rotate once (wall-clock windowing); returns the rotation count.

        The caller owns the clock: the streaming service calls this from
        its flush timer, tests call it directly.  Rotation happens whether
        or not the head pane is full.
        """
        self._rotate()
        return self._rotations

    @property
    def rotations(self) -> int:
        """How many panes have been rotated out since construction."""
        return self._rotations

    def window_state(self) -> dict:
        """JSON-safe window introspection (service ``stats`` / metrics).

        ``pane_arrivals`` is ordered youngest first, i.e. indexed by age.
        """
        return {
            "num_panes": self.num_panes,
            "pane_items": self.pane_items,
            "decay": self.decay,
            "rotations": self._rotations,
            "head_fill": self._fill,
            "pane_arrivals": [
                self._pane_arrivals[(self._head - age) % self.num_panes]
                for age in range(self.num_panes)
            ],
        }

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def update(self, element: Element) -> None:
        item = element if self._feature_routed else element.key
        keys, ones = self._scalar_batch(item)
        self._ingest(keys, ones)

    def update_batch(self, keys, counts=None) -> None:
        if not self._feature_routed:
            super().update_batch(keys, counts)
            return
        # Feature-routing panes (adaptive opt-hash) must see the Elements
        # themselves; normalize counts here without stripping to raw keys.
        items = keys.tolist() if isinstance(keys, np.ndarray) else list(keys)
        if counts is None:
            count_array = np.ones(len(items), dtype=np.int64)
        else:
            count_array = np.asarray(counts, dtype=np.int64)
            if count_array.shape != (len(items),):
                raise ValueError("counts must align one-to-one with keys")
            if len(items) and count_array.min() < 0:
                raise ValueError("counts must be non-negative")
        self._ingest(items, count_array)

    def _ingest(self, key_batch, count_array: np.ndarray) -> None:
        total = int(count_array.sum())
        if total == 0:
            return
        self._dirty = True
        if self.pane_items is None:
            self._head_pane().update_batch(key_batch, count_array)
            self._fill += total
            self._pane_arrivals[self._head] += total
            return
        # Count-based rotation with exact boundary splitting: a batch is a
        # run of weighted arrivals, and the pane boundary may fall *inside*
        # one key's count.  cumsum + searchsorted find the spanned slice;
        # the end counts are trimmed to the [done, done+take) sub-run.
        cum = np.cumsum(count_array)
        done = 0
        while done < total:
            room = self.pane_items - self._fill
            if room <= 0:
                # A merge can leave the head past pane_items; drain first.
                self._rotate()
                continue
            take = min(room, total - done)
            lo = int(np.searchsorted(cum, done, side="right"))
            hi = int(np.searchsorted(cum, done + take, side="left"))
            counts_slice = np.array(count_array[lo : hi + 1], dtype=np.int64)
            prev = int(cum[lo - 1]) if lo else 0
            counts_slice[0] -= done - prev
            counts_slice[-1] -= int(cum[hi]) - (done + take)
            self._head_pane().update_batch(key_batch[lo : hi + 1], counts_slice)
            self._fill += take
            self._pane_arrivals[self._head] += take
            done += take
            if self._fill >= self.pane_items:
                self._rotate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _merged_estimator(self):
        """The merge of every live pane (cached until the next mutation).

        Merging at the *state* level before querying is what makes the
        window bit-identical to a rebuild for every linear base — e.g. for
        count-min the estimate is min-of-summed-rows, not sum-of-mins.
        """
        if self._dirty or self._merged_cache is None:
            if self._merged_cache is not None:
                _close_estimator(self._merged_cache, discard=True)
                self._merged_cache = None
            merged = self._factory()
            for age in range(self.num_panes - 1, -1, -1):
                merged.merge(self.pane_at_age(age))
            self._merged_cache = merged
            self._dirty = False
        return self._merged_cache

    def _query_target(self, method: str):
        target = self._merged_estimator()
        bound = getattr(target, method, None)
        if bound is None:
            raise TypeError(
                f"inner kind {self.inner_spec.kind!r} does not support "
                f"{method}(); query it through its native API"
            )
        return bound

    def estimate(self, element: Element) -> float:
        return float(self._query_target("estimate")(element))

    def estimate_batch(self, keys) -> np.ndarray:
        return self._query_target("estimate_batch")(keys)

    def estimate_second_moment(self) -> float:
        """In-window second moment (AMS inner specs)."""
        return float(self._query_target("estimate_second_moment")())

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "SlidingWindowSketch") -> "SlidingWindowSketch":
        """Pane-aligned merge: age-``a`` panes of both rings are merged.

        Requires identical window configuration *and* rotation count —
        pane ``a`` of both sketches must cover the same window slice for
        the merged ring to mean anything.  Afterwards this sketch answers
        as if it had also ingested the other's in-window arrivals.
        """
        if type(other) is not type(self):
            raise IncompatibleSketchError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            self.num_panes != other.num_panes
            or self.pane_items != other.pane_items
            or self.decay != other.decay
            or self.inner_spec.to_dict() != other.inner_spec.to_dict()
        ):
            raise IncompatibleSketchError(
                "window configurations differ: merged windowed sketches "
                "must share num_panes, pane_items, decay and the inner spec"
            )
        if self._rotations != other._rotations:
            raise IncompatibleSketchError(
                f"pane alignment differs: {self._rotations} vs "
                f"{other._rotations} rotations — age-a panes would cover "
                "different window slices"
            )
        for age in range(self.num_panes):
            self.pane_at_age(age).merge(other.pane_at_age(age))
        self._fill += other._fill
        for age in range(self.num_panes):
            slot = (self._head - age) % self.num_panes
            other_slot = (other._head - age) % other.num_panes
            self._pane_arrivals[slot] += other._pane_arrivals[other_slot]
        self._dirty = True
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        state = {
            "spec": self._window_spec.to_dict(),
            "head": self._head,
            "fill": self._fill,
            "rotations": self._rotations,
            "pane_arrivals": list(self._pane_arrivals),
        }
        arrays = {}
        for index, pane in enumerate(self._panes):
            to_bytes = getattr(pane, "to_bytes", None)
            if to_bytes is None:
                raise SerializationError(
                    f"inner kind {self.inner_spec.kind!r} has no binary "
                    "serialization; the windowed wrapper cannot snapshot it"
                )
            arrays[f"pane_{index}"] = np.frombuffer(to_bytes(), dtype=np.uint8)
        return pack(type(self).SERIAL_TAG, state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlidingWindowSketch":
        _, state, arrays = unpack(data, expect_tag=cls.SERIAL_TAG)
        spec_dict = state.get("spec")
        if not isinstance(spec_dict, dict):
            raise SerializationError("windowed buffer is missing its spec")
        try:
            spec = spec_from_dict(spec_dict)
        except SpecError as error:
            raise SerializationError(
                f"windowed buffer holds an invalid spec: {error}"
            ) from error
        if not isinstance(spec, WindowedSpec) or spec.kind != cls.SERIAL_TAG:
            raise SerializationError(
                f"windowed buffer spec has kind "
                f"{getattr(spec, 'kind', None)!r}, expected {cls.SERIAL_TAG!r}"
            )
        self = cls.__new__(cls)
        self._init_ring(spec, {}, build_panes=False)
        panes = []
        for index in range(spec.num_panes):
            blob = arrays.get(f"pane_{index}")
            if blob is None:
                raise SerializationError(
                    f"windowed buffer is missing pane {index} of "
                    f"{spec.num_panes}"
                )
            panes.append(loads(blob.tobytes(), expect_kind=spec.inner.kind))
        self._panes = panes
        self._head = int(state.get("head", 0)) % spec.num_panes
        self._fill = int(state.get("fill", 0))
        self._rotations = int(state.get("rotations", 0))
        stored = state.get("pane_arrivals")
        if isinstance(stored, list) and len(stored) == spec.num_panes:
            self._pane_arrivals = [int(value) for value in stored]
        return self

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return int(sum(int(pane.size_bytes) for pane in self._panes))

    def _describe_params(self) -> dict:
        params = {
            "inner": self.inner_spec.to_dict(),
            "num_panes": self.num_panes,
        }
        if self.pane_items is not None:
            params["pane_items"] = self.pane_items
        if self.decay is not None:
            params["decay"] = self.decay
        return params

    def close(self) -> None:
        """Release pane storage backends (panes stay queryable, detached)."""
        for pane in self._panes:
            _close_estimator(pane, discard=False)
        if self._merged_cache is not None:
            _close_estimator(self._merged_cache, discard=True)
            self._merged_cache = None
            self._dirty = True


@register_estimator(
    "decayed",
    spec_cls=WindowedSpec,
    builder=_build_windowed,
    seedless=True,
)
@register_sketch("decayed")
class DecayedSketch(SlidingWindowSketch):
    """Exponentially time-decayed estimator on the sliding-window ring.

    A query answers ``sum_age decay**age * estimate_age(key)`` over the
    live panes — each rotation implicitly multiplies all existing mass by
    ``decay`` without touching a single counter.  Combining per-pane
    *estimates* (instead of merging state) keeps every pane's own error
    guarantee: for count-min each term overestimates, so the decayed
    answer still never underestimates the decayed count.

    Mass older than ``num_panes`` rotations leaves the ring entirely, so
    the ring size bounds the decay horizon: choose ``num_panes`` with
    ``decay ** num_panes`` below the error you care about.
    """

    def __init__(
        self,
        inner,
        num_panes: int = 8,
        decay: float = 0.5,
        pane_items: Optional[int] = None,
        *,
        prefix=None,
        featurizer=None,
    ) -> None:
        spec = WindowedSpec(spec_from_dict(inner), num_panes, pane_items, decay)
        self._init_ring(spec, {"prefix": prefix, "featurizer": featurizer})

    def estimate(self, element: Element) -> float:
        total = 0.0
        for age in range(self.num_panes):
            pane = self.pane_at_age(age)
            estimate = getattr(pane, "estimate", None)
            if estimate is None:
                raise TypeError(
                    f"inner kind {self.inner_spec.kind!r} does not support "
                    "estimate(); query it through its native API"
                )
            total += (self.decay ** age) * float(estimate(element))
        return total

    def estimate_batch(self, keys) -> np.ndarray:
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        out: Optional[np.ndarray] = None
        for age in range(self.num_panes):
            pane = self.pane_at_age(age)
            estimate_batch = getattr(pane, "estimate_batch", None)
            if estimate_batch is None:
                raise TypeError(
                    f"inner kind {self.inner_spec.kind!r} does not support "
                    "estimate_batch(); query it through its native API"
                )
            values = np.asarray(estimate_batch(items), dtype=np.float64)
            if out is None:
                out = (self.decay ** age) * values
            else:
                out += (self.decay ** age) * values
        assert out is not None
        return out

    def estimate_second_moment(self) -> float:
        raise TypeError(
            "second moments do not decompose over decay-weighted panes; "
            "use a sliding_window spec for windowed second moments"
        )
