"""Temporal estimators: sliding windows, exponential decay, drift, reopt.

Importing this package registers the ``"sliding_window"`` and
``"decayed"`` estimator kinds (described by
:class:`~repro.api.specs.WindowedSpec`) in the shared build/loads name
space; :mod:`repro.api.registry` and
:mod:`repro.sketches.serialization` both import it lazily for exactly
that side effect.
"""

from repro.temporal.drift import BucketErrorProfile, DriftDetector, DriftSignal
from repro.temporal.reopt import (
    BackgroundReOptimizer,
    ReOptimizationResult,
    ReOptimizer,
    WeightedPrefix,
    prefix_from_counts,
)
from repro.temporal.windowed import DecayedSketch, SlidingWindowSketch

__all__ = [
    "SlidingWindowSketch",
    "DecayedSketch",
    "BucketErrorProfile",
    "DriftDetector",
    "DriftSignal",
    "WeightedPrefix",
    "prefix_from_counts",
    "ReOptimizer",
    "ReOptimizationResult",
    "BackgroundReOptimizer",
]
