"""Online re-optimization: retrain the learned scheme, hot-swap it live.

The paper trains its hashing scheme once, on a prefix, and never looks
back.  With the temporal layer in place the natural closed loop is:

1. a :class:`~repro.temporal.windowed.SlidingWindowSketch` (or the
   service's ingest path) keeps recent per-key counts;
2. a :class:`~repro.temporal.drift.DriftDetector` notices the training
   profile has gone stale;
3. :class:`ReOptimizer` re-runs the full learning phase on the fresh
   counts — as a *weighted* prefix, so a pane's count table stands in for
   the arrival sequence without materializing it — and swaps the newly
   trained estimator into a live :class:`~repro.api.session.Session` or
   :class:`~repro.service.server.StreamingService` between micro-batches.

Training happens in whatever thread calls :meth:`ReOptimizer.retrain`
(:class:`BackgroundReOptimizer` provides the off-thread variant); only
the final pointer swap touches the serving path, and the swap targets
guarantee it lands between batches, never inside one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Optional, Sequence

import numpy as np

from repro.api.specs import OptHashSpec, SpecError, spec_from_dict
from repro.streams.stream import Element

__all__ = [
    "WeightedPrefix",
    "prefix_from_counts",
    "ReOptimizationResult",
    "ReOptimizer",
    "BackgroundReOptimizer",
]


class WeightedPrefix:
    """A ``key -> count`` table wearing the training-prefix protocol.

    :func:`~repro.core.pipeline.train_opt_hash` only needs ``len()``,
    ``distinct_elements()`` and ``training_arrays()`` from its prefix, so
    recent observations summarized as counts (a window pane, a drift
    detector's buffer) can feed the learning phase directly — no need to
    expand them back into an arrival sequence.
    """

    def __init__(
        self,
        counts: Mapping[Hashable, float],
        features: Optional[Mapping[Hashable, Sequence[float]]] = None,
    ) -> None:
        if not counts:
            raise ValueError("a weighted prefix needs at least one key")
        elements = []
        for key in counts:
            if features is not None and key in features:
                elements.append(Element.with_features(key, features[key]))
            else:
                elements.append(Element(key=key))
        self._elements = elements
        self._frequencies = np.fromiter(
            (float(counts[key]) for key in counts),
            dtype=np.float64,
            count=len(elements),
        )
        if len(self._frequencies) and self._frequencies.min() < 0:
            raise ValueError("counts must be non-negative")

    def __len__(self) -> int:
        return int(self._frequencies.sum())

    def distinct_elements(self):
        return list(self._elements)

    def training_arrays(self):
        keys = [element.key for element in self._elements]
        if self._elements and len(self._elements[0].features) > 0:
            features = np.array(
                [element.feature_array() for element in self._elements]
            )
        else:
            features = np.zeros((len(keys), 0))
        return keys, features, self._frequencies.copy()


def prefix_from_counts(counts, features=None) -> WeightedPrefix:
    """Lift observed counts into a trainable :class:`WeightedPrefix`.

    Accepts a plain mapping, anything with an ``observed_counts`` property
    (a :class:`~repro.temporal.drift.DriftDetector`), or an exact-counting
    estimator exposing its count table (``ExactCounter``).
    """
    if isinstance(counts, Mapping):
        return WeightedPrefix(counts, features)
    observed = getattr(counts, "observed_counts", None)
    if isinstance(observed, Mapping):
        if features is None:
            # A DriftDetector remembers the features its Elements carried;
            # feature-based classifiers need them again at retrain time.
            features = getattr(counts, "observed_features", None) or None
        return WeightedPrefix(observed, features)
    table = getattr(counts, "_counts", None)
    if isinstance(table, Mapping):
        return WeightedPrefix(dict(table), features)
    raise TypeError(
        f"cannot extract key counts from {type(counts).__name__}; pass a "
        "mapping, a DriftDetector, or an ExactCounter"
    )


@dataclass
class ReOptimizationResult:
    """Outcome of one retrain + hot-swap cycle."""

    training: object  # the full TrainingResult of the fresh learning phase
    old_estimator: object  # what was serving before the swap (maybe closed)

    @property
    def estimator(self):
        return self.training.estimator

    @property
    def scheme(self):
        return self.training.scheme


class ReOptimizer:
    """Re-run the opt-hash learning phase and swap the result into a target.

    Parameters
    ----------
    spec:
        The :class:`~repro.api.specs.OptHashSpec` (or its dict form) to
        retrain under — typically the spec the live estimator was built
        from, reused verbatim.
    featurizer:
        Optional featurizer forwarded to the learning phase.
    """

    def __init__(self, spec, featurizer: Optional[Callable] = None) -> None:
        spec = spec_from_dict(spec)
        if not isinstance(spec, OptHashSpec):
            raise SpecError(
                f"re-optimization retrains an opt-hash spec, got kind "
                f"{spec.kind!r}"
            )
        self.spec = spec
        self.featurizer = featurizer

    def retrain(self, counts, features=None):
        """Run the full learning phase on fresh counts; a TrainingResult.

        The returned estimator is seeded with the fresh counts as its
        initial frequencies, so it answers sensibly from the first
        post-swap query.
        """
        from repro.api.registry import config_from_spec
        from repro.core.pipeline import train_opt_hash

        if hasattr(counts, "training_arrays"):
            prefix = counts
        else:
            prefix = prefix_from_counts(counts, features)
        return train_opt_hash(
            prefix, config_from_spec(self.spec), featurizer=self.featurizer
        )

    def reoptimize(
        self, target, counts, features=None, *, close_old: bool = True
    ) -> ReOptimizationResult:
        """Retrain on ``counts`` and hot-swap the result into ``target``.

        ``target`` is anything exposing ``hot_swap(spec, estimator,
        close_old=...)`` — a :class:`~repro.api.session.Session`, a
        :class:`~repro.service.server.ServiceThread`, or a
        :class:`~repro.service.server.StreamingService` driven from its
        own loop.  With ``close_old=False`` the previous estimator is
        returned still-live (callers that must audit what the old
        estimator absorbed — e.g. the zero-loss service test — stash it).
        """
        training = self.retrain(counts, features)
        swap = getattr(target, "hot_swap", None)
        if swap is None:
            raise TypeError(
                f"{type(target).__name__} does not support hot_swap(); "
                "pass a Session, ServiceThread, or StreamingService"
            )
        old = swap(self.spec, training.estimator, close_old=close_old)
        return ReOptimizationResult(training=training, old_estimator=old)


class BackgroundReOptimizer:
    """One retrain + hot-swap cycle on a daemon thread.

    The learning phase (solver + classifier fit) is the expensive part of
    re-optimization; running it here keeps the ingest path live the whole
    time, and the final swap still lands between micro-batches because the
    target's ``hot_swap`` serializes against ingestion itself.

    >>> background = BackgroundReOptimizer(reoptimizer, service_thread)
    >>> background.start(detector.observed_counts)
    >>> ...  # keep ingesting
    >>> result = background.join()
    """

    def __init__(self, reoptimizer: ReOptimizer, target, *, close_old: bool = True):
        self.reoptimizer = reoptimizer
        self.target = target
        self.close_old = close_old
        self.result: Optional[ReOptimizationResult] = None
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, counts, features=None) -> "BackgroundReOptimizer":
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("a re-optimization cycle is already running")
        self.result = None
        self.error = None

        def run() -> None:
            try:
                self.result = self.reoptimizer.reoptimize(
                    self.target, counts, features, close_old=self.close_old
                )
            except BaseException as error:  # surfaced on join()
                self.error = error

        self._thread = threading.Thread(
            target=run, name="repro-reoptimize", daemon=True
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> ReOptimizationResult:
        """Wait for the cycle; returns its result or re-raises its error."""
        if self._thread is None:
            raise RuntimeError("start() was never called")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("re-optimization still running")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result
