"""Drift detection for a learned hashing scheme.

The opt-hash estimator's error guarantee rests on an assumption the paper
never has to defend: the frequency profile the scheme was trained on keeps
describing the stream.  Under drift that breaks in two distinguishable
ways, and this module scores both:

* **mass shift** — traffic migrates between buckets, so the per-bucket
  share of total mass moves away from the training profile (measured as
  total-variation distance between the two share vectors);
* **error growth** — keys *inside* a bucket stop having similar
  frequencies, so the bucket-average estimate degrades (measured as the
  within-bucket relative MAE, ``sum_b sum_{k in b} |f_k - mean_b| /
  sum_k f_k`` — exactly the scale-free form of the objective the solver
  minimized at training time).

Both statistics are scale-free, so a profile built from prefix counts is
comparable with one built from a recent pane regardless of volume.  The
:class:`DriftDetector` accumulates recent observations (typically one
window pane's worth — call :meth:`~DriftDetector.reset` on rotation),
scores them against the training reference and raises a
:class:`DriftSignal` past a threshold; :mod:`repro.temporal.reopt` turns
that signal into a retrain + hot-swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from repro.sketches.base import as_key_batch

__all__ = ["BucketErrorProfile", "DriftDetector", "DriftSignal"]


@dataclass(frozen=True)
class BucketErrorProfile:
    """Scale-free summary of how a frequency profile sits in the buckets.

    ``mass_share[b]`` is the fraction of total mass routed to bucket ``b``;
    ``relative_mae`` is the within-bucket mean absolute deviation summed
    over all keys, divided by the total mass.
    """

    num_buckets: int
    mass_share: np.ndarray
    relative_mae: float
    total_mass: float
    num_keys: int

    @classmethod
    def from_frequencies(cls, scheme, keys, frequencies) -> "BucketErrorProfile":
        """Profile an aligned ``(keys, frequencies)`` pair under ``scheme``.

        Keys absent from the exact hash table route through the scheme's
        classifier, exactly as live queries would.
        """
        keys = list(keys)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if len(keys) != len(frequencies):
            raise ValueError("frequencies must align one-to-one with keys")
        num_buckets = scheme.num_buckets
        if len(keys) == 0:
            return cls(num_buckets, np.zeros(num_buckets), 0.0, 0.0, 0)
        buckets = scheme.buckets_batch(keys)
        totals = np.zeros(num_buckets)
        counts = np.zeros(num_buckets)
        np.add.at(totals, buckets, frequencies)
        np.add.at(counts, buckets, 1.0)
        total_mass = float(totals.sum())
        means = np.divide(
            totals, counts, out=np.zeros_like(totals), where=counts != 0
        )
        deviation = float(np.abs(frequencies - means[buckets]).sum())
        share = totals / total_mass if total_mass > 0 else np.zeros(num_buckets)
        relative_mae = deviation / total_mass if total_mass > 0 else 0.0
        return cls(num_buckets, share, relative_mae, total_mass, len(keys))

    @classmethod
    def from_training(cls, training) -> "BucketErrorProfile":
        """Profile a :class:`~repro.core.pipeline.TrainingResult`."""
        return cls.from_frequencies(
            training.scheme, training.stored_keys, training.stored_frequencies
        )

    @classmethod
    def from_counts(cls, scheme, counts: Dict[Hashable, float]) -> "BucketErrorProfile":
        """Profile an observed ``key -> count`` mapping (e.g. one pane)."""
        keys = list(counts)
        frequencies = np.fromiter(
            (counts[key] for key in keys), dtype=np.float64, count=len(keys)
        )
        return cls.from_frequencies(scheme, keys, frequencies)


@dataclass(frozen=True)
class DriftSignal:
    """One drift check: the score, its decomposition, and the verdict.

    ``score = mass_shift + error_growth`` where ``mass_shift`` is the
    total-variation distance between bucket mass shares (in ``[0, 1]``)
    and ``error_growth`` is the increase (never decrease — an improving
    profile is not drift) in within-bucket relative MAE.
    """

    score: float
    mass_shift: float
    error_growth: float
    drifted: bool
    threshold: float
    observed_keys: int
    observed_mass: float

    def __bool__(self) -> bool:
        return self.drifted


class DriftDetector:
    """Score recent arrivals against a scheme's training profile.

    Parameters
    ----------
    scheme:
        The live :class:`~repro.core.scheme.OptHashScheme` whose routing is
        being monitored.
    reference:
        What the stream looked like at training time: a
        :class:`BucketErrorProfile`, or a
        :class:`~repro.core.pipeline.TrainingResult` (profiled via
        :meth:`BucketErrorProfile.from_training`).
    threshold:
        Drift is signalled when the combined score exceeds this.  The mass
        component alone is bounded by 1, so thresholds in ``(0, 1)`` are
        the useful range.
    min_keys:
        Checks observe at least this many distinct keys before they may
        signal drift — tiny samples make both statistics noisy.
    """

    def __init__(self, scheme, reference, threshold: float = 0.25, min_keys: int = 32):
        if not 0 < float(threshold):
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        if hasattr(reference, "stored_keys") and hasattr(reference, "scheme"):
            reference = BucketErrorProfile.from_training(reference)
        if not isinstance(reference, BucketErrorProfile):
            raise TypeError(
                "reference must be a BucketErrorProfile or a TrainingResult, "
                f"got {type(reference).__name__}"
            )
        if reference.num_buckets != scheme.num_buckets:
            raise ValueError(
                f"reference profiles {reference.num_buckets} buckets, the "
                f"scheme has {scheme.num_buckets}"
            )
        self.scheme = scheme
        self.reference = reference
        self.threshold = float(threshold)
        self.min_keys = int(min_keys)
        self._counts: Dict[Hashable, int] = {}
        self._items: Dict[Hashable, Hashable] = {}  # key -> routing handle

    def observe(self, keys, counts=None) -> None:
        """Accumulate a batch of recent arrivals (same inputs as ingest).

        When the batch carries :class:`~repro.streams.stream.Element`\\ s,
        the first element seen per key is kept as that key's routing
        handle — feature-based schemes need the features again at
        :meth:`check` time to bucket keys absent from the exact table.
        """
        items = keys.tolist() if isinstance(keys, np.ndarray) else list(keys)
        key_batch, count_array = as_key_batch(items, counts)
        table = self._counts
        handles = self._items
        for item, key, count in zip(items, key_batch, count_array):
            table[key] = table.get(key, 0) + int(count)
            if key not in handles:
                handles[key] = item

    def reset(self) -> None:
        """Drop the accumulated observations (call on pane rotation)."""
        self._counts = {}
        self._items = {}

    @property
    def observed_counts(self) -> Dict[Hashable, int]:
        """The accumulated ``key -> count`` observations (a copy)."""
        return dict(self._counts)

    @property
    def observed_features(self) -> Dict[Hashable, tuple]:
        """``key -> features`` for observations that arrived as Elements."""
        return {
            key: tuple(item.features)
            for key, item in self._items.items()
            if hasattr(item, "features") and len(item.features) > 0
        }

    def check(self, reset: bool = False) -> DriftSignal:
        """Score the accumulated observations against the reference.

        With ``reset=True`` the observation buffer is cleared afterwards,
        making consecutive checks independent pane-sized samples.
        """
        keys = list(self._counts)
        items = [self._items.get(key, key) for key in keys]
        frequencies = [self._counts[key] for key in keys]
        observed = BucketErrorProfile.from_frequencies(
            self.scheme, items, frequencies
        )
        mass_shift = 0.5 * float(
            np.abs(observed.mass_share - self.reference.mass_share).sum()
        )
        error_growth = max(
            0.0, observed.relative_mae - self.reference.relative_mae
        )
        score = mass_shift + error_growth
        drifted = score > self.threshold and observed.num_keys >= self.min_keys
        if reset:
            self.reset()
        return DriftSignal(
            score=score,
            mass_shift=mass_shift,
            error_growth=error_growth,
            drifted=drifted,
            threshold=self.threshold,
            observed_keys=observed.num_keys,
            observed_mass=observed.total_mass,
        )
