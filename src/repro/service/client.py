"""Clients of the streaming service: blocking and asyncio flavors.

:class:`StreamingClient` wraps a blocking socket — one instance per thread,
the natural shape for "N concurrent writer streams" load generators and for
calling the service from synchronous code.  :class:`AsyncStreamingClient`
speaks the identical protocol over asyncio streams for callers that already
live in an event loop.

Both convert ``{"ok": false}`` responses into :class:`ServiceError`, ship
int64 key batches as raw binary payloads (no JSON on the ingest hot path),
and return estimates as float64 arrays.

    with StreamingClient.connect(unix_path="/tmp/repro.sock") as client:
        client.ingest(keys)                  # numpy int64 -> binary frame
        live = client.estimate([3, 7, 11])   # answered during ingest
        client.flush()                       # barrier: all acks applied
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.service import protocol
from repro.service.protocol import ProtocolError, ServiceError

__all__ = ["StreamingClient", "AsyncStreamingClient", "ServiceError"]


def _ingest_frame(keys, counts) -> bytes:
    """Encode one ingest request (header + optional binary payload)."""
    header: Dict[str, Any] = {"op": "ingest"}
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iuf":
        binary, payload = protocol.binary_ingest_parts(
            keys, None if counts is None else np.asarray(counts, dtype=np.int64)
        )
        header.update(binary)
        return protocol.encode_frame(header) + payload
    header["keys"] = protocol.jsonable_keys(keys)
    if counts is not None:
        header["counts"] = [int(count) for count in np.asarray(counts)]
    return protocol.encode_frame(header)


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "service returned an error"))
    return response


class StreamingClient:
    """Blocking socket client; one instance per thread."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    @classmethod
    def connect(
        cls,
        *,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> "StreamingClient":
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of unix_path or host/port")
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_path)
        else:
            sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def _request(self, frame: bytes) -> Dict[str, Any]:
        self._sock.sendall(frame)
        line = self._reader.readline()
        if not line:
            raise ServiceError("service closed the connection")
        return _check(protocol.decode_frame(line))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ingest(self, keys, counts=None) -> int:
        """Ship one batch; returns the acknowledged arrival count."""
        return int(self._request(_ingest_frame(keys, counts))["ingested"])

    def estimate(self, keys) -> np.ndarray:
        """Live point queries; float64 estimates aligned with ``keys``."""
        response = self._request(
            protocol.encode_frame(
                {"op": "estimate", "keys": protocol.jsonable_keys(keys)}
            )
        )
        return np.asarray(response["estimates"], dtype=np.float64)

    def top_k(
        self, k: int, candidates: Optional[Sequence] = None
    ) -> List[Tuple[Any, float]]:
        """The ``k`` highest-estimate keys (among ``candidates`` if given)."""
        message: Dict[str, Any] = {"op": "top_k", "k": int(k)}
        if candidates is not None:
            message["candidates"] = protocol.jsonable_keys(candidates)
        response = self._request(protocol.encode_frame(message))
        return [(key, float(estimate)) for key, estimate in response["top"]]

    def flush(self) -> Dict[str, Any]:
        """Barrier: returns once every acknowledged batch is in the tables."""
        return self._request(protocol.encode_frame({"op": "flush"}))

    def stats(self) -> Dict[str, Any]:
        return self._request(protocol.encode_frame({"op": "stats"}))

    def metrics(self) -> Dict[str, Any]:
        """The service's metrics registry: Prometheus ``text`` + flat
        ``samples`` map (see the ``metrics`` op in the protocol docs)."""
        return self._request(protocol.encode_frame({"op": "metrics"}))

    def snapshot(self) -> Dict[str, Any]:
        """Flush, then write the service's restart snapshot."""
        return self._request(protocol.encode_frame({"op": "snapshot"}))

    def ping(self) -> bool:
        return bool(self._request(protocol.encode_frame({"op": "ping"}))["ok"])

    def shutdown(self) -> None:
        """Ask the service for a graceful drain-snapshot-stop."""
        self._request(protocol.encode_frame({"op": "shutdown"}))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent."""
        try:
            self._reader.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "StreamingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncStreamingClient:
    """The same protocol over asyncio streams."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        *,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> "AsyncStreamingClient":
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of unix_path or host/port")
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _request(self, frame: bytes) -> Dict[str, Any]:
        self._writer.write(frame)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("service closed the connection")
        return _check(protocol.decode_frame(line))

    async def ingest(self, keys, counts=None) -> int:
        return int((await self._request(_ingest_frame(keys, counts)))["ingested"])

    async def estimate(self, keys) -> np.ndarray:
        response = await self._request(
            protocol.encode_frame(
                {"op": "estimate", "keys": protocol.jsonable_keys(keys)}
            )
        )
        return np.asarray(response["estimates"], dtype=np.float64)

    async def top_k(
        self, k: int, candidates: Optional[Sequence] = None
    ) -> List[Tuple[Any, float]]:
        message: Dict[str, Any] = {"op": "top_k", "k": int(k)}
        if candidates is not None:
            message["candidates"] = protocol.jsonable_keys(candidates)
        response = await self._request(protocol.encode_frame(message))
        return [(key, float(estimate)) for key, estimate in response["top"]]

    async def flush(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "flush"}))

    async def stats(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "stats"}))

    async def metrics(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "metrics"}))

    async def snapshot(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "snapshot"}))

    async def ping(self) -> bool:
        return bool((await self._request(protocol.encode_frame({"op": "ping"})))["ok"])

    async def shutdown(self) -> None:
        await self._request(protocol.encode_frame({"op": "shutdown"}))

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncStreamingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
