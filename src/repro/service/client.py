"""Clients of the streaming service: blocking and asyncio flavors.

:class:`StreamingClient` wraps a blocking socket — one instance per thread,
the natural shape for "N concurrent writer streams" load generators and for
calling the service from synchronous code.  :class:`AsyncStreamingClient`
speaks the identical protocol over asyncio streams for callers that already
live in an event loop.

Both convert ``{"ok": false}`` responses into :class:`ServiceError`, ship
int64 key batches as raw binary payloads (no JSON on the ingest hot path),
and return estimates as float64 arrays.

    with StreamingClient.connect(unix_path="/tmp/repro.sock") as client:
        client.ingest(keys)                  # numpy int64 -> binary frame
        live = client.estimate([3, 7, 11])   # answered during ingest
        client.flush()                       # barrier: all acks applied

Resilience: pass ``retry_policy=RetryPolicy(...)`` to ``connect`` and the
client survives transport failures — a dropped connection is rebuilt and the
request retried with exponential backoff + jitter.  Every ingest then
carries an idempotency ID (``request_id``), and the service keeps a dedup
window keyed on it, so a retry of a batch whose ack was lost in flight is
acknowledged again *without* double-counting.  Only transport failures are
retried; an application-level ``{"ok": false}`` always raises immediately,
and ``shutdown`` is never retried.
"""

from __future__ import annotations

import asyncio
import socket
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.resilience.retry import RetryPolicy
from repro.service import protocol
from repro.service.protocol import ProtocolError, ServiceError

__all__ = [
    "StreamingClient",
    "AsyncStreamingClient",
    "ConnectionLost",
    "ServiceError",
]


class ConnectionLost(ServiceError):
    """The transport failed (send, receive, or reconnect) — the request may
    or may not have reached the service.  Retried automatically when the
    client has a retry policy and the request is idempotent."""


def _ingest_frame(keys, counts, request_id: Optional[str] = None) -> bytes:
    """Encode one ingest request (header + optional binary payload)."""
    header: Dict[str, Any] = {"op": "ingest"}
    if request_id is not None:
        header["request_id"] = request_id
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iuf":
        binary, payload = protocol.binary_ingest_parts(
            keys, None if counts is None else np.asarray(counts, dtype=np.int64)
        )
        header.update(binary)
        return protocol.encode_frame(header) + payload
    header["keys"] = protocol.jsonable_keys(keys)
    if counts is not None:
        header["counts"] = [int(count) for count in np.asarray(counts)]
    return protocol.encode_frame(header)


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "service returned an error"))
    return response


class StreamingClient:
    """Blocking socket client; one instance per thread."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        connect_args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._sock: Optional[socket.socket] = sock
        self._reader = sock.makefile("rb")
        self._retry_policy = retry_policy
        self._connect_args = connect_args
        self._rid_prefix = uuid.uuid4().hex[:16]
        self._rid_seq = 0

    @classmethod
    def connect(
        cls,
        *,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "StreamingClient":
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of unix_path or host/port")
        sock = cls._open_socket(
            unix_path=unix_path, host=host, port=port, timeout=timeout
        )
        return cls(
            sock,
            retry_policy=retry_policy,
            connect_args={
                "unix_path": unix_path,
                "host": host,
                "port": port,
                "timeout": timeout,
            },
        )

    @staticmethod
    def _open_socket(
        *,
        unix_path: Optional[str],
        host: Optional[str],
        port: Optional[int],
        timeout: Optional[float],
    ) -> socket.socket:
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(timeout)
                sock.connect(unix_path)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection((host, port), timeout=timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        """Drop the (possibly broken) transport so the next attempt rebuilds it."""
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for resource in (reader, sock):
            if resource is not None:
                try:
                    resource.close()
                except Exception:
                    pass

    def _reconnect(self) -> None:
        if self._connect_args is None:
            raise ConnectionLost(
                "cannot reconnect: client was built from a raw socket "
                "(use StreamingClient.connect for auto-reconnect)"
            )
        try:
            sock = self._open_socket(**self._connect_args)
        except OSError as error:
            raise ConnectionLost(f"reconnect failed: {error}") from error
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _request_once(self, frame: bytes) -> Dict[str, Any]:
        if self._sock is None or self._reader is None:
            raise ConnectionLost("client is not connected")
        try:
            self._sock.sendall(frame)
            line = self._reader.readline()
        except (OSError, ValueError) as error:
            raise ConnectionLost(f"transport failed: {error}") from error
        if not line:
            raise ConnectionLost("service closed the connection")
        return _check(protocol.decode_frame(line))

    def _request(self, frame: bytes, *, idempotent: bool = True) -> Dict[str, Any]:
        policy = self._retry_policy
        if policy is None or not idempotent:
            return self._request_once(frame)
        delays = policy.delays()
        while True:
            try:
                if self._sock is None:
                    self._reconnect()
                return self._request_once(frame)
            except ConnectionLost as error:
                self._teardown()
                try:
                    delay = next(delays)
                except StopIteration:
                    raise ConnectionLost(
                        f"request failed after "
                        f"{policy.max_attempts} attempts: {error}"
                    ) from error
                time.sleep(delay)

    def _next_request_id(self) -> str:
        self._rid_seq += 1
        return f"{self._rid_prefix}-{self._rid_seq}"

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ingest(self, keys, counts=None, request_id: Optional[str] = None) -> int:
        """Ship one batch; returns the acknowledged arrival count.

        With a retry policy, each batch gets an idempotency ID (unless the
        caller supplies ``request_id``), so a retried batch whose first ack
        was lost is acknowledged from the service's dedup window instead of
        being counted twice.
        """
        if request_id is None and self._retry_policy is not None:
            request_id = self._next_request_id()
        return int(
            self._request(_ingest_frame(keys, counts, request_id))["ingested"]
        )

    def estimate(self, keys) -> np.ndarray:
        """Live point queries; float64 estimates aligned with ``keys``."""
        response = self._request(
            protocol.encode_frame(
                {"op": "estimate", "keys": protocol.jsonable_keys(keys)}
            )
        )
        return np.asarray(response["estimates"], dtype=np.float64)

    def top_k(
        self, k: int, candidates: Optional[Sequence] = None
    ) -> List[Tuple[Any, float]]:
        """The ``k`` highest-estimate keys (among ``candidates`` if given)."""
        message: Dict[str, Any] = {"op": "top_k", "k": int(k)}
        if candidates is not None:
            message["candidates"] = protocol.jsonable_keys(candidates)
        response = self._request(protocol.encode_frame(message))
        return [(key, float(estimate)) for key, estimate in response["top"]]

    def flush(self) -> Dict[str, Any]:
        """Barrier: returns once every acknowledged batch is in the tables."""
        return self._request(protocol.encode_frame({"op": "flush"}))

    def stats(self) -> Dict[str, Any]:
        return self._request(protocol.encode_frame({"op": "stats"}))

    def metrics(self) -> Dict[str, Any]:
        """The service's metrics registry: Prometheus ``text`` + flat
        ``samples`` map (see the ``metrics`` op in the protocol docs)."""
        return self._request(protocol.encode_frame({"op": "metrics"}))

    def snapshot(self) -> Dict[str, Any]:
        """Flush, then write the service's restart snapshot."""
        return self._request(protocol.encode_frame({"op": "snapshot"}))

    def ping(self) -> bool:
        return bool(self._request(protocol.encode_frame({"op": "ping"}))["ok"])

    def shutdown(self) -> None:
        """Ask the service for a graceful drain-snapshot-stop (never retried)."""
        self._request(protocol.encode_frame({"op": "shutdown"}), idempotent=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent; safe on a client whose transport already failed."""
        self._teardown()

    def __enter__(self) -> "StreamingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncStreamingClient:
    """The same protocol over asyncio streams."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        connect_args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self._retry_policy = retry_policy
        self._connect_args = connect_args
        self._rid_prefix = uuid.uuid4().hex[:16]
        self._rid_seq = 0

    @classmethod
    async def connect(
        cls,
        *,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "AsyncStreamingClient":
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of unix_path or host/port")
        reader, writer = await cls._open_streams(
            unix_path=unix_path, host=host, port=port
        )
        return cls(
            reader,
            writer,
            retry_policy=retry_policy,
            connect_args={"unix_path": unix_path, "host": host, "port": port},
        )

    @staticmethod
    async def _open_streams(
        *,
        unix_path: Optional[str],
        host: Optional[str],
        port: Optional[int],
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if unix_path is not None:
            return await asyncio.open_unix_connection(unix_path)
        return await asyncio.open_connection(host, port)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    async def _teardown(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _reconnect(self) -> None:
        if self._connect_args is None:
            raise ConnectionLost(
                "cannot reconnect: client was built from raw streams "
                "(use AsyncStreamingClient.connect for auto-reconnect)"
            )
        try:
            reader, writer = await self._open_streams(**self._connect_args)
        except OSError as error:
            raise ConnectionLost(f"reconnect failed: {error}") from error
        self._reader = reader
        self._writer = writer

    async def _request_once(self, frame: bytes) -> Dict[str, Any]:
        if self._reader is None or self._writer is None:
            raise ConnectionLost("client is not connected")
        try:
            self._writer.write(frame)
            await self._writer.drain()
            line = await self._reader.readline()
        except (OSError, ValueError) as error:
            raise ConnectionLost(f"transport failed: {error}") from error
        if not line:
            raise ConnectionLost("service closed the connection")
        return _check(protocol.decode_frame(line))

    async def _request(
        self, frame: bytes, *, idempotent: bool = True
    ) -> Dict[str, Any]:
        policy = self._retry_policy
        if policy is None or not idempotent:
            return await self._request_once(frame)
        delays = policy.delays()
        while True:
            try:
                if self._writer is None:
                    await self._reconnect()
                return await self._request_once(frame)
            except ConnectionLost as error:
                await self._teardown()
                try:
                    delay = next(delays)
                except StopIteration:
                    raise ConnectionLost(
                        f"request failed after "
                        f"{policy.max_attempts} attempts: {error}"
                    ) from error
                await asyncio.sleep(delay)

    def _next_request_id(self) -> str:
        self._rid_seq += 1
        return f"{self._rid_prefix}-{self._rid_seq}"

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def ingest(
        self, keys, counts=None, request_id: Optional[str] = None
    ) -> int:
        if request_id is None and self._retry_policy is not None:
            request_id = self._next_request_id()
        response = await self._request(_ingest_frame(keys, counts, request_id))
        return int(response["ingested"])

    async def estimate(self, keys) -> np.ndarray:
        response = await self._request(
            protocol.encode_frame(
                {"op": "estimate", "keys": protocol.jsonable_keys(keys)}
            )
        )
        return np.asarray(response["estimates"], dtype=np.float64)

    async def top_k(
        self, k: int, candidates: Optional[Sequence] = None
    ) -> List[Tuple[Any, float]]:
        message: Dict[str, Any] = {"op": "top_k", "k": int(k)}
        if candidates is not None:
            message["candidates"] = protocol.jsonable_keys(candidates)
        response = await self._request(protocol.encode_frame(message))
        return [(key, float(estimate)) for key, estimate in response["top"]]

    async def flush(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "flush"}))

    async def stats(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "stats"}))

    async def metrics(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "metrics"}))

    async def snapshot(self) -> Dict[str, Any]:
        return await self._request(protocol.encode_frame({"op": "snapshot"}))

    async def ping(self) -> bool:
        return bool((await self._request(protocol.encode_frame({"op": "ping"})))["ok"])

    async def shutdown(self) -> None:
        await self._request(
            protocol.encode_frame({"op": "shutdown"}), idempotent=False
        )

    async def close(self) -> None:
        """Idempotent; safe on a client whose transport already failed."""
        await self._teardown()

    async def __aenter__(self) -> "AsyncStreamingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
