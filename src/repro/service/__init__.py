"""repro.service — the streaming ingestion service.

A long-running daemon that puts the sharded, shared-memory estimator engine
behind a socket: many concurrent writers stream arrivals in, readers query
live estimates against the same tables while ingestion continues, and the
whole thing drains → snapshots → restarts without losing an acknowledged
batch.  This is the "millions of users" deployment shape the engine was
built for — estimates served continuously from live data, not rebuilt per
experiment.

* **Protocol** (:mod:`repro.service.protocol`): newline-delimited JSON
  frames over TCP or a Unix socket, with an optional raw-binary payload for
  int64 key batches (the ingest hot path skips JSON entirely).
* **Server** (:mod:`repro.service.server`): :class:`StreamingService` — an
  asyncio front-end that coalesces arrivals into micro-batches (size or
  deadline triggered) with bounded backpressure, applies them through one
  ingest thread into the estimator (whose shard workers scatter into shared
  memory), and serves ``estimate`` / ``top_k`` live.  SIGTERM triggers
  graceful drain → :meth:`Session.save` → exit; starting with an existing
  snapshot resumes from it.  :class:`ServiceThread` hosts a service on a
  background thread for tests and notebooks.
* **Client** (:mod:`repro.service.client`): :class:`StreamingClient`
  (blocking sockets, thread-per-stream friendly) and
  :class:`AsyncStreamingClient` (asyncio) speaking the same protocol.

Run a daemon from the command line::

    python -m repro.service --spec '{"kind": "count_min", ...}' \
        --unix /tmp/repro.sock --snapshot /tmp/repro.snap
"""

from repro.service.protocol import ProtocolError, ServiceError
from repro.service.server import ServiceThread, StreamingService
from repro.service.client import AsyncStreamingClient, StreamingClient

__all__ = [
    "ProtocolError",
    "ServiceError",
    "ServiceThread",
    "StreamingService",
    "StreamingClient",
    "AsyncStreamingClient",
]
