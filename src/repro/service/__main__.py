"""Run a streaming ingestion daemon: ``python -m repro.service``.

    python -m repro.service \\
        --spec '{"kind": "sharded", "inner": {"kind": "count_min", ...},
                 "executor": "process", "transport": "shm", "num_shards": 4}' \\
        --unix /tmp/repro.sock --snapshot /var/lib/repro/tables.snap

``--spec`` takes inline JSON or ``@path/to/spec.json``.  If the snapshot
file already exists the daemon resumes from it (the spec is then only a
fallback); on SIGTERM/SIGINT it drains, rewrites the snapshot atomically,
and exits 0 — the restart loop is just "run the same command again".
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.obs import StructuredLogger
from repro.service.server import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BUFFERED_KEYS,
    StreamingService,
)


def _parse_spec(text):
    if text is None:
        return None
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            return json.load(handle)
    return json.loads(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Streaming frequency-estimation ingestion daemon.",
    )
    parser.add_argument(
        "--spec",
        help="estimator spec as inline JSON, or @FILE to read it from disk",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numba", "native", "numpy"),
        help="kernel backend for the sketch hot paths; overrides the spec's "
        "own 'backend' field (drilling through sharded/windowed wrappers)",
    )
    parser.add_argument("--unix", help="Unix socket path to listen on")
    parser.add_argument("--host", help="TCP host to listen on")
    parser.add_argument("--port", type=int, default=0, help="TCP port (0=ephemeral)")
    parser.add_argument(
        "--snapshot",
        help="snapshot path: resumed from at startup if present, rewritten "
        "atomically on graceful shutdown",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=DEFAULT_FLUSH_INTERVAL,
        help="micro-batch coalescing deadline in seconds",
    )
    parser.add_argument(
        "--max-buffered-keys",
        type=int,
        default=DEFAULT_MAX_BUFFERED_KEYS,
        help="backpressure bound on accepted-but-unapplied arrivals",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        help="serve Prometheus text at GET /metrics on this HTTP port "
        "(0=ephemeral); omit to disable the HTTP listener (the in-protocol "
        "'metrics' op is always available)",
    )
    parser.add_argument(
        "--metrics-host",
        default="127.0.0.1",
        help="bind address of the /metrics listener (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--wal-dir",
        help="write-ahead log directory: every acked ingest batch is logged "
        "before the ack, so a crash (even SIGKILL) loses no acknowledged "
        "data — restart replays the log on top of the last snapshot",
    )
    parser.add_argument(
        "--wal-sync",
        choices=("os", "always"),
        default="os",
        help="WAL durability: 'os' flushes to the page cache (survives "
        "process death; default), 'always' fsyncs every record (survives "
        "power loss, slower)",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable the shard supervisor (a dead shard worker then parks "
        "the service instead of being restarted in place)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="circuit breaker: park the service after this many restarts of "
        "one shard within --restart-window seconds",
    )
    parser.add_argument(
        "--restart-window",
        type=float,
        default=60.0,
        help="sliding window (seconds) for the --max-restarts budget",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON-lines logs (lifecycle events, per-stage "
        "shutdown timings) on stderr",
    )
    args = parser.parse_args(argv)
    if args.unix is None and args.host is None:
        parser.error("pass --unix PATH or --host HOST [--port PORT]")
    spec = _parse_spec(args.spec)
    if args.backend is not None:
        if spec is None:
            parser.error("--backend requires --spec (it rewrites the spec)")
        from repro.api.registry import spec_with_backend
        from repro.api.specs import SpecError, spec_from_dict

        try:
            spec = spec_with_backend(
                spec_from_dict(spec), args.backend
            ).to_dict()
        except SpecError as error:
            parser.error(str(error))

    service = StreamingService(
        spec,
        snapshot_path=args.snapshot,
        unix_path=args.unix,
        host=args.host,
        port=args.port if args.host is not None else None,
        flush_interval=args.flush_interval,
        max_buffered_keys=args.max_buffered_keys,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
        wal_dir=args.wal_dir,
        wal_sync=args.wal_sync,
        supervise=not args.no_supervise,
        max_restarts=args.max_restarts,
        restart_window=args.restart_window,
        log=StructuredLogger("repro.service", sys.stderr) if args.log_json else None,
    )

    async def run():
        await service.start()
        service.install_signal_handlers()
        origin = "restored snapshot" if service.restored else "fresh spec"
        kernel = getattr(service.session.estimator, "kernel_backend", None)
        kernel_note = f", kernels={kernel}" if kernel is not None else ""
        print(
            f"repro.service listening on {service.endpoint} "
            f"(kind={service.session.kind}, {origin}{kernel_note})",
            flush=True,
        )
        if args.metrics_port is not None:
            host, port = service.metrics_endpoint
            print(f"metrics at http://{host}:{port}/metrics", flush=True)
        await service.serve_until_stopped()

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
