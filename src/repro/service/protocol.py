"""Wire protocol of the streaming service: NDJSON frames + binary payloads.

Every request and response is one JSON object encoded as UTF-8 on a single
line, terminated by ``\\n`` — trivially debuggable with ``nc``/``socat``,
and framing is just ``readline``.  The one place JSON would dominate the
cost is the ingest hot path (shipping millions of int64 keys), so an ingest
frame may instead declare a **binary payload**: the JSON header carries
``{"binary": {"count": N, "dtype": "<i8", "with_counts": true|false}}`` and
the raw little-endian key (and optional count) bytes follow immediately
after the newline.  The server reads exactly ``N * itemsize`` bytes per
declared array — no escaping, no base64, no per-element parsing.

Requests carry ``{"op": ...}``; responses carry ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.  Ops understood by the server:

``ingest``
    Keys (+ optional counts) to add.  Acknowledged once the batch is
    accepted into the service's bounded micro-batch buffer; an
    acknowledged batch survives any *graceful* shutdown (drain flushes the
    buffer before the snapshot is written).
``estimate``
    Point queries answered **live** — against the shards' current tables,
    without waiting for in-flight batches (monotone under-counts until a
    ``flush``).
``top_k``
    The ``k`` highest-estimate keys among ``candidates`` (always
    available), or from the estimator's own ``heavy_hitters`` tracking
    when it has one and no candidates are given.
``flush``
    Barrier: returns once every previously acknowledged batch is reflected
    in the tables (micro-batch buffer empty + shard workers drained).
``stats``
    Service counters (totals, buffered backlog, uptime, spec kind).
``metrics``
    The full metrics registry: Prometheus text exposition (``text`` +
    ``content_type``) and the same values as a flat ``samples`` map.  The
    identical exposition is served over plain HTTP at ``GET /metrics``
    when the service was started with a ``metrics_port``.
``snapshot``
    Flush, then write a restart snapshot to the server's configured path.
``ping`` / ``shutdown``
    Liveness probe / graceful drain-snapshot-stop.

**Frame-size limits.**  One JSON frame line may be at most
:data:`MAX_FRAME_BYTES` (64 MiB); the server's stream readers are sized to
match (``limit=MAX_FRAME_BYTES + 1``), so an oversized frame gets an
``ok: false`` error response — after which the connection is dropped,
because ``readline`` discards the overrunning bytes and framing is lost.
Binary payloads are bounded separately: :func:`payload_nbytes` rejects any
declaration over :data:`MAX_FRAME_BYTES`.  Batches larger than either bound
must be split into smaller ingest requests client-side.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServiceError",
    "encode_frame",
    "decode_frame",
    "binary_ingest_parts",
    "payload_nbytes",
    "arrays_from_payload",
    "jsonable_keys",
]

#: Upper bound on one JSON frame line (headers and JSON-encoded batches).
#: Binary payloads are bounded separately by their declared byte size.
MAX_FRAME_BYTES = 64 << 20

#: Dtypes a binary payload may declare.  Little-endian fixed-width only —
#: the wire format must not depend on either side's native byte order.
_BINARY_DTYPES = {"<i8", "<u8", "<f8"}


# Canonical definitions live in repro.errors (common ReproError base);
# this module remains their permanent public import path.  ProtocolError
# covers malformed frames (bad JSON, missing fields, oversized payloads);
# ServiceError is an ``{"ok": false}`` response, raised client-side.
from repro.errors import ProtocolError, ServiceError  # noqa: E402


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One JSON object → one newline-terminated wire line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """One wire line → dict, with typed errors for malformed input."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frames must be JSON objects")
    return message


def binary_ingest_parts(
    keys: np.ndarray, counts: Optional[np.ndarray] = None
) -> Tuple[Dict[str, Any], bytes]:
    """Binary-payload header fields + payload bytes for an int key batch.

    The caller merges the returned dict into its ingest header and appends
    the payload right after the frame's newline.
    """
    keys = np.ascontiguousarray(keys)
    wire = keys.dtype.newbyteorder("<")
    if wire.str not in _BINARY_DTYPES:
        raise ProtocolError(
            f"binary ingest supports dtypes {sorted(_BINARY_DTYPES)}; "
            f"got {keys.dtype.str!r} (send JSON keys instead)"
        )
    header: Dict[str, Any] = {
        "binary": {
            "count": int(keys.shape[0]),
            "dtype": wire.str,
            "with_counts": counts is not None,
        }
    }
    payload = keys.astype(wire, copy=False).tobytes()
    if counts is not None:
        count_array = np.ascontiguousarray(counts, dtype="<i8")
        if count_array.shape != keys.shape:
            raise ProtocolError("counts must align one-to-one with keys")
        payload += count_array.tobytes()
    return header, payload


def payload_nbytes(binary: Dict[str, Any]) -> int:
    """Total payload size a ``binary`` declaration commits the peer to read."""
    if not isinstance(binary, dict):
        raise ProtocolError("'binary' must be an object")
    dtype = binary.get("dtype")
    if dtype not in _BINARY_DTYPES:
        raise ProtocolError(f"unsupported binary dtype {dtype!r}")
    count = binary.get("count")
    # isinstance(True, int) holds, and True * 8 == 8: a boolean "count"
    # would commit the server to a phantom 8-byte read and desync framing.
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise ProtocolError("binary count must be a non-negative integer")
    itemsize = np.dtype(dtype).itemsize
    total = count * itemsize
    if binary.get("with_counts"):
        total += count * np.dtype("<i8").itemsize
    if total > MAX_FRAME_BYTES:
        raise ProtocolError(f"binary payload exceeds {MAX_FRAME_BYTES} bytes")
    return total


def arrays_from_payload(
    binary: Dict[str, Any], payload: bytes
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Decode a binary payload back into (keys, counts or None)."""
    dtype = np.dtype(binary["dtype"])
    count = int(binary["count"])
    split = count * dtype.itemsize
    if len(payload) != payload_nbytes(binary):
        raise ProtocolError("binary payload length disagrees with its header")
    keys = np.frombuffer(payload[:split], dtype=dtype).astype(
        dtype.newbyteorder("="), copy=False
    )
    counts = None
    if binary.get("with_counts"):
        counts = np.frombuffer(payload[split:], dtype="<i8").astype(
            np.int64, copy=False
        )
    return keys, counts


def jsonable_keys(keys) -> list:
    """A key batch as a JSON-safe list (ints and strings pass through)."""
    if isinstance(keys, np.ndarray):
        return keys.tolist()
    out = []
    for key in keys:
        if isinstance(key, (np.integer,)):
            out.append(int(key))
        elif isinstance(key, (np.floating,)):
            out.append(float(key))
        else:
            out.append(key)
    return out
