"""The asyncio streaming ingestion daemon.

One :class:`StreamingService` owns one :class:`~repro.api.session.Session`
(built from a spec, or restored from the previous run's snapshot) and puts
it behind a socket:

* **Accept** — each client connection is an asyncio reader task; frames are
  newline-delimited JSON with an optional binary payload (see
  :mod:`repro.service.protocol`).
* **Coalesce** — ingest batches land in a bounded buffer; a single pump
  task flushes it into ``estimator.update_batch`` whenever the backlog
  reaches the worker chunk size *or* a flush deadline expires, whichever
  comes first.  One partition pass per micro-batch routes the coalesced
  arrivals to their shards; with the shm transport the shard workers then
  scatter into shared memory in parallel with everything below.
* **Backpressure** — when the buffer is at capacity, ingest handlers
  *await* space instead of acking, which stops reading those sockets; TCP
  flow control pushes the stall back to the writers.  Bounded end to end.
* **Serve live** — ``estimate`` answers from the shards' current tables
  (``live_estimate``) without draining in-flight batches: readers never
  wait on writers.
* **Drain / snapshot / restart** — SIGTERM (or ``shutdown``) stops intake,
  flushes the buffer, drains the shard workers, writes an atomic snapshot
  via :meth:`Session.save`, and exits; constructing the service with the
  same ``snapshot_path`` resumes from it.  Every *acknowledged* ingest is
  in the snapshot by construction.

Estimator access is serialized through a one-thread executor: the pump's
``update_batch`` (cheap routing — heavy scatters happen in the shard
worker processes) and queries interleave there without locking the event
loop or each other.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import contextlib
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import session as api_session
from repro.core.workers import WORKER_CHUNK_SIZE
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    StructuredLogger,
)
from repro.resilience import failpoints
from repro.resilience.supervisor import RestartBudget, load_shard_state
from repro.resilience.wal import DEFAULT_SEGMENT_BYTES, ServiceWAL
from repro.service import protocol

__all__ = ["StreamingService", "ServiceThread"]


def _is_strict_int(value) -> bool:
    """True for real integers only — JSON booleans are ints to isinstance."""
    return isinstance(value, int) and not isinstance(value, bool)


def _all_int_keys(keys) -> bool:
    """True when every key is a genuine int (bool keys stay Python objects)."""
    return bool(keys) and all(_is_strict_int(key) for key in keys)

#: Default coalescing deadline: a micro-batch is flushed at the latest this
#: many seconds after its first arrival, even when under-full.
DEFAULT_FLUSH_INTERVAL = 0.05

#: Default buffer bound (keys, not batches): ingest acks stall once this
#: many arrivals are buffered but not yet handed to the estimator.
DEFAULT_MAX_BUFFERED_KEYS = 4 * WORKER_CHUNK_SIZE


class _IngestBuffer:
    """The bounded micro-batch buffer between connections and the pump.

    Each part carries the WAL marks (lane → seq) its append produced (or
    ``None`` without a WAL), so the pump can advance the processed-marks
    watermark once the part is applied.
    """

    __slots__ = ("parts", "total_keys", "accepted_keys", "accepted_batches")

    def __init__(self) -> None:
        self.parts: List[Tuple[Any, Optional[np.ndarray], Optional[Dict[int, int]]]] = []
        self.total_keys = 0
        self.accepted_keys = 0
        self.accepted_batches = 0

    def add(self, keys, counts, marks=None) -> int:
        n = len(keys)
        self.parts.append((keys, counts, marks))
        self.total_keys += n
        self.accepted_keys += n
        self.accepted_batches += 1
        return n

    def take(self) -> List[Tuple[Any, Optional[np.ndarray], Optional[Dict[int, int]]]]:
        parts, self.parts = self.parts, []
        self.total_keys = 0
        return parts


def _coalesce(parts):
    """Merge buffered (keys, counts, marks) parts into one update_batch call.

    All-ndarray int batches concatenate (the binary-ingest hot path);
    anything else falls back to one Python list.  Counts default to ones
    only where a part omitted them, so weighted and unweighted parts mix.
    WAL marks merge to the per-lane maximum (appends are in seq order, so
    the coalesced batch's marks are simply the newest of its parts').
    """
    marks: Dict[int, int] = {}
    for _, _, part_marks in parts:
        if part_marks:
            for lane, seq in part_marks.items():
                if seq > marks.get(lane, 0):
                    marks[lane] = seq
    if len(parts) == 1:
        return parts[0][0], parts[0][1], marks
    if all(isinstance(keys, np.ndarray) for keys, _, _ in parts):
        keys = np.concatenate([part_keys for part_keys, _, _ in parts])
    else:
        keys = []
        for part_keys, _, _ in parts:
            keys.extend(
                part_keys.tolist() if isinstance(part_keys, np.ndarray) else part_keys
            )
    if all(part_counts is None for _, part_counts, _ in parts):
        return keys, None, marks
    counts = np.concatenate(
        [
            part_counts
            if part_counts is not None
            else np.ones(len(part_keys), dtype=np.int64)
            for part_keys, part_counts, _ in parts
        ]
    )
    return keys, counts, marks


class StreamingService:
    """A long-running ingest/query daemon over one estimator session.

    Parameters
    ----------
    spec:
        Estimator spec (or dict) to build when no snapshot exists.  May be
        ``None`` if ``snapshot_path`` names an existing snapshot.
    snapshot_path:
        Where graceful shutdown writes the restart snapshot — and where
        the service resumes from when the file already exists at startup.
    unix_path / host, port:
        Listen endpoint: a Unix socket path, or a TCP host/port (pass
        ``port=0`` for an ephemeral port, read back from ``endpoint``).
    flush_interval:
        Micro-batch coalescing deadline in seconds.
    rotation_interval:
        Wall-clock pane rotation period in seconds for temporal estimators
        (``sliding_window`` / ``decayed`` specs built with
        ``pane_items=None``).  The tick rides the pump's existing flush
        timer — no extra task or polling loop — and runs on the estimator
        thread, so it always lands between micro-batches.  Monotonic: a
        pump stalled past several deadlines catches up with multiple
        ticks (capped at the ring size; beyond that every pane is already
        blank).  Requires an estimator exposing ``tick()``.
    max_buffered_keys:
        Backpressure bound on arrivals accepted but not yet applied.
    metrics_host / metrics_port:
        When ``metrics_port`` is given, a plain-HTTP listener additionally
        serves ``GET /metrics`` in Prometheus text format (pass ``0`` for
        an ephemeral port, read back from ``metrics_endpoint``).  The same
        exposition is always available in-protocol through the ``metrics``
        op.
    instrument:
        ``False`` swaps the registry for no-op metrics — the baseline the
        ≤5% overhead gate (``benchmarks/test_obs_overhead.py``) compares
        against.
    log:
        Optional :class:`~repro.obs.StructuredLogger` for JSON-lines
        lifecycle events (start/stop/failure, per-stage shutdown timings).
        Defaults to a disabled logger.
    wal_dir:
        Directory for the write-ahead log.  When set, every ingest batch
        is appended (and OS-flushed) *before* it is acknowledged, and
        startup replays whatever the snapshot does not cover — every
        acked key then survives SIGKILL, not just graceful shutdown.
        For key-partitioned shm-sharded estimators the log is split into
        per-shard lanes, which also enables shard supervision (see
        ``supervise``).
    wal_sync:
        ``"os"`` (default) flushes each record to the page cache —
        survives process death; ``"always"`` additionally fsyncs per
        record — survives machine crashes, at a syscall per batch.
    wal_segment_bytes:
        WAL segment rotation threshold.
    dedup_window:
        How many recent ingest ``request_id``\\ s the service remembers.
        A retried (already applied) request inside the window is re-acked
        without being re-counted; the window is rebuilt from the WAL on
        restart.
    supervise:
        With a WAL and a key-partitioned shm-sharded estimator, a dead
        shard worker no longer parks the service: queries answer
        ``degraded: true`` from the surviving shards while a supervisor
        rebuilds the shard from spec + last snapshot + its WAL lane.
        The circuit breaker below bounds how hard it tries.
    max_restarts / restart_window:
        Per-shard circuit breaker: more than ``max_restarts`` restart
        attempts within ``restart_window`` seconds parks the service
        (a shard that keeps dying is a bug, not a blip).
    """

    def __init__(
        self,
        spec=None,
        *,
        snapshot_path: Optional[str] = None,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        rotation_interval: Optional[float] = None,
        max_buffered_keys: int = DEFAULT_MAX_BUFFERED_KEYS,
        metrics_host: Optional[str] = None,
        metrics_port: Optional[int] = None,
        instrument: bool = True,
        log: Optional[StructuredLogger] = None,
        prefix=None,
        featurizer=None,
        wal_dir: Optional[str] = None,
        wal_sync: str = "os",
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        dedup_window: int = 65536,
        supervise: bool = True,
        max_restarts: int = 5,
        restart_window: float = 60.0,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("pass unix_path=... or host=/port= to listen on")
        if unix_path is not None and host is not None:
            raise ValueError("pass either unix_path or host/port, not both")
        if spec is None and not (snapshot_path and os.path.exists(snapshot_path)):
            raise ValueError(
                "no spec and no existing snapshot to restore — nothing to serve"
            )
        self._spec = spec
        self._prefix = prefix
        self._featurizer = featurizer
        self.snapshot_path = snapshot_path
        self._unix_path = unix_path
        self._host = host
        self._port = port
        self.flush_interval = float(flush_interval)
        if rotation_interval is not None and not rotation_interval > 0:
            raise ValueError(
                f"rotation_interval must be positive, got {rotation_interval!r}"
            )
        self.rotation_interval = (
            float(rotation_interval) if rotation_interval is not None else None
        )
        self.max_buffered_keys = int(max_buffered_keys)
        self.restored = False

        self.session: Optional[api_session.Session] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._stopped_future: Optional[asyncio.Future] = None
        self._stop_task: Optional[asyncio.Task] = None
        # One thread for ALL estimator access: routing-side update_batch,
        # drains, live queries, snapshots.  Serializing them here (instead
        # of locking inside the estimator) keeps the estimator single-
        # threaded by construction; real parallelism lives in the shard
        # worker processes behind it.
        self._estimator_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-estimator"
        )
        self._buffer = _IngestBuffer()
        self._data_event = asyncio.Event()  # buffer became non-empty / stopping
        self._chunk_event = asyncio.Event()  # buffer reached the chunk target
        self._space_event = asyncio.Event()  # buffer dropped below the bound
        self._applied_event = asyncio.Event()  # pump finished one apply
        self._space_event.set()
        self._stopping = False
        self._failure: Optional[str] = None
        self._started_at = time.monotonic()
        self._applied_keys = 0
        self._applied_batches = 0
        self._connections = 0
        self._rotations = 0  # service-driven ticks (count-based rotations live in the estimator)
        self._rotation_stamps: List[float] = []  # monotonic times of recent ticks
        self._next_rotation: Optional[float] = None
        self._hot_swaps = 0
        #: True from the moment the pump takes a micro-batch out of the
        #: buffer until its apply has completed — the barrier in
        #: :meth:`_wait_applied` must cover this window, or a snapshot can
        #: race a mid-apply batch (and miss it if the apply then fails).
        self._pump_busy = False
        #: True once the pump task has exited on an error path — recovery
        #: must never clear ``_failure`` then, or the service would accept
        #: ingests nobody applies.
        self._pump_broken = False
        self._metrics_host = metrics_host
        self._metrics_port = metrics_port
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        # --- resilience state (active only with wal_dir) -------------------
        self.wal_dir = wal_dir
        self._wal_sync = wal_sync
        self._wal_segment_bytes = int(wal_segment_bytes)
        self._wal: Optional[ServiceWAL] = None
        self._supervise = bool(supervise)
        self._supervising = False  # set in _setup_resilience when eligible
        self._max_restarts = int(max_restarts)
        self._restart_window = float(restart_window)
        self._processed_marks: Dict[int, int] = {}
        self._dedup: "collections.OrderedDict[str, int]" = collections.OrderedDict()
        self._dedup_window = int(dedup_window)
        self._dedup_hits = 0
        self._degraded: Dict[int, Dict[str, Any]] = {}
        self._budgets: Dict[int, RestartBudget] = {}
        self._worker_restarts = 0
        self._replayed_batches = 0
        self._degraded_queries = 0
        failpoints.arm_from_env()
        self.log = log if log is not None else StructuredLogger("repro.service")
        self.metrics = MetricsRegistry(enabled=instrument)
        self._init_metrics()

    def _init_metrics(self) -> None:
        metrics = self.metrics
        self._m_requests = metrics.counter(
            "repro_service_requests_total", "Requests handled, by op.", labels=("op",)
        )
        self._m_request_errors = metrics.counter(
            "repro_service_request_errors_total",
            "Requests answered with ok=false, by op.",
            labels=("op",),
        )
        self._m_request_seconds = metrics.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by op.",
            labels=("op",),
        )
        self._m_ingest_keys = metrics.counter(
            "repro_service_ingest_keys_total", "Arrivals accepted into the buffer."
        )
        self._m_ingest_batches = metrics.counter(
            "repro_service_ingest_batches_total", "Ingest requests accepted."
        )
        self._m_ingest_bytes = metrics.counter(
            "repro_service_ingest_bytes_total",
            "Wire bytes of accepted ingest requests (frame + binary payload).",
        )
        self._m_applied_keys = metrics.counter(
            "repro_service_applied_keys_total",
            "Arrivals the pump has handed to the estimator.",
        )
        self._m_applied_batches = metrics.counter(
            "repro_service_applied_batches_total",
            "Coalesced micro-batches applied by the pump.",
        )
        self._m_batch_keys = metrics.histogram(
            "repro_service_coalesced_batch_keys",
            "Keys per coalesced micro-batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_buffered_keys = metrics.gauge(
            "repro_service_buffered_keys",
            "Arrivals accepted but not yet handed to the estimator.",
        )
        self._m_stall_seconds = metrics.counter(
            "repro_service_backpressure_stall_seconds_total",
            "Total time ingest acks were withheld waiting for buffer space.",
        )
        self._m_stalls = metrics.counter(
            "repro_service_backpressure_stalls_total",
            "Ingest requests that hit the backpressure bound.",
        )
        self._m_connections = metrics.gauge(
            "repro_service_connections", "Open client connections."
        )
        self._m_failure = metrics.gauge(
            "repro_service_failure",
            "1 once the service is parked on an unrecoverable failure.",
        )
        self._m_uptime = metrics.gauge(
            "repro_service_uptime_seconds", "Seconds since service start."
        )
        self._m_rotations = metrics.counter(
            "repro_service_window_rotations_total",
            "Pane rotations driven by the service's rotation_interval timer.",
        )
        self._m_hot_swaps = metrics.counter(
            "repro_service_hot_swaps_total",
            "Live estimator replacements applied between micro-batches.",
        )
        self._m_window_head_fill = metrics.gauge(
            "repro_service_window_head_fill",
            "Arrivals absorbed by the head pane since its last rotation.",
        )
        self._m_window_pane_arrivals = metrics.gauge(
            "repro_service_window_pane_arrivals",
            "Arrivals held per live pane, youngest first.",
            labels=("age",),
        )
        self._m_window_pane_age = metrics.gauge(
            "repro_service_window_pane_age_seconds",
            "Seconds each live pane has been filling (tick-driven services).",
            labels=("age",),
        )
        self._m_wal_appended = metrics.counter(
            "repro_service_wal_appended_batches_total",
            "Ingest batches appended to the write-ahead log before acking.",
        )
        self._m_wal_replayed = metrics.counter(
            "repro_service_wal_replayed_batches_total",
            "WAL records re-applied (startup recovery + shard rebuilds).",
        )
        self._m_worker_restarts = metrics.counter(
            "repro_service_worker_restarts_total",
            "Shard workers revived by the supervisor.",
        )
        self._m_degraded_queries = metrics.counter(
            "repro_service_degraded_queries_total",
            "Queries answered from surviving shards while one rebuilds.",
        )
        self._m_down_shards = metrics.gauge(
            "repro_service_down_shards",
            "Shards currently dead or rebuilding.",
        )
        self._m_dedup_hits = metrics.counter(
            "repro_service_dedup_hits_total",
            "Retried ingests acknowledged from the idempotency window.",
        )
        self._m_recovery_seconds = metrics.histogram(
            "repro_service_recovery_seconds",
            "Wall-clock from worker death detection to shard recovery.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self):
        """The bound endpoint: a Unix socket path or a ``(host, port)``."""
        if self._unix_path is not None:
            return self._unix_path
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[:2]
        return (self._host, self._port)

    @property
    def metrics_endpoint(self) -> Optional[Tuple[str, int]]:
        """The bound ``GET /metrics`` HTTP endpoint, or ``None``."""
        if self._metrics_server is not None and self._metrics_server.sockets:
            return self._metrics_server.sockets[0].getsockname()[:2]
        if self._metrics_port is None:
            return None
        return (self._metrics_host or "127.0.0.1", self._metrics_port)

    def _open_session(self) -> api_session.Session:
        if self.snapshot_path and os.path.exists(self.snapshot_path):
            session = api_session.load(
                self.snapshot_path,
                options=api_session.Options(metrics=self.metrics),
            )
            self.restored = True
            return session
        return api_session.open(
            self._spec,
            options=api_session.Options(
                prefix=self._prefix,
                featurizer=self._featurizer,
                metrics=self.metrics,
            ),
        )

    def _remember_request(self, rid: str, count: int) -> None:
        dedup = self._dedup
        dedup[rid] = count
        dedup.move_to_end(rid)
        while len(dedup) > self._dedup_window:
            dedup.popitem(last=False)

    def _setup_resilience(self) -> None:
        """Estimator-thread body: open the WAL, replay, enable supervision.

        Runs before the socket accepts and before the pump starts, so the
        startup replay interleaves with nothing.
        """
        estimator = self.session.estimator
        if getattr(estimator, "storage_backend", "dense") == "mmap":
            raise ValueError(
                "wal_dir cannot be combined with a live mmap-backed "
                "estimator: its snapshots alias the live tables, so "
                "replaying the log over one would double-count records"
            )
        num_lanes, router = 1, None
        sharded = (
            getattr(estimator, "transport", None) == "shm"
            and getattr(estimator, "mode", None) == "key-partition"
            and hasattr(estimator, "shard_of_keys")
        )
        if sharded:
            num_lanes = estimator.num_shards
            router = estimator.shard_of_keys
        self._wal = ServiceWAL(
            self.wal_dir,
            num_lanes=num_lanes,
            router=router,
            segment_bytes=self._wal_segment_bytes,
            sync=self._wal_sync,
        )
        # The snapshot records what it covers: its wal marks travel inside
        # the snapshot file, written atomically with the counters.  Advance
        # each lane's checkpoint to them, so a crash *between* snapshot and
        # checkpoint never replays records the snapshot already holds.
        snapshot_marks = (getattr(self.session, "extra_state", None) or {}).get(
            "wal_marks"
        )
        if self.restored and isinstance(snapshot_marks, dict):
            self._wal.checkpoint(
                {int(lane): int(seq) for lane, seq in snapshot_marks.items()}
            )
        replayed = 0
        for _, record in self._wal.replay():
            estimator.update_batch(record.keys, record.counts)
            replayed += 1
            if record.request_id is not None:
                self._remember_request(record.request_id, len(record))
        if replayed:
            drain = getattr(estimator, "drain", None)
            if drain is not None:
                drain()
            self._replayed_batches += replayed
            self._m_wal_replayed.inc(replayed)
            self.log.info("wal_replayed", records=replayed)
        self._processed_marks = self._wal.positions()
        if sharded and self._supervise:
            estimator.enable_supervision()
            self._supervising = True

    async def start(self) -> "StreamingService":
        """Open (or restore) the session, bind the socket, start the pump."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._stopped_future = self._loop.create_future()
        self.session = await self._loop.run_in_executor(
            self._estimator_executor, self._open_session
        )
        warm_up = getattr(self.session.estimator, "warm_up", None)
        if warm_up is not None:
            await self._loop.run_in_executor(self._estimator_executor, warm_up)
        if self.wal_dir is not None:
            try:
                await self._loop.run_in_executor(
                    self._estimator_executor, self._setup_resilience
                )
            except BaseException:
                with contextlib.suppress(Exception):
                    await self._loop.run_in_executor(
                        self._estimator_executor, self.session.close
                    )
                self.session = None
                raise
        if self.rotation_interval is not None:
            if getattr(self.session.estimator, "tick", None) is None:
                kind = self.session.kind
                await self._loop.run_in_executor(
                    self._estimator_executor, self.session.close
                )
                self.session = None
                raise RuntimeError(
                    f"rotation_interval requires an estimator with tick() — "
                    f"kind {kind!r} has none (use a sliding_window/decayed spec)"
                )
            self._next_rotation = time.monotonic() + self.rotation_interval
        # The StreamReader's default 64 KiB limit would contradict
        # MAX_FRAME_BYTES: readline() on any larger JSON frame raises
        # before the handler ever sees it.  The +1 leaves room for the
        # newline terminator of a maximum-size frame.
        frame_limit = protocol.MAX_FRAME_BYTES + 1
        if self._unix_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._unix_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._unix_path, limit=frame_limit
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self._host,
                port=self._port or 0,
                limit=frame_limit,
            )
        if self._metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                host=self._metrics_host or "127.0.0.1",
                port=self._metrics_port,
            )
        self._pump_task = asyncio.ensure_future(self._pump())
        self.log.info(
            "service_started",
            endpoint=str(self.endpoint),
            kind=self.session.kind,
            restored=self.restored,
            metrics_endpoint=(
                str(self.metrics_endpoint) if self._metrics_server else None
            ),
        )
        return self

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain-snapshot-stop."""
        assert self._loop is not None, "call start() first"
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, self.request_stop)

    def request_stop(self) -> None:
        """Schedule a graceful stop (signal-handler / cross-task safe)."""
        if self._loop is None or self._stop_task is not None:
            return
        self._stop_task = self._loop.create_task(self.stop())

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a signal routed to it) completes."""
        assert self._stopped_future is not None, "call start() first"
        await self._stopped_future

    async def stop(self, *, drain: bool = True, snapshot: bool = True) -> None:
        """Graceful shutdown: stop intake → flush → drain → snapshot → exit.

        Idempotent (a second call awaits the first).  With ``drain`` every
        buffered batch is applied and the shard workers are drained before
        the snapshot is written, so the snapshot contains every
        acknowledged ingest; ``drain=False`` abandons the backlog (the
        snapshot then reflects only applied batches).  ``snapshot=False``
        (or no ``snapshot_path``) skips the save.
        """
        if self._stopped_future is None:
            return
        if self._stopping:
            await asyncio.shield(self._stopped_future)
            return
        self._stopping = True
        self.log.info("service_stopping", drain=drain, snapshot=snapshot)
        # Wake everything that might be waiting on buffer state.
        self._data_event.set()
        self._chunk_event.set()
        self._space_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for entry in list(self._degraded.values()):
            task = entry.get("task")
            if task is not None and not task.done():
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        if self._pump_task is not None:
            if drain:
                await self._pump_task
            else:
                self._pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._pump_task
        loop = asyncio.get_running_loop()
        if self.session is not None:
            if drain and self._failure is None:
                try:
                    with self.log.stage("shutdown_drain"):
                        await loop.run_in_executor(
                            self._estimator_executor, self.session.drain
                        )
                except Exception as error:
                    self._fail(f"shutdown drain failed: {error}")
            if (
                snapshot
                and self.snapshot_path
                and self._failure is None
                and not self._degraded
            ):
                # A parked (failed) service skips the snapshot: save() would
                # re-drain the broken pool, and overwriting the previous good
                # snapshot with a partial one would make restart worse.  A
                # *degraded* one skips it too — a survivors-only snapshot
                # would checkpoint-truncate WAL records the down shard still
                # needs; the WAL carries the delta to the next clean start.
                with self.log.stage("shutdown_snapshot", path=self.snapshot_path):
                    marks = dict(self._processed_marks) if self._wal else None
                    await loop.run_in_executor(
                        self._estimator_executor, self._save_snapshot_sync, marks
                    )
            with contextlib.suppress(Exception):
                await loop.run_in_executor(
                    self._estimator_executor, self.session.close
                )
        self._estimator_executor.shutdown(wait=True)
        if self._wal is not None:
            with contextlib.suppress(Exception):
                self._wal.close()
        if self._unix_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._unix_path)
        self.log.info(
            "service_stopped",
            applied_keys=self._applied_keys,
            failure=self._failure,
        )
        if not self._stopped_future.done():
            self._stopped_future.set_result(None)

    # ------------------------------------------------------------------
    # the micro-batching pump
    # ------------------------------------------------------------------
    def _apply(self, keys, counts) -> None:
        """Estimator-thread body: one coalesced update_batch call."""
        self.session.estimator.update_batch(keys, counts)

    def _tick(self, ticks: int) -> None:
        """Estimator-thread body: advance the pane ring ``ticks`` times."""
        tick = self.session.estimator.tick
        for _ in range(ticks):
            tick()

    def _window_state(self) -> Optional[Dict[str, Any]]:
        """The estimator's pane-ring state, or ``None`` for flat kinds."""
        if self.session is None:
            return None
        state = getattr(self.session.estimator, "window_state", None)
        return state() if state is not None else None

    def _pane_ages(self, now: float, num_panes: int) -> List[float]:
        """Seconds each live pane has been filling, youngest first.

        Anchored to this service's tick stamps: the pane of age ``a``
        became the head at the ``(a+1)``-th most recent tick; panes that
        pre-date every recorded tick fall back to the service start.
        Only meaningful for tick-driven windows — count-based rotations
        happen inside the estimator and leave no timestamp here.
        """
        stamps = self._rotation_stamps
        ages = []
        for age in range(num_panes):
            if age < len(stamps):
                anchor = stamps[-(age + 1)]
            else:
                anchor = self._started_at
            ages.append(round(now - anchor, 3))
        return ages

    async def _maybe_rotate(self) -> bool:
        """Rotate the pane ring if the wall-clock deadline has passed.

        Runs on the estimator thread, so ticks serialize between
        micro-batches.  Monotonic catch-up: a pump stalled through ``n``
        deadlines issues ``min(n, num_panes)`` ticks — past the ring size
        every pane is already blank, so further ticks are redundant.
        Returns ``False`` when a tick raised (the service is parked).
        """
        if (
            self._next_rotation is None
            or self._failure is not None
            or self._stopping
        ):
            return True
        now = time.monotonic()
        if now < self._next_rotation:
            return True
        due = 1 + int((now - self._next_rotation) // self.rotation_interval)
        state = self._window_state()
        num_panes = int(state["num_panes"]) if state else due
        ticks = min(due, num_panes)
        try:
            await self._loop.run_in_executor(
                self._estimator_executor, self._tick, ticks
            )
        except BaseException as error:  # noqa: BLE001 — park, don't die
            self._fail(f"pane rotation failed: {error}")
            return False
        self._rotations += ticks
        self._m_rotations.inc(ticks)
        self._rotation_stamps.extend([now] * ticks)
        del self._rotation_stamps[:-num_panes]
        # Advance by whole periods from the previous deadline, not from
        # `now`: the schedule stays phase-locked instead of drifting by
        # the pump's scheduling latency every tick.
        self._next_rotation += due * self.rotation_interval
        self.log.info(
            "window_rotated", ticks=ticks, total_rotations=self._rotations
        )
        return True

    async def _pump(self) -> None:
        """Single consumer of the ingest buffer.

        Waits for data, then gives the buffer up to ``flush_interval`` to
        reach the worker chunk size (the ``_chunk_event`` short-circuits
        the wait when it does), applies the coalesced batch on the
        estimator thread, and repeats.  A failure (e.g. a shard worker
        died) parks the service in an erroring state instead of hanging
        its clients.
        """
        assert self._loop is not None
        while True:
            if not await self._maybe_rotate():
                self._pump_broken = True
                break  # rotation failed: park, same as a failed apply
            self._check_health()
            if not self._buffer.parts:
                if self._stopping:
                    break
                self._data_event.clear()
                if not self._buffer.parts and not self._stopping:
                    if self._next_rotation is None and not self._supervising:
                        await self._data_event.wait()
                    else:
                        # The idle wait doubles as the rotation timer (wake
                        # at the pane deadline instead of adding a second
                        # polling task) and, when supervising, as the
                        # worker-liveness poll: an idle service still
                        # notices a dead shard worker within half a second.
                        delay = 0.5 if self._supervising else float("inf")
                        if self._next_rotation is not None:
                            delay = min(
                                delay,
                                max(0.0, self._next_rotation - time.monotonic()),
                            )
                        with contextlib.suppress(asyncio.TimeoutError):
                            await asyncio.wait_for(self._data_event.wait(), delay)
                continue
            if self._buffer.total_keys < WORKER_CHUNK_SIZE and not self._stopping:
                self._chunk_event.clear()
                if self._buffer.total_keys < WORKER_CHUNK_SIZE:
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._chunk_event.wait(), self.flush_interval
                        )
            # The in-flight window opens BEFORE the buffer is emptied:
            # between take() and the end of _apply the batch is in neither
            # the buffer nor the tables, and the _wait_applied barrier must
            # keep waiting through it.
            self._pump_busy = True
            parts = self._buffer.take()
            self._m_buffered_keys.set(0)
            self._space_event.set()
            keys, counts, marks = _coalesce(parts)
            self._m_batch_keys.observe(len(keys))
            try:
                await self._loop.run_in_executor(
                    self._estimator_executor, self._apply, keys, counts
                )
            except BaseException as error:  # noqa: BLE001 — park, don't die
                self._pump_busy = False
                self._pump_broken = True
                self._fail(f"ingestion failed: {error}")
                break
            self._applied_keys += len(keys)
            self._applied_batches += 1
            self._m_applied_keys.inc(len(keys))
            self._m_applied_batches.inc()
            # Advance the per-lane watermark: everything at or below these
            # seqs is now either in the shard tables or (for a down shard)
            # consumed from the buffer — exactly the records a rebuild must
            # replay on top of the last snapshot.
            for lane, seq in marks.items():
                if seq > self._processed_marks.get(lane, 0):
                    self._processed_marks[lane] = seq
            self._check_health()
            self._pump_busy = False
            self._applied_event.set()

    def _fail(self, message: str) -> None:
        """Park the service in an erroring state and wake every waiter.

        Connections stay open: subsequent requests get ``ok: false`` with
        this message — a dead shard worker must surface to clients as an
        error response, never as a hang.
        """
        if self._failure is None:
            self._failure = message
            self._m_failure.set(1)
            self.log.error("service_failure", error=message)
        self._space_event.set()
        self._applied_event.set()

    async def _wait_applied(self) -> None:
        """Barrier: buffer empty AND the pump idle (or the service failed).

        Checking the buffer alone is not enough: the pump ``take()``s the
        buffer *before* ``_apply`` runs, so an empty buffer can coexist
        with an acked micro-batch that is mid-apply — and if that apply
        then fails, a snapshot taken past the barrier would be missing
        acked keys.  ``_pump_busy`` covers exactly that window.
        """
        while (
            self._buffer.parts or self._buffer.total_keys or self._pump_busy
        ) and self._failure is None:
            self._applied_event.clear()
            if (
                self._buffer.parts or self._pump_busy
            ) and self._failure is None:
                await self._applied_event.wait()
        if self._failure is not None:
            raise RuntimeError(self._failure)

    # ------------------------------------------------------------------
    # shard supervision
    # ------------------------------------------------------------------
    def _check_health(self) -> None:
        """Notice newly-dead shard workers and launch their supervisors.

        Event-loop side and cheap (one liveness probe per shard); runs on
        every pump iteration and on the idle tick.
        """
        if not self._supervising or self._stopping or self.session is None:
            return
        estimator = self.session.estimator
        estimator.check_workers()
        # Shards can also join the down set through the submit/drain paths
        # (WorkerDeadError caught inside the estimator), so supervise from
        # the authoritative down set, not just this probe's findings.
        for shard_index in estimator.down_shards:
            if shard_index not in self._degraded:
                self._start_supervise(shard_index)

    def _start_supervise(self, shard_index: int) -> None:
        if shard_index in self._degraded:
            return
        entry: Dict[str, Any] = {"since": time.monotonic(), "task": None}
        self._degraded[shard_index] = entry
        self._m_down_shards.set(len(self._degraded))
        self.log.error("shard_worker_died", shard=shard_index)
        entry["task"] = self._loop.create_task(self._supervise_shard(shard_index))

    async def _supervise_shard(self, shard_index: int) -> None:
        """Rebuild one dead shard: backoff → restore → revive → replay.

        Runs as its own task so ingest and queries keep flowing (degraded)
        throughout; the rebuild itself serializes on the estimator thread,
        where it cannot interleave with applies.
        """
        budget = self._budgets.setdefault(
            shard_index,
            RestartBudget(
                max_restarts=self._max_restarts,
                window_seconds=self._restart_window,
            ),
        )
        detected = time.monotonic()
        while not self._stopping:
            if not budget.allow():
                self._degraded.pop(shard_index, None)
                self._m_down_shards.set(len(self._degraded))
                self._fail(
                    f"shard {shard_index} exceeded its restart budget "
                    f"({budget.max_restarts} in {budget.window_seconds:g}s); "
                    "parking the service"
                )
                return
            await asyncio.sleep(budget.next_delay())
            if self._stopping:
                return
            budget.record_attempt()
            try:
                await self._loop.run_in_executor(
                    self._estimator_executor, self._rebuild_shard_sync, shard_index
                )
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 — retry under budget
                self.log.error(
                    "shard_rebuild_failed", shard=shard_index, error=str(error)
                )
                continue
            budget.record_success()
            elapsed = time.monotonic() - detected
            self._worker_restarts += 1
            self._m_worker_restarts.inc()
            self._m_recovery_seconds.observe(elapsed)
            self._degraded.pop(shard_index, None)
            self._m_down_shards.set(len(self._degraded))
            self._recover_if_healthy()
            self.log.info(
                "shard_recovered",
                shard=shard_index,
                recovery_seconds=round(elapsed, 3),
                restarts=self._worker_restarts,
            )
            return

    def _rebuild_shard_sync(self, shard_index: int) -> None:
        """Estimator-thread body: restore + revive + WAL-replay one shard.

        Replay is bounded to the records the pump has already consumed
        (``_processed_marks``): anything newer is still in the ingest
        buffer and will be applied by the pump after the rebuild, exactly
        once.  The estimator thread is busy with *us*, so the watermark
        cannot advance mid-rebuild.
        """
        estimator = self.session.estimator
        restored = (
            load_shard_state(self.snapshot_path, shard_index)
            if self.snapshot_path
            else None
        )
        upto = self._processed_marks.get(shard_index, 0)
        records = list(self._wal.replay_lane(shard_index, upto=upto))
        estimator.rebuild_shard(shard_index, restored=restored, records=records)
        if records:
            self._replayed_batches += len(records)
            self._m_wal_replayed.inc(len(records))

    def _recover_if_healthy(self) -> None:
        """Un-park the service once every shard is back (satellite fix:
        a recovered service must not scrape as failed forever)."""
        if self._degraded or self._failure is None:
            return
        if self._pump_broken:
            return  # the pump is gone; clearing the flag would be a lie
        self._failure = None
        self._m_failure.set(0)
        self.log.info("service_recovered")

    def _degraded_fields(self, *, count: bool = True) -> Dict[str, Any]:
        """Extra response fields while shards are rebuilding (else empty)."""
        if not self._degraded:
            return {}
        if count:
            self._degraded_queries += 1
            self._m_degraded_queries.inc()
        oldest = min(entry["since"] for entry in self._degraded.values())
        return {
            "degraded": True,
            "down_shards": sorted(self._degraded),
            "staleness_seconds": round(time.monotonic() - oldest, 3),
        }

    def _save_snapshot_sync(self, marks: Optional[Dict[int, int]]) -> int:
        """Estimator-thread body: snapshot, then checkpoint the WAL.

        One executor job for drain + health check + serialize + write +
        checkpoint, so a shard rebuild can never interleave between the
        save and the truncation that claims coverage for it.  The marks
        land *inside* the snapshot (``extra_state``): the snapshot itself
        is the authoritative record of what it covers — see
        ``_setup_resilience``.

        Ordering matters: the health check runs *after* the drain.  A
        worker that died mid-drain leaves its table missing acked records;
        writing that table and then truncating the WAL would lose them.
        After a clean drain nothing mutates the tables (the pump is queued
        behind this job, the workers are idle), so serializing them is
        race-free even if a worker dies during it.
        """
        if self._wal is None:
            return self.session.save(self.snapshot_path)
        estimator = self.session.estimator
        self.session.drain()
        check = getattr(estimator, "check_workers", None)
        if check is not None:
            check()
        down = getattr(estimator, "down_shards", None)
        if down:
            raise RuntimeError(
                f"snapshot refused: shard(s) {sorted(down)} went down during "
                "the pre-snapshot drain"
            )
        blob = self.session.snapshot(extra_state={"wal_marks": marks})
        api_session.atomic_write(self.snapshot_path, blob)
        if marks is not None:
            self._wal.checkpoint(marks)
        return len(blob)

    # ------------------------------------------------------------------
    # live re-optimization
    # ------------------------------------------------------------------
    async def hot_swap(self, spec, estimator, *, close_old: bool = True):
        """Replace the live estimator between micro-batches.

        The swap runs on the single estimator thread, so it serializes
        behind any in-flight ``_apply`` — no micro-batch is ever split
        across the old and new estimator.  Buffered-but-unapplied
        arrivals land in the new estimator (acked keys are applied, never
        lost; whether a given key counts toward the old or new tables
        depends only on which side of the swap its micro-batch ran).

        This is the ``swap(spec, estimator, close_old=)`` protocol that
        :meth:`repro.temporal.ReOptimizer.reoptimize` targets.  Returns
        the old estimator (closed when ``close_old``).
        """
        if self.session is None:
            raise RuntimeError("service not started")
        if self._failure is not None:
            raise RuntimeError(self._failure)
        if self._next_rotation is not None and getattr(estimator, "tick", None) is None:
            raise ValueError(
                "this service rotates panes on a timer; the replacement "
                "estimator must expose tick()"
            )
        warm_up = getattr(estimator, "warm_up", None)
        if warm_up is not None:
            # Warm the incoming estimator on the default executor so the
            # live one keeps serving while pools spin up.
            await self._loop.run_in_executor(None, warm_up)

        def _swap():
            return self.session.hot_swap(spec, estimator, close_old=close_old)

        old = await self._loop.run_in_executor(self._estimator_executor, _swap)
        self._hot_swaps += 1
        self._m_hot_swaps.inc()
        self.log.info(
            "estimator_hot_swapped",
            kind=self.session.kind,
            close_old=close_old,
            hot_swaps=self._hot_swaps,
        )
        return old

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            failpoints.fire("service.accept")
        except failpoints.FailPointError:
            # Chaos: refuse this connection the way an overloaded or
            # restarting listener would — close without a byte.
            with contextlib.suppress(Exception):
                writer.close()
            return
        self._connections += 1
        self._m_connections.inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # The frame overran the reader's limit (it admits any
                    # frame up to MAX_FRAME_BYTES, so this one is over the
                    # protocol bound).  readline() has already discarded
                    # buffered bytes, so framing is lost: answer with a
                    # protocol error, then drop the connection.
                    line = None
                if line is None or len(line) > protocol.MAX_FRAME_BYTES:
                    if line is None or line:
                        response = {
                            "ok": False,
                            "error": (
                                f"frame exceeds {protocol.MAX_FRAME_BYTES} "
                                "bytes (use a binary ingest payload for "
                                "large batches)"
                            ),
                        }
                        self._m_request_errors.labels(op="invalid").inc()
                        writer.write(protocol.encode_frame(response))
                        with contextlib.suppress(
                            ConnectionResetError, BrokenPipeError
                        ):
                            await writer.drain()
                    break
                if not line:
                    break
                start = time.perf_counter()
                op = "invalid"
                try:
                    op, response = await self._dispatch(reader, line)
                except protocol.ProtocolError as error:
                    response = {"ok": False, "error": str(error)}
                except Exception as error:  # noqa: BLE001 — per-request fault wall
                    response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                self._m_requests.labels(op=op).inc()
                self._m_request_seconds.labels(op=op).observe(
                    time.perf_counter() - start
                )
                if not response.get("ok"):
                    self._m_request_errors.labels(op=op).inc()
                try:
                    # Chaos: the request was fully processed but the
                    # response never reaches the client — the retry/
                    # idempotency path this exercises must not double-count.
                    failpoints.fire("service.drop_response")
                except failpoints.FailPointError:
                    break
                writer.write(protocol.encode_frame(response))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if op == "ingest" and response.get("ok"):
                    # Chaos site for the crash matrix: fires strictly after
                    # the ack left the process, so a kill here tests
                    # "acked but not yet applied" recovery.
                    failpoints.fire("service.ingest.acked")
                if response.get("bye"):
                    break
        finally:
            self._connections -= 1
            self._m_connections.dec()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, reader: asyncio.StreamReader, line: bytes
    ) -> Tuple[str, Dict[str, Any]]:
        message = protocol.decode_frame(line)
        op = message.get("op")
        label = op if isinstance(op, str) else "invalid"
        try:
            if op == "ingest":
                return label, await self._op_ingest(reader, message, len(line))
            if op == "estimate":
                return label, await self._op_estimate(message)
            if op == "top_k":
                return label, await self._op_top_k(message)
            if op == "flush":
                return label, await self._op_flush()
            if op == "stats":
                return label, self._op_stats()
            if op == "metrics":
                return label, self._op_metrics()
            if op == "snapshot":
                return label, await self._op_snapshot()
            if op == "ping":
                return label, {"ok": True, "op": "ping"}
            if op == "shutdown":
                self.request_stop()
                return label, {"ok": True, "op": "shutdown", "bye": True}
            raise protocol.ProtocolError(f"unknown op {op!r}")
        except protocol.ProtocolError as error:
            return label, {"ok": False, "error": str(error)}
        except Exception as error:  # noqa: BLE001 — per-request fault wall
            return label, {"ok": False, "error": f"{type(error).__name__}: {error}"}

    async def _read_ingest_arrays(self, reader, message):
        binary = message.get("binary")
        if binary is not None:
            nbytes = protocol.payload_nbytes(binary)
            payload = await reader.readexactly(nbytes)
            keys, counts = protocol.arrays_from_payload(binary, payload)
            return keys, counts, nbytes
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise protocol.ProtocolError("ingest needs 'keys' (list) or 'binary'")
        counts = message.get("counts")
        if counts is not None:
            if not isinstance(counts, list) or len(counts) != len(keys):
                raise protocol.ProtocolError("counts must align one-to-one with keys")
            if any(isinstance(count, bool) for count in counts):
                raise protocol.ProtocolError(
                    "counts must be integers (JSON true/false is not a count)"
                )
            counts = np.asarray(counts, dtype=np.int64)
        if _all_int_keys(keys):
            return np.asarray(keys, dtype=np.int64), counts, 0
        return keys, counts, 0

    async def _op_ingest(self, reader, message, frame_nbytes: int) -> Dict[str, Any]:
        # The payload must leave the socket even if the batch is refused,
        # or the stream desynchronizes — read before any rejection.
        keys, counts, payload_nbytes = await self._read_ingest_arrays(reader, message)
        rid = message.get("request_id")
        if rid is not None and not isinstance(rid, str):
            raise protocol.ProtocolError("request_id must be a string")
        if self._failure is not None:
            raise RuntimeError(self._failure)
        if self._stopping:
            raise RuntimeError("service is shutting down")
        if rid is not None and rid in self._dedup:
            # A retransmit of a batch that was already accepted (the client
            # lost our ack, not the batch): re-ack without re-counting.
            self._dedup_hits += 1
            self._m_dedup_hits.inc()
            return {
                "ok": True,
                "op": "ingest",
                "ingested": self._dedup[rid],
                "duplicate": True,
                "seq": self._buffer.accepted_batches,
            }
        if self._buffer.total_keys >= self.max_buffered_keys:
            # Bounded backpressure: hold the ack (and stop reading this
            # socket) until the pump frees buffer space.
            stall_start = time.perf_counter()
            self._m_stalls.inc()
            while self._buffer.total_keys >= self.max_buffered_keys:
                self._space_event.clear()
                if self._buffer.total_keys < self.max_buffered_keys:
                    break
                await self._space_event.wait()
                if self._failure is not None:
                    self._m_stall_seconds.inc(time.perf_counter() - stall_start)
                    raise RuntimeError(self._failure)
                if self._stopping:
                    self._m_stall_seconds.inc(time.perf_counter() - stall_start)
                    raise RuntimeError("service is shutting down")
            self._m_stall_seconds.inc(time.perf_counter() - stall_start)
        if rid is not None and rid in self._dedup:
            # Re-check after the backpressure await: the original and a
            # retransmit can race through the first check on two
            # connections, and only one may count.
            self._dedup_hits += 1
            self._m_dedup_hits.inc()
            return {
                "ok": True,
                "op": "ingest",
                "ingested": self._dedup[rid],
                "duplicate": True,
                "seq": self._buffer.accepted_batches,
            }
        marks = None
        if self._wal is not None:
            # Durability point — ON the ack path, deliberately: the append
            # (an OS-buffered write, no fsync by default) completes before
            # the ack is sent, and nothing awaits between it and the
            # buffer.add below, so WAL contents and buffered batches never
            # disagree about what was acknowledged.
            marks = self._wal.append_batch(keys, counts, rid)
            self._m_wal_appended.inc()
        n = self._buffer.add(keys, counts, marks)
        if rid is not None:
            self._remember_request(rid, n)
        self._m_ingest_keys.inc(n)
        self._m_ingest_batches.inc()
        self._m_ingest_bytes.inc(frame_nbytes + payload_nbytes)
        self._m_buffered_keys.set(self._buffer.total_keys)
        self._data_event.set()
        if self._buffer.total_keys >= WORKER_CHUNK_SIZE:
            self._chunk_event.set()
        return {
            "ok": True,
            "op": "ingest",
            "ingested": n,
            "seq": self._buffer.accepted_batches,
        }

    def _live_estimate(self, keys) -> np.ndarray:
        estimator = self.session.estimator
        live = getattr(estimator, "live_estimate", None)
        if live is not None:
            return live(keys)
        return self.session.estimate(keys)

    async def _op_estimate(self, message) -> Dict[str, Any]:
        if self._failure is not None:
            raise RuntimeError(self._failure)
        keys = message.get("keys")
        if not isinstance(keys, list) or not keys:
            raise protocol.ProtocolError("estimate needs a non-empty 'keys' list")
        if _all_int_keys(keys):
            keys = np.asarray(keys, dtype=np.int64)
        estimates = await self._loop.run_in_executor(
            self._estimator_executor, self._live_estimate, keys
        )
        return {
            "ok": True,
            "op": "estimate",
            "estimates": np.asarray(estimates, dtype=np.float64).tolist(),
            **self._degraded_fields(),
        }

    def _top_k_sync(self, k: int, candidates) -> List[List[Any]]:
        estimator = self.session.estimator
        if candidates is None:
            tracker = getattr(estimator, "heavy_hitters", None)
            if tracker is None:
                raise protocol.ProtocolError(
                    f"kind {self.session.kind!r} keeps no per-key tracking; "
                    "pass 'candidates' to rank"
                )
            ranked = sorted(tracker(0.0), key=lambda pair: -pair[1])[:k]
            return [[key, float(count)] for key, count in ranked]
        keys = candidates
        if _all_int_keys(keys):
            keys = np.asarray(keys, dtype=np.int64)
        estimates = np.asarray(self._live_estimate(keys), dtype=np.float64)
        order = np.argsort(-estimates, kind="stable")[:k]
        return [[candidates[int(i)], float(estimates[int(i)])] for i in order]

    async def _op_top_k(self, message) -> Dict[str, Any]:
        if self._failure is not None:
            raise RuntimeError(self._failure)
        k = message.get("k")
        if not _is_strict_int(k) or k <= 0:
            raise protocol.ProtocolError("top_k needs a positive integer 'k'")
        candidates = message.get("candidates")
        if candidates is not None and (
            not isinstance(candidates, list) or not candidates
        ):
            raise protocol.ProtocolError("'candidates' must be a non-empty list")
        top = await self._loop.run_in_executor(
            self._estimator_executor, self._top_k_sync, k, candidates
        )
        return {"ok": True, "op": "top_k", "top": top, **self._degraded_fields()}

    async def _op_flush(self) -> Dict[str, Any]:
        await self._wait_applied()
        try:
            await self._loop.run_in_executor(
                self._estimator_executor, self.session.drain
            )
        except BaseException as error:
            # A drain failure (e.g. a shard worker died between micro-
            # batches) is permanent: park the service so every later
            # request errors out too, instead of hanging or lying.
            self._fail(f"drain failed: {error}")
            raise
        if self._failure is not None:
            raise RuntimeError(self._failure)
        return {
            "ok": True,
            "op": "flush",
            "applied_keys": self._applied_keys,
            "applied_batches": self._applied_batches,
            **self._degraded_fields(count=False),
        }

    def _op_stats(self) -> Dict[str, Any]:
        stats = {
            "ok": True,
            "op": "stats",
            "kind": self.session.kind,
            "restored": self.restored,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "connections": self._connections,
            "accepted_keys": self._buffer.accepted_keys,
            "accepted_batches": self._buffer.accepted_batches,
            "applied_keys": self._applied_keys,
            "applied_batches": self._applied_batches,
            "buffered_keys": self._buffer.total_keys,
            "hot_swaps": self._hot_swaps,
            "failure": self._failure,
        }
        # Runtime placement: which kernel backend executes the hot paths and
        # where the counters live.  Sharded estimators forward both from
        # their workers, so stats reports what is actually running.
        kernel_backend = getattr(self.session.estimator, "kernel_backend", None)
        if kernel_backend is not None:
            stats["kernel_backend"] = kernel_backend
        storage_backend = getattr(self.session.estimator, "storage_backend", None)
        if storage_backend is not None:
            stats["storage_backend"] = storage_backend
        if self._wal is not None:
            stats["wal"] = self._wal.stats()
            stats["replayed_batches"] = self._replayed_batches
            stats["dedup_hits"] = self._dedup_hits
        if self._supervising:
            stats["supervised"] = True
            stats["worker_restarts"] = self._worker_restarts
            stats["degraded_queries"] = self._degraded_queries
            stats.update(self._degraded_fields(count=False))
        window = self._window_state()
        if window is not None:
            now = time.monotonic()
            window["rotation_interval"] = self.rotation_interval
            window["service_rotations"] = self._rotations
            if self.rotation_interval is not None:
                window["pane_age_seconds"] = self._pane_ages(
                    now, int(window["num_panes"])
                )
                if self._next_rotation is not None:
                    window["next_rotation_seconds"] = round(
                        max(0.0, self._next_rotation - now), 3
                    )
        stats["window"] = window
        return stats

    def _refresh_gauges(self) -> None:
        """Bring point-in-time gauges up to date before an exposition."""
        self._m_uptime.set(round(time.monotonic() - self._started_at, 3))
        self._m_buffered_keys.set(self._buffer.total_keys)
        self._m_connections.set(self._connections)
        self._m_failure.set(0 if self._failure is None else 1)
        self._m_down_shards.set(len(self._degraded))
        window = self._window_state()
        if window is not None:
            self._m_window_head_fill.set(int(window["head_fill"]))
            now = time.monotonic()
            ages = (
                self._pane_ages(now, int(window["num_panes"]))
                if self.rotation_interval is not None
                else None
            )
            for age, arrivals in enumerate(window["pane_arrivals"]):
                self._m_window_pane_arrivals.labels(age=str(age)).set(int(arrivals))
                if ages is not None:
                    self._m_window_pane_age.labels(age=str(age)).set(ages[age])
        if self.session is not None:
            sync = getattr(self.session.estimator, "sync_metrics", None)
            if sync is not None:
                sync()

    def _op_metrics(self) -> Dict[str, Any]:
        self._refresh_gauges()
        return {
            "ok": True,
            "op": "metrics",
            "content_type": EXPOSITION_CONTENT_TYPE,
            "text": self.metrics.exposition(),
            "samples": self.metrics.samples(),
        }

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder for Prometheus scrapes of /metrics."""
        try:
            request_line = await reader.readline()
            while True:  # drain request headers up to the blank line
                header = await reader.readline()
                if header in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1].startswith("/metrics?")
            ):
                self._refresh_gauges()
                body = self.metrics.exposition().encode("utf-8")
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    f"Content-Type: {EXPOSITION_CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _op_snapshot(self) -> Dict[str, Any]:
        if not self.snapshot_path:
            raise protocol.ProtocolError(
                "the service was started without a snapshot_path"
            )
        if self._degraded:
            # A survivors-only snapshot would be a silent undercount *and*
            # its checkpoint would truncate the WAL records the down shard
            # still needs — refuse until the rebuild lands.
            raise RuntimeError(
                "snapshot refused while degraded (shard rebuild in "
                f"progress: {sorted(self._degraded)})"
            )
        await self._wait_applied()
        marks = dict(self._processed_marks) if self._wal is not None else None
        nbytes = await self._loop.run_in_executor(
            self._estimator_executor, self._save_snapshot_sync, marks
        )
        # The save serializes behind any in-flight apply on the estimator
        # thread; if that apply failed while we queued, the file on disk is
        # missing acked keys — report the failure instead of a false ok.
        if self._failure is not None:
            raise RuntimeError(self._failure)
        return {
            "ok": True,
            "op": "snapshot",
            "path": self.snapshot_path,
            "bytes": nbytes,
        }


class ServiceThread:
    """Host a :class:`StreamingService` on a background thread.

    For tests, notebooks, and the bundled example: the calling thread gets
    a running endpoint without owning an event loop.  ``stop()`` performs
    the same graceful drain-snapshot-stop as SIGTERM on the daemon form.
    """

    def __init__(self, service: StreamingService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _main(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            try:
                await self.service.start()
            except BaseException as error:  # surfaced to start()'s caller
                self._startup_error = error
                self._started.set()
                return
            self._started.set()
            await self.service.serve_until_stopped()

        asyncio.run(body())

    def start(self, timeout: float = 60.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self, *, drain: bool = True, snapshot: bool = True, timeout: float = 60.0) -> None:
        """Graceful stop; idempotent and safe to call from any thread.

        A no-op when the service never (fully) started: after a failed or
        timed-out ``start()`` there may be no loop, no running server, or a
        thread still wedged in startup — scheduling ``service.stop()`` there
        would hang or raise, and there is nothing to drain anyway.
        """
        if self._thread is None or not self._thread.is_alive():
            return
        if (
            not self._started.is_set()
            or self._startup_error is not None
            or self._loop is None
        ):
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(drain=drain, snapshot=snapshot), self._loop
            )
            future.result(timeout=timeout)
        except RuntimeError:
            # The loop shut down between the liveness check and the call —
            # the thread is already on its way out; just join it.
            pass
        self._thread.join(timeout=timeout)

    def hot_swap(self, spec, estimator, *, close_old: bool = True, timeout: float = 60.0):
        """Thread-safe :meth:`StreamingService.hot_swap` — the ``swap``
        target :class:`repro.temporal.ReOptimizer` calls from its
        background retraining thread.  Returns the old estimator."""
        if self._loop is None or not self._started.is_set():
            raise RuntimeError("service not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.hot_swap(spec, estimator, close_old=close_old),
            self._loop,
        )
        return future.result(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
