"""The asyncio streaming ingestion daemon.

One :class:`StreamingService` owns one :class:`~repro.api.session.Session`
(built from a spec, or restored from the previous run's snapshot) and puts
it behind a socket:

* **Accept** — each client connection is an asyncio reader task; frames are
  newline-delimited JSON with an optional binary payload (see
  :mod:`repro.service.protocol`).
* **Coalesce** — ingest batches land in a bounded buffer; a single pump
  task flushes it into ``estimator.update_batch`` whenever the backlog
  reaches the worker chunk size *or* a flush deadline expires, whichever
  comes first.  One partition pass per micro-batch routes the coalesced
  arrivals to their shards; with the shm transport the shard workers then
  scatter into shared memory in parallel with everything below.
* **Backpressure** — when the buffer is at capacity, ingest handlers
  *await* space instead of acking, which stops reading those sockets; TCP
  flow control pushes the stall back to the writers.  Bounded end to end.
* **Serve live** — ``estimate`` answers from the shards' current tables
  (``live_estimate``) without draining in-flight batches: readers never
  wait on writers.
* **Drain / snapshot / restart** — SIGTERM (or ``shutdown``) stops intake,
  flushes the buffer, drains the shard workers, writes an atomic snapshot
  via :meth:`Session.save`, and exits; constructing the service with the
  same ``snapshot_path`` resumes from it.  Every *acknowledged* ingest is
  in the snapshot by construction.

Estimator access is serialized through a one-thread executor: the pump's
``update_batch`` (cheap routing — heavy scatters happen in the shard
worker processes) and queries interleave there without locking the event
loop or each other.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import session as api_session
from repro.core.workers import WORKER_CHUNK_SIZE
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    StructuredLogger,
)
from repro.service import protocol

__all__ = ["StreamingService", "ServiceThread"]


def _is_strict_int(value) -> bool:
    """True for real integers only — JSON booleans are ints to isinstance."""
    return isinstance(value, int) and not isinstance(value, bool)


def _all_int_keys(keys) -> bool:
    """True when every key is a genuine int (bool keys stay Python objects)."""
    return bool(keys) and all(_is_strict_int(key) for key in keys)

#: Default coalescing deadline: a micro-batch is flushed at the latest this
#: many seconds after its first arrival, even when under-full.
DEFAULT_FLUSH_INTERVAL = 0.05

#: Default buffer bound (keys, not batches): ingest acks stall once this
#: many arrivals are buffered but not yet handed to the estimator.
DEFAULT_MAX_BUFFERED_KEYS = 4 * WORKER_CHUNK_SIZE


class _IngestBuffer:
    """The bounded micro-batch buffer between connections and the pump."""

    __slots__ = ("parts", "total_keys", "accepted_keys", "accepted_batches")

    def __init__(self) -> None:
        self.parts: List[Tuple[Any, Optional[np.ndarray]]] = []
        self.total_keys = 0
        self.accepted_keys = 0
        self.accepted_batches = 0

    def add(self, keys, counts) -> int:
        n = len(keys)
        self.parts.append((keys, counts))
        self.total_keys += n
        self.accepted_keys += n
        self.accepted_batches += 1
        return n

    def take(self) -> List[Tuple[Any, Optional[np.ndarray]]]:
        parts, self.parts = self.parts, []
        self.total_keys = 0
        return parts


def _coalesce(parts: List[Tuple[Any, Optional[np.ndarray]]]):
    """Merge buffered (keys, counts) parts into one update_batch call.

    All-ndarray int batches concatenate (the binary-ingest hot path);
    anything else falls back to one Python list.  Counts default to ones
    only where a part omitted them, so weighted and unweighted parts mix.
    """
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(keys, np.ndarray) for keys, _ in parts):
        keys = np.concatenate([part_keys for part_keys, _ in parts])
    else:
        keys = []
        for part_keys, _ in parts:
            keys.extend(
                part_keys.tolist() if isinstance(part_keys, np.ndarray) else part_keys
            )
    if all(part_counts is None for _, part_counts in parts):
        return keys, None
    counts = np.concatenate(
        [
            part_counts
            if part_counts is not None
            else np.ones(len(part_keys), dtype=np.int64)
            for part_keys, part_counts in parts
        ]
    )
    return keys, counts


class StreamingService:
    """A long-running ingest/query daemon over one estimator session.

    Parameters
    ----------
    spec:
        Estimator spec (or dict) to build when no snapshot exists.  May be
        ``None`` if ``snapshot_path`` names an existing snapshot.
    snapshot_path:
        Where graceful shutdown writes the restart snapshot — and where
        the service resumes from when the file already exists at startup.
    unix_path / host, port:
        Listen endpoint: a Unix socket path, or a TCP host/port (pass
        ``port=0`` for an ephemeral port, read back from ``endpoint``).
    flush_interval:
        Micro-batch coalescing deadline in seconds.
    rotation_interval:
        Wall-clock pane rotation period in seconds for temporal estimators
        (``sliding_window`` / ``decayed`` specs built with
        ``pane_items=None``).  The tick rides the pump's existing flush
        timer — no extra task or polling loop — and runs on the estimator
        thread, so it always lands between micro-batches.  Monotonic: a
        pump stalled past several deadlines catches up with multiple
        ticks (capped at the ring size; beyond that every pane is already
        blank).  Requires an estimator exposing ``tick()``.
    max_buffered_keys:
        Backpressure bound on arrivals accepted but not yet applied.
    metrics_host / metrics_port:
        When ``metrics_port`` is given, a plain-HTTP listener additionally
        serves ``GET /metrics`` in Prometheus text format (pass ``0`` for
        an ephemeral port, read back from ``metrics_endpoint``).  The same
        exposition is always available in-protocol through the ``metrics``
        op.
    instrument:
        ``False`` swaps the registry for no-op metrics — the baseline the
        ≤5% overhead gate (``benchmarks/test_obs_overhead.py``) compares
        against.
    log:
        Optional :class:`~repro.obs.StructuredLogger` for JSON-lines
        lifecycle events (start/stop/failure, per-stage shutdown timings).
        Defaults to a disabled logger.
    """

    def __init__(
        self,
        spec=None,
        *,
        snapshot_path: Optional[str] = None,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        rotation_interval: Optional[float] = None,
        max_buffered_keys: int = DEFAULT_MAX_BUFFERED_KEYS,
        metrics_host: Optional[str] = None,
        metrics_port: Optional[int] = None,
        instrument: bool = True,
        log: Optional[StructuredLogger] = None,
        prefix=None,
        featurizer=None,
    ) -> None:
        if unix_path is None and host is None:
            raise ValueError("pass unix_path=... or host=/port= to listen on")
        if unix_path is not None and host is not None:
            raise ValueError("pass either unix_path or host/port, not both")
        if spec is None and not (snapshot_path and os.path.exists(snapshot_path)):
            raise ValueError(
                "no spec and no existing snapshot to restore — nothing to serve"
            )
        self._spec = spec
        self._prefix = prefix
        self._featurizer = featurizer
        self.snapshot_path = snapshot_path
        self._unix_path = unix_path
        self._host = host
        self._port = port
        self.flush_interval = float(flush_interval)
        if rotation_interval is not None and not rotation_interval > 0:
            raise ValueError(
                f"rotation_interval must be positive, got {rotation_interval!r}"
            )
        self.rotation_interval = (
            float(rotation_interval) if rotation_interval is not None else None
        )
        self.max_buffered_keys = int(max_buffered_keys)
        self.restored = False

        self.session: Optional[api_session.Session] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._stopped_future: Optional[asyncio.Future] = None
        self._stop_task: Optional[asyncio.Task] = None
        # One thread for ALL estimator access: routing-side update_batch,
        # drains, live queries, snapshots.  Serializing them here (instead
        # of locking inside the estimator) keeps the estimator single-
        # threaded by construction; real parallelism lives in the shard
        # worker processes behind it.
        self._estimator_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-estimator"
        )
        self._buffer = _IngestBuffer()
        self._data_event = asyncio.Event()  # buffer became non-empty / stopping
        self._chunk_event = asyncio.Event()  # buffer reached the chunk target
        self._space_event = asyncio.Event()  # buffer dropped below the bound
        self._applied_event = asyncio.Event()  # pump finished one apply
        self._space_event.set()
        self._stopping = False
        self._failure: Optional[str] = None
        self._started_at = time.monotonic()
        self._applied_keys = 0
        self._applied_batches = 0
        self._connections = 0
        self._rotations = 0  # service-driven ticks (count-based rotations live in the estimator)
        self._rotation_stamps: List[float] = []  # monotonic times of recent ticks
        self._next_rotation: Optional[float] = None
        self._hot_swaps = 0
        #: True from the moment the pump takes a micro-batch out of the
        #: buffer until its apply has completed — the barrier in
        #: :meth:`_wait_applied` must cover this window, or a snapshot can
        #: race a mid-apply batch (and miss it if the apply then fails).
        self._pump_busy = False
        self._metrics_host = metrics_host
        self._metrics_port = metrics_port
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self.log = log if log is not None else StructuredLogger("repro.service")
        self.metrics = MetricsRegistry(enabled=instrument)
        self._init_metrics()

    def _init_metrics(self) -> None:
        metrics = self.metrics
        self._m_requests = metrics.counter(
            "repro_service_requests_total", "Requests handled, by op.", labels=("op",)
        )
        self._m_request_errors = metrics.counter(
            "repro_service_request_errors_total",
            "Requests answered with ok=false, by op.",
            labels=("op",),
        )
        self._m_request_seconds = metrics.histogram(
            "repro_service_request_seconds",
            "Request handling latency, by op.",
            labels=("op",),
        )
        self._m_ingest_keys = metrics.counter(
            "repro_service_ingest_keys_total", "Arrivals accepted into the buffer."
        )
        self._m_ingest_batches = metrics.counter(
            "repro_service_ingest_batches_total", "Ingest requests accepted."
        )
        self._m_ingest_bytes = metrics.counter(
            "repro_service_ingest_bytes_total",
            "Wire bytes of accepted ingest requests (frame + binary payload).",
        )
        self._m_applied_keys = metrics.counter(
            "repro_service_applied_keys_total",
            "Arrivals the pump has handed to the estimator.",
        )
        self._m_applied_batches = metrics.counter(
            "repro_service_applied_batches_total",
            "Coalesced micro-batches applied by the pump.",
        )
        self._m_batch_keys = metrics.histogram(
            "repro_service_coalesced_batch_keys",
            "Keys per coalesced micro-batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_buffered_keys = metrics.gauge(
            "repro_service_buffered_keys",
            "Arrivals accepted but not yet handed to the estimator.",
        )
        self._m_stall_seconds = metrics.counter(
            "repro_service_backpressure_stall_seconds_total",
            "Total time ingest acks were withheld waiting for buffer space.",
        )
        self._m_stalls = metrics.counter(
            "repro_service_backpressure_stalls_total",
            "Ingest requests that hit the backpressure bound.",
        )
        self._m_connections = metrics.gauge(
            "repro_service_connections", "Open client connections."
        )
        self._m_failure = metrics.gauge(
            "repro_service_failure",
            "1 once the service is parked on an unrecoverable failure.",
        )
        self._m_uptime = metrics.gauge(
            "repro_service_uptime_seconds", "Seconds since service start."
        )
        self._m_rotations = metrics.counter(
            "repro_service_window_rotations_total",
            "Pane rotations driven by the service's rotation_interval timer.",
        )
        self._m_hot_swaps = metrics.counter(
            "repro_service_hot_swaps_total",
            "Live estimator replacements applied between micro-batches.",
        )
        self._m_window_head_fill = metrics.gauge(
            "repro_service_window_head_fill",
            "Arrivals absorbed by the head pane since its last rotation.",
        )
        self._m_window_pane_arrivals = metrics.gauge(
            "repro_service_window_pane_arrivals",
            "Arrivals held per live pane, youngest first.",
            labels=("age",),
        )
        self._m_window_pane_age = metrics.gauge(
            "repro_service_window_pane_age_seconds",
            "Seconds each live pane has been filling (tick-driven services).",
            labels=("age",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self):
        """The bound endpoint: a Unix socket path or a ``(host, port)``."""
        if self._unix_path is not None:
            return self._unix_path
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[:2]
        return (self._host, self._port)

    @property
    def metrics_endpoint(self) -> Optional[Tuple[str, int]]:
        """The bound ``GET /metrics`` HTTP endpoint, or ``None``."""
        if self._metrics_server is not None and self._metrics_server.sockets:
            return self._metrics_server.sockets[0].getsockname()[:2]
        if self._metrics_port is None:
            return None
        return (self._metrics_host or "127.0.0.1", self._metrics_port)

    def _open_session(self) -> api_session.Session:
        if self.snapshot_path and os.path.exists(self.snapshot_path):
            session = api_session.load(self.snapshot_path, metrics=self.metrics)
            self.restored = True
            return session
        return api_session.open(
            self._spec,
            prefix=self._prefix,
            featurizer=self._featurizer,
            metrics=self.metrics,
        )

    async def start(self) -> "StreamingService":
        """Open (or restore) the session, bind the socket, start the pump."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._stopped_future = self._loop.create_future()
        self.session = await self._loop.run_in_executor(
            self._estimator_executor, self._open_session
        )
        warm_up = getattr(self.session.estimator, "warm_up", None)
        if warm_up is not None:
            await self._loop.run_in_executor(self._estimator_executor, warm_up)
        if self.rotation_interval is not None:
            if getattr(self.session.estimator, "tick", None) is None:
                kind = self.session.kind
                await self._loop.run_in_executor(
                    self._estimator_executor, self.session.close
                )
                self.session = None
                raise RuntimeError(
                    f"rotation_interval requires an estimator with tick() — "
                    f"kind {kind!r} has none (use a sliding_window/decayed spec)"
                )
            self._next_rotation = time.monotonic() + self.rotation_interval
        # The StreamReader's default 64 KiB limit would contradict
        # MAX_FRAME_BYTES: readline() on any larger JSON frame raises
        # before the handler ever sees it.  The +1 leaves room for the
        # newline terminator of a maximum-size frame.
        frame_limit = protocol.MAX_FRAME_BYTES + 1
        if self._unix_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._unix_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._unix_path, limit=frame_limit
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self._host,
                port=self._port or 0,
                limit=frame_limit,
            )
        if self._metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                host=self._metrics_host or "127.0.0.1",
                port=self._metrics_port,
            )
        self._pump_task = asyncio.ensure_future(self._pump())
        self.log.info(
            "service_started",
            endpoint=str(self.endpoint),
            kind=self.session.kind,
            restored=self.restored,
            metrics_endpoint=(
                str(self.metrics_endpoint) if self._metrics_server else None
            ),
        )
        return self

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain-snapshot-stop."""
        assert self._loop is not None, "call start() first"
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, self.request_stop)

    def request_stop(self) -> None:
        """Schedule a graceful stop (signal-handler / cross-task safe)."""
        if self._loop is None or self._stop_task is not None:
            return
        self._stop_task = self._loop.create_task(self.stop())

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a signal routed to it) completes."""
        assert self._stopped_future is not None, "call start() first"
        await self._stopped_future

    async def stop(self, *, drain: bool = True, snapshot: bool = True) -> None:
        """Graceful shutdown: stop intake → flush → drain → snapshot → exit.

        Idempotent (a second call awaits the first).  With ``drain`` every
        buffered batch is applied and the shard workers are drained before
        the snapshot is written, so the snapshot contains every
        acknowledged ingest; ``drain=False`` abandons the backlog (the
        snapshot then reflects only applied batches).  ``snapshot=False``
        (or no ``snapshot_path``) skips the save.
        """
        if self._stopped_future is None:
            return
        if self._stopping:
            await asyncio.shield(self._stopped_future)
            return
        self._stopping = True
        self.log.info("service_stopping", drain=drain, snapshot=snapshot)
        # Wake everything that might be waiting on buffer state.
        self._data_event.set()
        self._chunk_event.set()
        self._space_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._pump_task is not None:
            if drain:
                await self._pump_task
            else:
                self._pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._pump_task
        loop = asyncio.get_running_loop()
        if self.session is not None:
            if drain and self._failure is None:
                try:
                    with self.log.stage("shutdown_drain"):
                        await loop.run_in_executor(
                            self._estimator_executor, self.session.drain
                        )
                except Exception as error:
                    self._fail(f"shutdown drain failed: {error}")
            if snapshot and self.snapshot_path and self._failure is None:
                # A parked (failed) service skips the snapshot: save() would
                # re-drain the broken pool, and overwriting the previous good
                # snapshot with a partial one would make restart worse.
                with self.log.stage("shutdown_snapshot", path=self.snapshot_path):
                    await loop.run_in_executor(
                        self._estimator_executor, self.session.save, self.snapshot_path
                    )
            with contextlib.suppress(Exception):
                await loop.run_in_executor(
                    self._estimator_executor, self.session.close
                )
        self._estimator_executor.shutdown(wait=True)
        if self._unix_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._unix_path)
        self.log.info(
            "service_stopped",
            applied_keys=self._applied_keys,
            failure=self._failure,
        )
        if not self._stopped_future.done():
            self._stopped_future.set_result(None)

    # ------------------------------------------------------------------
    # the micro-batching pump
    # ------------------------------------------------------------------
    def _apply(self, keys, counts) -> None:
        """Estimator-thread body: one coalesced update_batch call."""
        self.session.estimator.update_batch(keys, counts)

    def _tick(self, ticks: int) -> None:
        """Estimator-thread body: advance the pane ring ``ticks`` times."""
        tick = self.session.estimator.tick
        for _ in range(ticks):
            tick()

    def _window_state(self) -> Optional[Dict[str, Any]]:
        """The estimator's pane-ring state, or ``None`` for flat kinds."""
        if self.session is None:
            return None
        state = getattr(self.session.estimator, "window_state", None)
        return state() if state is not None else None

    def _pane_ages(self, now: float, num_panes: int) -> List[float]:
        """Seconds each live pane has been filling, youngest first.

        Anchored to this service's tick stamps: the pane of age ``a``
        became the head at the ``(a+1)``-th most recent tick; panes that
        pre-date every recorded tick fall back to the service start.
        Only meaningful for tick-driven windows — count-based rotations
        happen inside the estimator and leave no timestamp here.
        """
        stamps = self._rotation_stamps
        ages = []
        for age in range(num_panes):
            if age < len(stamps):
                anchor = stamps[-(age + 1)]
            else:
                anchor = self._started_at
            ages.append(round(now - anchor, 3))
        return ages

    async def _maybe_rotate(self) -> bool:
        """Rotate the pane ring if the wall-clock deadline has passed.

        Runs on the estimator thread, so ticks serialize between
        micro-batches.  Monotonic catch-up: a pump stalled through ``n``
        deadlines issues ``min(n, num_panes)`` ticks — past the ring size
        every pane is already blank, so further ticks are redundant.
        Returns ``False`` when a tick raised (the service is parked).
        """
        if (
            self._next_rotation is None
            or self._failure is not None
            or self._stopping
        ):
            return True
        now = time.monotonic()
        if now < self._next_rotation:
            return True
        due = 1 + int((now - self._next_rotation) // self.rotation_interval)
        state = self._window_state()
        num_panes = int(state["num_panes"]) if state else due
        ticks = min(due, num_panes)
        try:
            await self._loop.run_in_executor(
                self._estimator_executor, self._tick, ticks
            )
        except BaseException as error:  # noqa: BLE001 — park, don't die
            self._fail(f"pane rotation failed: {error}")
            return False
        self._rotations += ticks
        self._m_rotations.inc(ticks)
        self._rotation_stamps.extend([now] * ticks)
        del self._rotation_stamps[:-num_panes]
        # Advance by whole periods from the previous deadline, not from
        # `now`: the schedule stays phase-locked instead of drifting by
        # the pump's scheduling latency every tick.
        self._next_rotation += due * self.rotation_interval
        self.log.info(
            "window_rotated", ticks=ticks, total_rotations=self._rotations
        )
        return True

    async def _pump(self) -> None:
        """Single consumer of the ingest buffer.

        Waits for data, then gives the buffer up to ``flush_interval`` to
        reach the worker chunk size (the ``_chunk_event`` short-circuits
        the wait when it does), applies the coalesced batch on the
        estimator thread, and repeats.  A failure (e.g. a shard worker
        died) parks the service in an erroring state instead of hanging
        its clients.
        """
        assert self._loop is not None
        while True:
            if not await self._maybe_rotate():
                break  # rotation failed: park, same as a failed apply
            if not self._buffer.parts:
                if self._stopping:
                    break
                self._data_event.clear()
                if not self._buffer.parts and not self._stopping:
                    if self._next_rotation is None:
                        await self._data_event.wait()
                    else:
                        # The idle wait doubles as the rotation timer: wake
                        # at the pane deadline instead of adding a second
                        # polling task.  (Under load the per-iteration
                        # _maybe_rotate check above covers the deadline.)
                        delay = max(0.0, self._next_rotation - time.monotonic())
                        with contextlib.suppress(asyncio.TimeoutError):
                            await asyncio.wait_for(self._data_event.wait(), delay)
                continue
            if self._buffer.total_keys < WORKER_CHUNK_SIZE and not self._stopping:
                self._chunk_event.clear()
                if self._buffer.total_keys < WORKER_CHUNK_SIZE:
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._chunk_event.wait(), self.flush_interval
                        )
            # The in-flight window opens BEFORE the buffer is emptied:
            # between take() and the end of _apply the batch is in neither
            # the buffer nor the tables, and the _wait_applied barrier must
            # keep waiting through it.
            self._pump_busy = True
            parts = self._buffer.take()
            self._m_buffered_keys.set(0)
            self._space_event.set()
            keys, counts = _coalesce(parts)
            self._m_batch_keys.observe(len(keys))
            try:
                await self._loop.run_in_executor(
                    self._estimator_executor, self._apply, keys, counts
                )
            except BaseException as error:  # noqa: BLE001 — park, don't die
                self._pump_busy = False
                self._fail(f"ingestion failed: {error}")
                break
            self._applied_keys += len(keys)
            self._applied_batches += 1
            self._m_applied_keys.inc(len(keys))
            self._m_applied_batches.inc()
            self._pump_busy = False
            self._applied_event.set()

    def _fail(self, message: str) -> None:
        """Park the service in an erroring state and wake every waiter.

        Connections stay open: subsequent requests get ``ok: false`` with
        this message — a dead shard worker must surface to clients as an
        error response, never as a hang.
        """
        if self._failure is None:
            self._failure = message
            self._m_failure.set(1)
            self.log.error("service_failure", error=message)
        self._space_event.set()
        self._applied_event.set()

    async def _wait_applied(self) -> None:
        """Barrier: buffer empty AND the pump idle (or the service failed).

        Checking the buffer alone is not enough: the pump ``take()``s the
        buffer *before* ``_apply`` runs, so an empty buffer can coexist
        with an acked micro-batch that is mid-apply — and if that apply
        then fails, a snapshot taken past the barrier would be missing
        acked keys.  ``_pump_busy`` covers exactly that window.
        """
        while (
            self._buffer.parts or self._buffer.total_keys or self._pump_busy
        ) and self._failure is None:
            self._applied_event.clear()
            if (
                self._buffer.parts or self._pump_busy
            ) and self._failure is None:
                await self._applied_event.wait()
        if self._failure is not None:
            raise RuntimeError(self._failure)

    # ------------------------------------------------------------------
    # live re-optimization
    # ------------------------------------------------------------------
    async def hot_swap(self, spec, estimator, *, close_old: bool = True):
        """Replace the live estimator between micro-batches.

        The swap runs on the single estimator thread, so it serializes
        behind any in-flight ``_apply`` — no micro-batch is ever split
        across the old and new estimator.  Buffered-but-unapplied
        arrivals land in the new estimator (acked keys are applied, never
        lost; whether a given key counts toward the old or new tables
        depends only on which side of the swap its micro-batch ran).

        This is the ``swap(spec, estimator, close_old=)`` protocol that
        :meth:`repro.temporal.ReOptimizer.reoptimize` targets.  Returns
        the old estimator (closed when ``close_old``).
        """
        if self.session is None:
            raise RuntimeError("service not started")
        if self._failure is not None:
            raise RuntimeError(self._failure)
        if self._next_rotation is not None and getattr(estimator, "tick", None) is None:
            raise ValueError(
                "this service rotates panes on a timer; the replacement "
                "estimator must expose tick()"
            )
        warm_up = getattr(estimator, "warm_up", None)
        if warm_up is not None:
            # Warm the incoming estimator on the default executor so the
            # live one keeps serving while pools spin up.
            await self._loop.run_in_executor(None, warm_up)

        def _swap():
            return self.session.hot_swap(spec, estimator, close_old=close_old)

        old = await self._loop.run_in_executor(self._estimator_executor, _swap)
        self._hot_swaps += 1
        self._m_hot_swaps.inc()
        self.log.info(
            "estimator_hot_swapped",
            kind=self.session.kind,
            close_old=close_old,
            hot_swaps=self._hot_swaps,
        )
        return old

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._m_connections.inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # The frame overran the reader's limit (it admits any
                    # frame up to MAX_FRAME_BYTES, so this one is over the
                    # protocol bound).  readline() has already discarded
                    # buffered bytes, so framing is lost: answer with a
                    # protocol error, then drop the connection.
                    line = None
                if line is None or len(line) > protocol.MAX_FRAME_BYTES:
                    if line is None or line:
                        response = {
                            "ok": False,
                            "error": (
                                f"frame exceeds {protocol.MAX_FRAME_BYTES} "
                                "bytes (use a binary ingest payload for "
                                "large batches)"
                            ),
                        }
                        self._m_request_errors.labels(op="invalid").inc()
                        writer.write(protocol.encode_frame(response))
                        with contextlib.suppress(
                            ConnectionResetError, BrokenPipeError
                        ):
                            await writer.drain()
                    break
                if not line:
                    break
                start = time.perf_counter()
                op = "invalid"
                try:
                    op, response = await self._dispatch(reader, line)
                except protocol.ProtocolError as error:
                    response = {"ok": False, "error": str(error)}
                except Exception as error:  # noqa: BLE001 — per-request fault wall
                    response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
                self._m_requests.labels(op=op).inc()
                self._m_request_seconds.labels(op=op).observe(
                    time.perf_counter() - start
                )
                if not response.get("ok"):
                    self._m_request_errors.labels(op=op).inc()
                writer.write(protocol.encode_frame(response))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if response.get("bye"):
                    break
        finally:
            self._connections -= 1
            self._m_connections.dec()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, reader: asyncio.StreamReader, line: bytes
    ) -> Tuple[str, Dict[str, Any]]:
        message = protocol.decode_frame(line)
        op = message.get("op")
        label = op if isinstance(op, str) else "invalid"
        try:
            if op == "ingest":
                return label, await self._op_ingest(reader, message, len(line))
            if op == "estimate":
                return label, await self._op_estimate(message)
            if op == "top_k":
                return label, await self._op_top_k(message)
            if op == "flush":
                return label, await self._op_flush()
            if op == "stats":
                return label, self._op_stats()
            if op == "metrics":
                return label, self._op_metrics()
            if op == "snapshot":
                return label, await self._op_snapshot()
            if op == "ping":
                return label, {"ok": True, "op": "ping"}
            if op == "shutdown":
                self.request_stop()
                return label, {"ok": True, "op": "shutdown", "bye": True}
            raise protocol.ProtocolError(f"unknown op {op!r}")
        except protocol.ProtocolError as error:
            return label, {"ok": False, "error": str(error)}
        except Exception as error:  # noqa: BLE001 — per-request fault wall
            return label, {"ok": False, "error": f"{type(error).__name__}: {error}"}

    async def _read_ingest_arrays(self, reader, message):
        binary = message.get("binary")
        if binary is not None:
            nbytes = protocol.payload_nbytes(binary)
            payload = await reader.readexactly(nbytes)
            keys, counts = protocol.arrays_from_payload(binary, payload)
            return keys, counts, nbytes
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise protocol.ProtocolError("ingest needs 'keys' (list) or 'binary'")
        counts = message.get("counts")
        if counts is not None:
            if not isinstance(counts, list) or len(counts) != len(keys):
                raise protocol.ProtocolError("counts must align one-to-one with keys")
            if any(isinstance(count, bool) for count in counts):
                raise protocol.ProtocolError(
                    "counts must be integers (JSON true/false is not a count)"
                )
            counts = np.asarray(counts, dtype=np.int64)
        if _all_int_keys(keys):
            return np.asarray(keys, dtype=np.int64), counts, 0
        return keys, counts, 0

    async def _op_ingest(self, reader, message, frame_nbytes: int) -> Dict[str, Any]:
        # The payload must leave the socket even if the batch is refused,
        # or the stream desynchronizes — read before any rejection.
        keys, counts, payload_nbytes = await self._read_ingest_arrays(reader, message)
        if self._failure is not None:
            raise RuntimeError(self._failure)
        if self._stopping:
            raise RuntimeError("service is shutting down")
        if self._buffer.total_keys >= self.max_buffered_keys:
            # Bounded backpressure: hold the ack (and stop reading this
            # socket) until the pump frees buffer space.
            stall_start = time.perf_counter()
            self._m_stalls.inc()
            while self._buffer.total_keys >= self.max_buffered_keys:
                self._space_event.clear()
                if self._buffer.total_keys < self.max_buffered_keys:
                    break
                await self._space_event.wait()
                if self._failure is not None:
                    self._m_stall_seconds.inc(time.perf_counter() - stall_start)
                    raise RuntimeError(self._failure)
                if self._stopping:
                    self._m_stall_seconds.inc(time.perf_counter() - stall_start)
                    raise RuntimeError("service is shutting down")
            self._m_stall_seconds.inc(time.perf_counter() - stall_start)
        n = self._buffer.add(keys, counts)
        self._m_ingest_keys.inc(n)
        self._m_ingest_batches.inc()
        self._m_ingest_bytes.inc(frame_nbytes + payload_nbytes)
        self._m_buffered_keys.set(self._buffer.total_keys)
        self._data_event.set()
        if self._buffer.total_keys >= WORKER_CHUNK_SIZE:
            self._chunk_event.set()
        return {
            "ok": True,
            "op": "ingest",
            "ingested": n,
            "seq": self._buffer.accepted_batches,
        }

    def _live_estimate(self, keys) -> np.ndarray:
        estimator = self.session.estimator
        live = getattr(estimator, "live_estimate", None)
        if live is not None:
            return live(keys)
        return self.session.estimate(keys)

    async def _op_estimate(self, message) -> Dict[str, Any]:
        if self._failure is not None:
            raise RuntimeError(self._failure)
        keys = message.get("keys")
        if not isinstance(keys, list) or not keys:
            raise protocol.ProtocolError("estimate needs a non-empty 'keys' list")
        if _all_int_keys(keys):
            keys = np.asarray(keys, dtype=np.int64)
        estimates = await self._loop.run_in_executor(
            self._estimator_executor, self._live_estimate, keys
        )
        return {
            "ok": True,
            "op": "estimate",
            "estimates": np.asarray(estimates, dtype=np.float64).tolist(),
        }

    def _top_k_sync(self, k: int, candidates) -> List[List[Any]]:
        estimator = self.session.estimator
        if candidates is None:
            tracker = getattr(estimator, "heavy_hitters", None)
            if tracker is None:
                raise protocol.ProtocolError(
                    f"kind {self.session.kind!r} keeps no per-key tracking; "
                    "pass 'candidates' to rank"
                )
            ranked = sorted(tracker(0.0), key=lambda pair: -pair[1])[:k]
            return [[key, float(count)] for key, count in ranked]
        keys = candidates
        if _all_int_keys(keys):
            keys = np.asarray(keys, dtype=np.int64)
        estimates = np.asarray(self._live_estimate(keys), dtype=np.float64)
        order = np.argsort(-estimates, kind="stable")[:k]
        return [[candidates[int(i)], float(estimates[int(i)])] for i in order]

    async def _op_top_k(self, message) -> Dict[str, Any]:
        if self._failure is not None:
            raise RuntimeError(self._failure)
        k = message.get("k")
        if not _is_strict_int(k) or k <= 0:
            raise protocol.ProtocolError("top_k needs a positive integer 'k'")
        candidates = message.get("candidates")
        if candidates is not None and (
            not isinstance(candidates, list) or not candidates
        ):
            raise protocol.ProtocolError("'candidates' must be a non-empty list")
        top = await self._loop.run_in_executor(
            self._estimator_executor, self._top_k_sync, k, candidates
        )
        return {"ok": True, "op": "top_k", "top": top}

    async def _op_flush(self) -> Dict[str, Any]:
        await self._wait_applied()
        try:
            await self._loop.run_in_executor(
                self._estimator_executor, self.session.drain
            )
        except BaseException as error:
            # A drain failure (e.g. a shard worker died between micro-
            # batches) is permanent: park the service so every later
            # request errors out too, instead of hanging or lying.
            self._fail(f"drain failed: {error}")
            raise
        if self._failure is not None:
            raise RuntimeError(self._failure)
        return {
            "ok": True,
            "op": "flush",
            "applied_keys": self._applied_keys,
            "applied_batches": self._applied_batches,
        }

    def _op_stats(self) -> Dict[str, Any]:
        stats = {
            "ok": True,
            "op": "stats",
            "kind": self.session.kind,
            "restored": self.restored,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "connections": self._connections,
            "accepted_keys": self._buffer.accepted_keys,
            "accepted_batches": self._buffer.accepted_batches,
            "applied_keys": self._applied_keys,
            "applied_batches": self._applied_batches,
            "buffered_keys": self._buffer.total_keys,
            "hot_swaps": self._hot_swaps,
            "failure": self._failure,
        }
        window = self._window_state()
        if window is not None:
            now = time.monotonic()
            window["rotation_interval"] = self.rotation_interval
            window["service_rotations"] = self._rotations
            if self.rotation_interval is not None:
                window["pane_age_seconds"] = self._pane_ages(
                    now, int(window["num_panes"])
                )
                if self._next_rotation is not None:
                    window["next_rotation_seconds"] = round(
                        max(0.0, self._next_rotation - now), 3
                    )
        stats["window"] = window
        return stats

    def _refresh_gauges(self) -> None:
        """Bring point-in-time gauges up to date before an exposition."""
        self._m_uptime.set(round(time.monotonic() - self._started_at, 3))
        self._m_buffered_keys.set(self._buffer.total_keys)
        self._m_connections.set(self._connections)
        self._m_failure.set(0 if self._failure is None else 1)
        window = self._window_state()
        if window is not None:
            self._m_window_head_fill.set(int(window["head_fill"]))
            now = time.monotonic()
            ages = (
                self._pane_ages(now, int(window["num_panes"]))
                if self.rotation_interval is not None
                else None
            )
            for age, arrivals in enumerate(window["pane_arrivals"]):
                self._m_window_pane_arrivals.labels(age=str(age)).set(int(arrivals))
                if ages is not None:
                    self._m_window_pane_age.labels(age=str(age)).set(ages[age])
        if self.session is not None:
            sync = getattr(self.session.estimator, "sync_metrics", None)
            if sync is not None:
                sync()

    def _op_metrics(self) -> Dict[str, Any]:
        self._refresh_gauges()
        return {
            "ok": True,
            "op": "metrics",
            "content_type": EXPOSITION_CONTENT_TYPE,
            "text": self.metrics.exposition(),
            "samples": self.metrics.samples(),
        }

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder for Prometheus scrapes of /metrics."""
        try:
            request_line = await reader.readline()
            while True:  # drain request headers up to the blank line
                header = await reader.readline()
                if header in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1].startswith("/metrics?")
            ):
                self._refresh_gauges()
                body = self.metrics.exposition().encode("utf-8")
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    f"Content-Type: {EXPOSITION_CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _op_snapshot(self) -> Dict[str, Any]:
        if not self.snapshot_path:
            raise protocol.ProtocolError(
                "the service was started without a snapshot_path"
            )
        await self._wait_applied()
        nbytes = await self._loop.run_in_executor(
            self._estimator_executor, self.session.save, self.snapshot_path
        )
        # The save serializes behind any in-flight apply on the estimator
        # thread; if that apply failed while we queued, the file on disk is
        # missing acked keys — report the failure instead of a false ok.
        if self._failure is not None:
            raise RuntimeError(self._failure)
        return {
            "ok": True,
            "op": "snapshot",
            "path": self.snapshot_path,
            "bytes": nbytes,
        }


class ServiceThread:
    """Host a :class:`StreamingService` on a background thread.

    For tests, notebooks, and the bundled example: the calling thread gets
    a running endpoint without owning an event loop.  ``stop()`` performs
    the same graceful drain-snapshot-stop as SIGTERM on the daemon form.
    """

    def __init__(self, service: StreamingService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _main(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            try:
                await self.service.start()
            except BaseException as error:  # surfaced to start()'s caller
                self._startup_error = error
                self._started.set()
                return
            self._started.set()
            await self.service.serve_until_stopped()

        asyncio.run(body())

    def start(self, timeout: float = 60.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self, *, drain: bool = True, snapshot: bool = True, timeout: float = 60.0) -> None:
        """Graceful stop; idempotent and safe to call from any thread.

        A no-op when the service never (fully) started: after a failed or
        timed-out ``start()`` there may be no loop, no running server, or a
        thread still wedged in startup — scheduling ``service.stop()`` there
        would hang or raise, and there is nothing to drain anyway.
        """
        if self._thread is None or not self._thread.is_alive():
            return
        if (
            not self._started.is_set()
            or self._startup_error is not None
            or self._loop is None
        ):
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(drain=drain, snapshot=snapshot), self._loop
            )
            future.result(timeout=timeout)
        except RuntimeError:
            # The loop shut down between the liveness check and the call —
            # the thread is already on its way out; just join it.
            pass
        self._thread.join(timeout=timeout)

    def hot_swap(self, spec, estimator, *, close_old: bool = True, timeout: float = 60.0):
        """Thread-safe :meth:`StreamingService.hot_swap` — the ``swap``
        target :class:`repro.temporal.ReOptimizer` calls from its
        background retraining thread.  Returns the old estimator."""
        if self._loop is None or not self._started.is_set():
            raise RuntimeError("service not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.hot_swap(spec, estimator, close_old=close_old),
            self._loop,
        )
        return future.result(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
