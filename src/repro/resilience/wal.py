"""Write-ahead log: acked ingest batches survive SIGKILL, not just SIGTERM.

The streaming service's durability contract used to be "every *acked* batch
is in the shutdown snapshot" — which holds only for *graceful* shutdown.
This module extends it across hard kills: before a batch is acknowledged it
is appended to an append-only log, so recovery is ``restore(snapshot)`` +
replay of every record the snapshot does not cover.

Layout and format
-----------------
A :class:`ShardWAL` is one *lane*: a directory of numbered append-only
segment files plus a ``CHECKPOINT`` marker::

    <dir>/00000000.wal        records, appended in seq order
    <dir>/00000001.wal        opened when the previous segment filled up
    <dir>/CHECKPOINT          JSON {"seq": S}: records <= S are in a snapshot

Each record is CRC-framed::

    magic "WREC" | seq u64 | payload_len u32 | crc32(payload) u32 | payload

and the payload is a one-line JSON header (count, dtype or inline JSON
keys, counts flag, optional idempotency id) followed by the raw
little-endian key/count bytes.  Replay stops at the first record whose
frame or CRC does not check out — a torn tail from a crash mid-append — and
truncates it away, so the log is always a *prefix* of what was appended,
which is exactly the set of batches that could have been acknowledged.

Appends are flushed to the OS before the service acknowledges the batch:
that survives process death (SIGKILL) by construction, because the page
cache outlives the process.  ``sync="always"`` additionally ``fsync``\\ s
every record for machine-crash durability at a per-record syscall cost;
the default ``sync="os"`` matches the threat model of the chaos suite.

``checkpoint(seq)`` is called after a snapshot that covers every record up
to ``seq``: it persists the marker (atomically, fsynced) and prunes
segments wholly below it, bounding log growth to one snapshot interval.

:class:`ServiceWAL` bundles one lane per shard behind the same router the
sharded estimator uses, so a single shard can be rebuilt from *its* slice
of the log (spec + last snapshot shard state + lane replay) without
touching the survivors.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.resilience import failpoints

__all__ = ["WALError", "WALRecord", "ShardWAL", "ServiceWAL"]

_MAGIC = b"WREC"
_FRAME = struct.Struct("<4sQII")  # magic, seq, payload_len, crc32(payload)

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 8 << 20

#: Hard bound on one record's payload — a frame whose declared length is
#: beyond this is treated as corruption, not as a 4 GiB read request.
_MAX_PAYLOAD_BYTES = 256 << 20

_CHECKPOINT_NAME = "CHECKPOINT"

#: Key dtypes that travel as raw bytes; anything else is JSON-encoded.
_BINARY_DTYPES = {"<i8", "<u8", "<f8"}


# Canonical definition lives in repro.errors (common ReproError base);
# this module remains its permanent public import path.
from repro.errors import WALError  # noqa: E402


class WALRecord:
    """One decoded log record: an acked (keys, counts) batch."""

    __slots__ = ("seq", "keys", "counts", "request_id")

    def __init__(self, seq, keys, counts, request_id) -> None:
        self.seq = seq
        self.keys = keys
        self.counts = counts
        self.request_id = request_id

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:
        return (
            f"WALRecord(seq={self.seq}, n={len(self.keys)}, "
            f"request_id={self.request_id!r})"
        )


def _encode_payload(keys, counts, request_id: Optional[str]) -> bytes:
    header: Dict[str, Any] = {"n": int(len(keys))}
    if request_id is not None:
        header["rid"] = request_id
    body = b""
    if (
        isinstance(keys, np.ndarray)
        and keys.dtype.kind in "iuf"
        and keys.dtype.newbyteorder("<").str in _BINARY_DTYPES
    ):
        wire = keys.dtype.newbyteorder("<")
        header["dtype"] = wire.str
        body += np.ascontiguousarray(keys).astype(wire, copy=False).tobytes()
    elif isinstance(keys, np.ndarray):
        header["keys"] = keys.tolist()
    else:
        header["keys"] = list(keys)
    if counts is not None:
        header["with_counts"] = True
        body += np.ascontiguousarray(counts, dtype="<i8").tobytes()
    return json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n" + body


def _decode_payload(payload: bytes) -> Tuple[Any, Optional[np.ndarray], Optional[str]]:
    newline = payload.index(b"\n")
    header = json.loads(payload[:newline].decode("utf-8"))
    body = payload[newline + 1 :]
    n = int(header["n"])
    offset = 0
    if "dtype" in header:
        dtype = np.dtype(header["dtype"])
        offset = n * dtype.itemsize
        keys = np.frombuffer(body[:offset], dtype=dtype).astype(
            dtype.newbyteorder("="), copy=False
        )
    else:
        keys = header["keys"]
    counts = None
    if header.get("with_counts"):
        counts = np.frombuffer(
            body[offset : offset + n * 8], dtype="<i8"
        ).astype(np.int64, copy=False)
    return keys, counts, header.get("rid")


class ShardWAL:
    """One append-only lane of CRC-framed batch records.

    Thread-safe for the pattern the service uses: appends from the event
    loop, checkpoint/replay from the estimator thread.
    """

    def __init__(
        self,
        directory,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "os",
    ) -> None:
        if sync not in ("os", "always"):
            raise ValueError(f"sync must be 'os' or 'always', got {sync!r}")
        self.directory = os.fspath(directory)
        self.segment_bytes = int(segment_bytes)
        self.sync = sync
        self._lock = threading.Lock()
        self._handle = None
        self._segment_paths: List[str] = []
        self._segment_max: Dict[str, int] = {}  # path -> max seq it holds
        self._appended_records = 0
        self._truncated_records = 0
        os.makedirs(self.directory, exist_ok=True)
        self.checkpoint_seq = self._read_checkpoint()
        self._last_seq = self.checkpoint_seq
        self._recover_segments()
        self._open_tail()

    # ------------------------------------------------------------------
    # recovery / bookkeeping
    # ------------------------------------------------------------------
    def _checkpoint_path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT_NAME)

    def _read_checkpoint(self) -> int:
        try:
            with open(self._checkpoint_path(), "r", encoding="utf-8") as handle:
                return int(json.load(handle)["seq"])
        except FileNotFoundError:
            return 0
        except (ValueError, KeyError, OSError) as error:
            raise WALError(f"unreadable WAL checkpoint marker: {error}") from error

    def _list_segments(self) -> List[str]:
        names = sorted(
            name
            for name in os.listdir(self.directory)
            if name.endswith(".wal") and name[:-4].isdigit()
        )
        return [os.path.join(self.directory, name) for name in names]

    def _scan_segment(self, path: str) -> Tuple[int, int, int]:
        """Validate one segment: (records, max_seq, valid_byte_length)."""
        records = 0
        max_seq = 0
        offset = 0
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            while True:
                frame = handle.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    break
                magic, seq, length, crc = _FRAME.unpack(frame)
                if magic != _MAGIC or length > _MAX_PAYLOAD_BYTES:
                    break
                if offset + _FRAME.size + length > size:
                    break  # torn tail: payload shorter than declared
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                records += 1
                max_seq = max(max_seq, seq)
                offset += _FRAME.size + length
                handle.seek(offset)
        return records, max_seq, offset

    def _recover_segments(self) -> None:
        """Scan every segment, truncating the first torn/corrupt record.

        Everything past the first invalid record is discarded — records are
        appended (and acknowledged) strictly in order, so nothing after a
        tear can correspond to an acknowledged batch.
        """
        segments = self._list_segments()
        survivors: List[str] = []
        tear_found = False
        for index, path in enumerate(segments):
            if tear_found:
                os.unlink(path)
                continue
            records, max_seq, valid_length = self._scan_segment(path)
            size = os.path.getsize(path)
            if valid_length < size:
                tear_found = True
                self._truncated_records += 1
                with open(path, "r+b") as handle:
                    handle.truncate(valid_length)
            if records == 0 and valid_length == 0 and index < len(segments) - 1:
                os.unlink(path)
                continue
            survivors.append(path)
            self._segment_max[path] = max_seq
            self._last_seq = max(self._last_seq, max_seq)
        self._segment_paths = survivors

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"{index:08d}.wal")

    def _open_tail(self) -> None:
        if self._segment_paths:
            path = self._segment_paths[-1]
        else:
            path = self._segment_path(0)
            self._segment_paths.append(path)
            self._segment_max[path] = 0
        self._handle = open(path, "ab")

    def _rotate(self) -> None:
        self._handle.flush()
        self._handle.close()
        tail = self._segment_paths[-1]
        index = int(os.path.basename(tail)[:-4]) + 1
        path = self._segment_path(index)
        self._segment_paths.append(path)
        self._segment_max[path] = 0
        self._handle = open(path, "ab")

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._last_seq

    def append(self, keys, counts=None, request_id: Optional[str] = None) -> int:
        """Durably record one acked batch; returns its sequence number.

        On any write error the partial record is truncated away before the
        error propagates, so a failed append never poisons the log for the
        appends that follow it.
        """
        with self._lock:
            if self._handle is None:
                raise WALError("write-ahead log is closed")
            failpoints.fire("wal.append.before")
            payload = _encode_payload(keys, counts, request_id)
            seq = self._last_seq + 1
            frame = _FRAME.pack(_MAGIC, seq, len(payload), zlib.crc32(payload))
            start = self._handle.tell()
            try:
                self._handle.write(frame)
                if failpoints.armed():
                    # Make a mid-append kill genuinely torn: push the frame
                    # header to the OS before the site fires, so the file
                    # ends with a header whose payload never arrived.
                    self._handle.flush()
                    failpoints.fire("wal.append.mid")
                self._handle.write(payload)
                self._handle.flush()
                failpoints.fire("wal.fsync")
                if self.sync == "always":
                    os.fsync(self._handle.fileno())
            except failpoints.FailPointError:
                self._truncate_back(start)
                raise
            except OSError as error:
                self._truncate_back(start)
                raise WALError(f"WAL append failed: {error}") from error
            self._last_seq = seq
            self._appended_records += 1
            tail = self._segment_paths[-1]
            self._segment_max[tail] = seq
            failpoints.fire("wal.append.after")
            if self._handle.tell() >= self.segment_bytes:
                self._rotate()
            return seq

    def _truncate_back(self, offset: int) -> None:
        try:
            self._handle.seek(offset)
            self._handle.truncate(offset)
        except OSError:
            # Could not even truncate: close the lane so later appends fail
            # loudly instead of appending after a torn record.
            try:
                self._handle.close()
            finally:
                self._handle = None

    # ------------------------------------------------------------------
    # checkpoint / replay
    # ------------------------------------------------------------------
    def checkpoint(self, seq: Optional[int] = None) -> int:
        """Mark records ``<= seq`` as covered by a snapshot; prune segments.

        ``seq`` defaults to the current :attr:`last_seq`.  The marker write
        is atomic and fsynced (a checkpoint that claims coverage it cannot
        prove would replay-skip acked data after a crash).
        """
        with self._lock:
            if seq is None:
                seq = self._last_seq
            seq = int(seq)
            if seq < self.checkpoint_seq:
                return self.checkpoint_seq
            path = self._checkpoint_path()
            tmp_path = f"{path}.tmp.{os.getpid()}"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump({"seq": seq}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            self._fsync_directory()
            self.checkpoint_seq = seq
            if self._handle is not None and self._handle.tell() > 0:
                # Rotate so the tail segment can be pruned by the *next*
                # checkpoint even if no append triggers size rotation.
                self._rotate()
            for segment in list(self._segment_paths[:-1]):
                if self._segment_max.get(segment, 0) <= seq:
                    os.unlink(segment)
                    self._segment_paths.remove(segment)
                    self._segment_max.pop(segment, None)
            return seq

    def _fsync_directory(self) -> None:
        try:
            dir_fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def replay(self, upto: Optional[int] = None) -> Iterator[WALRecord]:
        """Yield records past the checkpoint, in order, stopping at a tear.

        ``upto`` bounds replay to records with ``seq <= upto`` — the shard
        supervisor replays only what the pump has already processed, so
        batches still in the service buffer are not double-applied.
        """
        with self._lock:
            segments = list(self._segment_paths)
            if self._handle is not None:
                self._handle.flush()
        for path in segments:
            try:
                size = os.path.getsize(path)
            except FileNotFoundError:
                continue  # pruned by a concurrent checkpoint
            with open(path, "rb") as handle:
                offset = 0
                while True:
                    frame = handle.read(_FRAME.size)
                    if len(frame) < _FRAME.size:
                        break
                    magic, seq, length, crc = _FRAME.unpack(frame)
                    if (
                        magic != _MAGIC
                        or length > _MAX_PAYLOAD_BYTES
                        or offset + _FRAME.size + length > size
                    ):
                        return  # torn tail: everything past it is unacked
                    payload = handle.read(length)
                    if len(payload) < length or zlib.crc32(payload) != crc:
                        return
                    offset += _FRAME.size + length
                    if upto is not None and seq > upto:
                        return
                    if seq > self.checkpoint_seq:
                        keys, counts, request_id = _decode_payload(payload)
                        yield WALRecord(seq, keys, counts, request_id)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "last_seq": self._last_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "segments": len(self._segment_paths),
            "appended_records": self._appended_records,
            "truncated_records": self._truncated_records,
        }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    self._handle.close()
                finally:
                    self._handle = None

    def __enter__(self) -> "ShardWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceWAL:
    """Per-shard WAL lanes behind the sharded estimator's own router.

    ``router`` maps a normalized key batch to shard indices (the sharded
    estimator's ``shard_of_keys``); with ``num_lanes == 1`` (unsharded or
    round-robin estimators, where per-shard slices are not key-determined)
    everything lands in lane 0 and recovery replays the whole log.
    """

    def __init__(
        self,
        directory,
        *,
        num_lanes: int = 1,
        router: Optional[Callable] = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "os",
    ) -> None:
        if num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        if num_lanes > 1 and router is None:
            raise ValueError("multi-lane WALs need a key router")
        self.directory = os.fspath(directory)
        self.num_lanes = num_lanes
        self._router = router
        self.lanes = [
            ShardWAL(
                os.path.join(self.directory, f"shard-{index}"),
                segment_bytes=segment_bytes,
                sync=sync,
            )
            for index in range(num_lanes)
        ]

    @staticmethod
    def _take(items, indices: np.ndarray):
        if isinstance(items, np.ndarray):
            return items[indices]
        return [items[index] for index in indices]

    def append_batch(
        self, keys, counts=None, request_id: Optional[str] = None
    ) -> Dict[int, int]:
        """Append one acked batch, split across lanes; returns lane→seq.

        The split uses the same deterministic routing as ingestion, so a
        lane's records are exactly the arrivals its shard owns.
        """
        if self.num_lanes == 1:
            return {0: self.lanes[0].append(keys, counts, request_id)}
        from repro.sketches.base import as_key_batch

        items = keys if isinstance(keys, np.ndarray) else list(keys)
        key_batch, count_array = as_key_batch(items, counts)
        assignments = self._router(key_batch)
        marks: Dict[int, int] = {}
        for lane_index in range(self.num_lanes):
            selected = np.flatnonzero(assignments == lane_index)
            if not selected.size:
                continue
            marks[lane_index] = self.lanes[lane_index].append(
                self._take(items, selected),
                count_array[selected] if counts is not None else None,
                request_id,
            )
        return marks

    def positions(self) -> Dict[int, int]:
        """Current last appended seq per lane."""
        return {index: lane.last_seq for index, lane in enumerate(self.lanes)}

    def checkpoint(self, marks: Optional[Dict[int, int]] = None) -> None:
        """Checkpoint every lane at ``marks`` (default: current positions)."""
        for index, lane in enumerate(self.lanes):
            seq = lane.last_seq if marks is None else marks.get(index, None)
            if seq is not None:
                lane.checkpoint(seq)

    def replay(self) -> Iterator[Tuple[int, WALRecord]]:
        """Yield ``(lane, record)`` for every record past each checkpoint."""
        for index, lane in enumerate(self.lanes):
            for record in lane.replay():
                yield index, record

    def replay_lane(self, lane: int, upto: Optional[int] = None):
        return self.lanes[lane].replay(upto=upto)

    def pending_records(self) -> int:
        return sum(
            max(0, lane.last_seq - lane.checkpoint_seq) for lane in self.lanes
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "num_lanes": self.num_lanes,
            "lanes": [lane.stats() for lane in self.lanes],
        }

    def close(self) -> None:
        for lane in self.lanes:
            lane.close()

    def __enter__(self) -> "ServiceWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
