"""Client-side retry policy: bounded exponential backoff with jitter.

A :class:`RetryPolicy` is a small value object the streaming clients
consult when a *transport* failure interrupts a request — connection
refused while the service restarts, a connection the service dropped
mid-flight, a socket reset when a worker crash parked and un-parked the
listener.  Application-level errors (the service answered ``ok: false``)
are never retried: the service saw the request and judged it, and
retrying a judged request is how duplicates happen.

Retried *ingests* are made safe by idempotency IDs: the client stamps
each batch with a unique request id, the service keeps a dedup window of
recently applied ids (rebuilt from the WAL on restart), and a retransmit
of an already-applied batch is acknowledged without being re-counted.

The policy is deterministic given its ``rng`` — tests inject a seeded
``random.Random`` to pin jitter.
"""

from __future__ import annotations

import random
import time
from typing import Iterator, Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


class RetryPolicy:
    """How many times, and how patiently, to retry transport failures.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``3`` means one original request
        plus up to two retries).
    base_delay / max_delay:
        Backoff sleeps grow ``base_delay * multiplier**i`` capped at
        ``max_delay``.
    jitter:
        Fraction of each sleep drawn uniformly at random (``0.5`` means a
        sleep is uniform in ``[0.5*d, d]``) — avoids reconnect stampedes
        when many clients lost the same service.
    budget_seconds:
        Optional wall-clock cap over the whole retry sequence; once spent,
        no further retries even if attempts remain.
    """

    __slots__ = (
        "max_attempts",
        "base_delay",
        "max_delay",
        "multiplier",
        "jitter",
        "budget_seconds",
        "_rng",
    )

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        budget_seconds: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.budget_seconds = budget_seconds
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        """Jittered sleep before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            low = raw * (1.0 - self.jitter)
            return low + (raw - low) * self._rng.random()
        return raw

    def delays(self) -> Iterator[float]:
        """Yield one sleep per permitted retry, honoring the time budget.

        The sequence is bounded by ``max_attempts - 1`` entries; with a
        ``budget_seconds`` it stops early once the projected sleep would
        overrun the budget.  Callers loop ``for pause in policy.delays():
        sleep(pause); try again``.
        """
        deadline = (
            time.monotonic() + self.budget_seconds
            if self.budget_seconds is not None
            else None
        )
        for attempt in range(1, self.max_attempts):
            pause = self.delay(attempt)
            if deadline is not None and time.monotonic() + pause > deadline:
                return
            yield pause

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay}, "
            f"jitter={self.jitter}, budget_seconds={self.budget_seconds})"
        )


#: A sensible default for interactive clients: four attempts, ~50 ms to
#: ~2 s backoff.  Opt-in — clients without a policy keep fail-fast behavior.
DEFAULT_RETRY_POLICY = RetryPolicy()
