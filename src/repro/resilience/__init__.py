"""Fault tolerance for the streaming stack: WAL, supervision, retry, chaos.

Four pieces, composed by the service and clients:

- :mod:`repro.resilience.wal` — per-shard write-ahead log of acked ingest
  batches; snapshot + replay recovers every acked key after SIGKILL.
- :mod:`repro.resilience.supervisor` — restart budget / circuit breaker
  policy and the snapshot shard-state loader used to rebuild a single
  crashed shard worker.
- :mod:`repro.resilience.retry` — client retry policy (exponential
  backoff + jitter + budget); paired with idempotency IDs and the
  service's dedup window so retries never double-count.
- :mod:`repro.resilience.failpoints` — named fault-injection sites
  powering the chaos test suite.
"""

from repro.resilience.failpoints import (
    FailPointError,
    arm,
    arm_from_env,
    disarm,
    disarm_all,
    fire,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.resilience.supervisor import RestartBudget, load_shard_state
from repro.resilience.wal import ServiceWAL, ShardWAL, WALError, WALRecord

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FailPointError",
    "RestartBudget",
    "RetryPolicy",
    "ServiceWAL",
    "ShardWAL",
    "WALError",
    "WALRecord",
    "arm",
    "arm_from_env",
    "disarm",
    "disarm_all",
    "fire",
    "load_shard_state",
]
