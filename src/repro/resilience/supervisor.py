"""Shard supervision primitives: restart budget and snapshot shard loader.

The policy half of self-healing lives here; the mechanics (reviving the
worker process, copying counter state back into shared memory, replaying
the WAL lane) live with the code that owns those resources
(``core/sharding.py`` and ``service/server.py``).

:class:`RestartBudget` is the circuit breaker: each shard gets one, and a
supervised restart is attempted only while the budget allows it.  Too many
restarts inside the sliding window opens the circuit — at that point the
service parks itself the way an unsupervised one would, because a shard
that keeps dying is a bug, not a blip, and looping SIGKILL→rebuild forever
would hide it.

:func:`load_shard_state` digs one shard's dense counter table out of a
session snapshot file without building the whole estimator (no worker
pool, no shm segments): snapshot → embedded sharded buffer → that shard's
blob → dense rehydrate → table array.
"""

from __future__ import annotations

import collections
import os
import random
import time
from typing import Deque, Optional

import numpy as np

__all__ = ["RestartBudget", "load_shard_state"]


class RestartBudget:
    """Sliding-window restart allowance with exponential backoff.

    ``max_restarts`` attempts are allowed inside any ``window_seconds``
    span; one more trips the breaker (:attr:`tripped`).  Consecutive
    failures also grow the pre-restart delay exponentially (with jitter,
    so multi-shard crashes don't restart in lockstep); a recorded success
    resets the delay ladder but *not* the window — a shard that dies every
    few seconds trips the breaker even if each rebuild "succeeds".
    """

    __slots__ = (
        "max_restarts",
        "window_seconds",
        "base_delay",
        "max_delay",
        "jitter",
        "_attempts",
        "_consecutive",
        "_tripped",
        "_rng",
        "_clock",
    )

    def __init__(
        self,
        *,
        max_restarts: int = 5,
        window_seconds: float = 60.0,
        base_delay: float = 0.1,
        max_delay: float = 5.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
        clock=time.monotonic,
    ) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.max_restarts = int(max_restarts)
        self.window_seconds = float(window_seconds)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self._attempts: Deque[float] = collections.deque()
        self._consecutive = 0
        self._tripped = False
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._attempts and self._attempts[0] < horizon:
            self._attempts.popleft()

    @property
    def tripped(self) -> bool:
        """True once the breaker opened; only :meth:`reset` closes it."""
        return self._tripped

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive

    def allow(self) -> bool:
        """Whether one more restart attempt fits in the window."""
        if self._tripped:
            return False
        self._prune(self._clock())
        if len(self._attempts) >= self.max_restarts:
            self._tripped = True
            return False
        return True

    def next_delay(self) -> float:
        """Jittered backoff to sleep before the next restart attempt."""
        raw = min(self.max_delay, self.base_delay * 2.0 ** self._consecutive)
        if self.jitter:
            low = raw * (1.0 - self.jitter)
            return low + (raw - low) * self._rng.random()
        return raw

    def record_attempt(self) -> None:
        """Count a restart attempt against the window (call before it)."""
        now = self._clock()
        self._prune(now)
        self._attempts.append(now)
        self._consecutive += 1

    def record_success(self) -> None:
        """A rebuild completed: reset the backoff ladder."""
        self._consecutive = 0

    def reset(self) -> None:
        """Close the breaker and forget history (operator intervention)."""
        self._attempts.clear()
        self._consecutive = 0
        self._tripped = False

    def stats(self) -> dict:
        self._prune(self._clock())
        return {
            "tripped": self._tripped,
            "attempts_in_window": len(self._attempts),
            "max_restarts": self.max_restarts,
            "window_seconds": self.window_seconds,
            "consecutive_failures": self._consecutive,
        }


def load_shard_state(snapshot_path, shard_index: int) -> Optional[np.ndarray]:
    """One shard's dense counter table from a session snapshot file.

    Returns ``None`` when no snapshot exists yet (a service that crashed
    before its first snapshot recovers from a blank table + full WAL
    replay).  Raises if the snapshot exists but does not hold a sharded
    estimator with that shard — the caller should not silently rebuild a
    blank shard when the snapshot it trusted is unusable.
    """
    from repro.sketches.serialization import SerializationError, loads, unpack

    path = os.fspath(snapshot_path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    _, _, session_arrays = unpack(data, expect_tag="session")
    if "estimator" not in session_arrays:
        raise SerializationError("snapshot is missing its estimator blob")
    _, _, shard_arrays = unpack(
        session_arrays["estimator"].tobytes(), expect_tag="sharded"
    )
    name = f"shard_{shard_index}"
    if name not in shard_arrays:
        raise SerializationError(f"snapshot holds no state for {name!r}")
    # Dense rehydrate: no shm allocation, no worker pool — just the table.
    shard = loads(shard_arrays[name].tobytes(), storage="dense")
    field = getattr(shard, "_STORAGE_FIELD", None)
    if field is None:
        raise SerializationError(
            "snapshot shard is not a storage-backed sketch; supervised "
            "rebuild needs a counter table to restore"
        )
    table = np.array(getattr(shard, field), copy=True)
    close = getattr(shard, "close", None)
    if close is not None:
        close()
    return table
