"""Named fault-injection sites (fail points) for the chaos test suite.

Production code calls :func:`fire` at the places failures actually happen —
WAL record writes, worker ingest loops, connection accept, snapshot rename.
In normal operation every ``fire`` is a dictionary truthiness check and a
return; a test *arms* a site first, by API in-process or through the
``REPRO_FAILPOINTS`` environment variable for subprocesses (the shard
workers re-arm from the environment at spawn, so a parent-set variable
reaches them under any multiprocessing start method):

    REPRO_FAILPOINTS="wal.append.mid=3*kill,service.accept=2*raise"

The spec grammar is ``name=action`` entries separated by ``,`` (or ``;``),
where ``action`` is one of

``kill``
    ``SIGKILL`` the calling process — no atexit, no flush, the honest
    crash the durability tests need.
``exit``
    ``os._exit(1)`` — a hard exit that still skips cleanup but reports a
    code instead of a signal.
``raise``
    Raise :class:`FailPointError` at the site (exercises error paths:
    refused connections, failed worker batches, WAL I/O errors).
``sleep:SECONDS``
    Delay the site (races, timeouts, staleness windows).

An action may be prefixed ``N*`` to trigger on the *N-th* hit of the site
(1-based) instead of the first; earlier hits pass through untouched.  Every
trigger disarms the site, so one armed fail point induces exactly one
fault — the recovery that follows runs against healthy code.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Dict, Optional

__all__ = [
    "ENV_VAR",
    "FailPointError",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "disarm_all",
    "fire",
    "parse_spec",
]

#: Environment variable the spawn-side :func:`arm_from_env` reads.
ENV_VAR = "REPRO_FAILPOINTS"

_ACTIONS = ("kill", "exit", "raise", "sleep")


class FailPointError(RuntimeError):
    """The induced failure an armed ``raise`` fail point throws."""


class _FailPoint:
    __slots__ = ("name", "action", "hit", "seconds", "hits")

    def __init__(self, name: str, action: str, hit: int, seconds: float) -> None:
        self.name = name
        self.action = action
        self.hit = hit
        self.seconds = seconds
        self.hits = 0


# The armed registry.  ``fire`` reads it without the lock — arming happens
# in test setup, firing on hot paths, and a stale read during arming is a
# non-event (the next hit sees it) — while arm/disarm serialize writes.
_ARMED: Dict[str, _FailPoint] = {}
_LOCK = threading.Lock()


def parse_spec(text: str) -> Dict[str, tuple]:
    """Parse an ``ENV_VAR`` spec into ``{name: (action, hit, seconds)}``."""
    parsed: Dict[str, tuple] = {}
    for raw in text.replace(";", ",").split(","):
        entry = raw.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ValueError(f"fail point entry {entry!r} is missing '='")
        name, action = entry.split("=", 1)
        name = name.strip()
        action = action.strip()
        hit = 1
        if "*" in action:
            count_text, action = action.split("*", 1)
            try:
                hit = int(count_text)
            except ValueError as error:
                raise ValueError(
                    f"fail point {name!r}: bad hit count {count_text!r}"
                ) from error
            if hit < 1:
                raise ValueError(f"fail point {name!r}: hit count must be >= 1")
        seconds = 0.0
        if action.startswith("sleep:"):
            seconds = float(action.split(":", 1)[1])
            action = "sleep"
        if action not in _ACTIONS:
            raise ValueError(
                f"fail point {name!r}: unknown action {action!r} "
                f"(expected one of {_ACTIONS})"
            )
        parsed[name] = (action, hit, seconds)
    return parsed


def arm(name: str, action: str, *, hit: int = 1, seconds: float = 0.0) -> None:
    """Arm one site.  ``hit`` is the 1-based call on which it triggers."""
    if action not in _ACTIONS:
        raise ValueError(f"unknown fail point action {action!r}")
    if hit < 1:
        raise ValueError("hit count must be >= 1")
    with _LOCK:
        _ARMED[name] = _FailPoint(name, action, hit, seconds)


def arm_from_env(environ=None) -> int:
    """Arm every site the ``ENV_VAR`` spec names; returns how many."""
    text = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    if not text:
        return 0
    entries = parse_spec(text)
    for name, (action, hit, seconds) in entries.items():
        arm(name, action, hit=hit, seconds=seconds)
    return len(entries)


def disarm(name: str) -> None:
    with _LOCK:
        _ARMED.pop(name, None)


def disarm_all() -> None:
    with _LOCK:
        _ARMED.clear()


def armed() -> Dict[str, str]:
    """Snapshot of armed sites (for stats/debugging)."""
    with _LOCK:
        return {point.name: point.action for point in _ARMED.values()}


def fire(name: str) -> None:
    """Hit a site.  A no-op unless a test armed this exact name."""
    if not _ARMED:  # the hot-path guard: one dict truthiness check
        return
    point = _ARMED.get(name)
    if point is None:
        return
    point.hits += 1
    if point.hits < point.hit:
        return
    disarm(name)
    if point.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60.0)  # pragma: no cover — the signal is not survivable
    elif point.action == "exit":
        os._exit(1)
    elif point.action == "sleep":
        time.sleep(point.seconds)
    else:
        raise FailPointError(f"fail point {name!r} triggered")
