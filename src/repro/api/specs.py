"""Declarative estimator specifications.

A spec is a small, validated, JSON-safe description of an estimator
configuration — the single currency that experiments, services and process
shards exchange instead of bespoke constructor calls and closure factories.
Three spec shapes cover every estimator in the library:

* :class:`SketchSpec` — any registered sketch (``count_min``,
  ``count_sketch``, ``bloom``, ``ams``, ``misra_gries``, ``space_saving``,
  ``exact_counter``, ``learned_cms``) with its constructor parameters;
* :class:`OptHashSpec` — the trained opt-hash estimators (``opt_hash`` /
  ``adaptive_opt_hash``), carrying the full learning-phase configuration
  (bucket count, λ, solver and classifier *by name*, tuning, sampling);
* :class:`ShardedSpec` — a sharded estimator wrapping any inner spec with a
  shard layout (count, partition mode, executor, query mode);
* :class:`WindowedSpec` — a temporal wrapper (``sliding_window`` /
  ``decayed``) putting any mergeable inner spec behind a ring of rotating
  panes (see :mod:`repro.temporal`).

Every spec round-trips losslessly through ``to_dict()`` / ``from_dict()``:
the dict is JSON-serializable (``json.dumps(spec.to_dict())`` always works),
``from_dict`` validates strictly, and ``build(from_dict(to_dict(spec)))``
yields an estimator merge-compatible with ``build(spec)``.  Anything
malformed — unknown kind, unknown/missing/ill-typed parameters, values that
cannot survive JSON — raises :class:`SpecError` (a ``ValueError``), never a
bare ``KeyError``/``TypeError`` from deep inside a constructor.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "SpecError",
    "EstimatorSpec",
    "SketchSpec",
    "OptHashSpec",
    "ShardedSpec",
    "WindowedSpec",
    "spec_from_dict",
    "iter_spec_grid",
]


# Canonical definition lives in repro.errors (common ReproError base);
# this module remains its permanent public import path.
from repro.errors import SpecError  # noqa: E402


def _ensure_json_safe(value: Any, path: str) -> Any:
    """Verify ``value`` survives a JSON round-trip; coerce NumPy scalars.

    Returns the (possibly coerced) value so specs built from NumPy ints /
    floats serialize identically to ones built from plain Python scalars.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # NumPy scalars present as neither int nor float above on some versions;
    # an .item() duck-check converts them without importing numpy here.
    if hasattr(value, "item") and not isinstance(value, (list, tuple, dict)):
        try:
            return _ensure_json_safe(value.item(), path)
        except (AttributeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [
            _ensure_json_safe(item, f"{path}[{index}]")
            for index, item in enumerate(value)
        ]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(
                    f"{path}: mapping keys must be strings, got {key!r}"
                )
            out[key] = _ensure_json_safe(item, f"{path}.{key}")
        return out
    raise SpecError(
        f"{path}: value {value!r} of type {type(value).__name__} is not "
        "JSON-serializable (use int, float, str, bool, None, list or dict)"
    )


class EstimatorSpec:
    """Base class of all estimator specs.

    Subclasses expose a ``kind`` (the registry name, which is also the
    serialization tag of the built estimator), validate on construction, and
    round-trip through :meth:`to_dict` / :func:`spec_from_dict`.
    """

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def validate(self) -> "EstimatorSpec":
        """Re-run validation (a no-op for specs validated at construction)."""
        return self

    def to_json(self) -> str:
        """The spec as a compact JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def build(self, **context):
        """Shortcut for :func:`repro.api.build` on this spec."""
        from repro.api.registry import build

        return self.build_with(build, **context)

    def build_with(self, builder, **context):
        return builder(self, **context)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EstimatorSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())

    def __repr__(self) -> str:
        body = ", ".join(
            f"{key}={value!r}"
            for key, value in self.to_dict().items()
            if key != "kind"
        )
        return f"{type(self).__name__}({self.kind!r}, {body})"


class SketchSpec(EstimatorSpec):
    """Spec of a registered sketch: a kind name plus constructor parameters.

    >>> SketchSpec("count_min", total_buckets=8192, depth=2, seed=1)
    >>> SketchSpec("bloom", num_bits=4096, num_hashes=3, seed=7)

    Parameters are validated against the schema the estimator class declared
    when it registered (unknown names, missing required names, type and
    range violations all raise :class:`SpecError`).
    """

    def __init__(self, kind: str, **params: Any) -> None:
        if not isinstance(kind, str) or not kind:
            raise SpecError(f"kind must be a non-empty string, got {kind!r}")
        self._kind = kind
        self.params = {
            name: _ensure_json_safe(value, f"{kind}.{name}")
            for name, value in params.items()
        }
        self.validate()

    @property
    def kind(self) -> str:
        return self._kind

    def validate(self) -> "SketchSpec":
        from repro.api.registry import validate_spec_params

        validate_spec_params(self._kind, self.params)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self._kind, **self.params}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SketchSpec":
        data = dict(data)
        kind = data.pop("kind", None)
        if kind is None:
            raise SpecError("spec dict is missing its 'kind' entry")
        return cls(kind, **data)


# Fields of :class:`OptHashSpec`, mirroring ``repro.core.pipeline.OptHashConfig``
# one-to-one: (name, default).  ``adaptive`` is implied by the kind name.
_OPT_HASH_FIELDS: Tuple[Tuple[str, Any], ...] = (
    ("num_buckets", 10),
    ("lam", 1.0),
    ("solver", "bcd"),
    ("solver_options", None),
    ("classifier", "cart"),
    ("classifier_options", None),
    ("tune_classifier", False),
    ("tuning_grid", None),
    ("tuning_folds", 10),
    ("max_stored_elements", None),
    ("sample_proportional_to_frequency", True),
    ("bloom_bits", None),
    ("expected_distinct", 10_000),
    ("seed", None),
    ("backend", "auto"),
)

_SOLVERS = ("bcd", "dp", "milp")
_CLASSIFIERS = ("cart", "logreg", "rf")


class OptHashSpec(EstimatorSpec):
    """Spec of the paper's opt-hash estimator (learning phase + streaming).

    ``build`` / ``open`` on this spec require a training ``prefix`` (and
    optionally a ``featurizer``), since the estimator's hash table and
    classifier are learned from observed data.  The solver (``bcd`` / ``dp``
    / ``milp``) and the unseen-element classifier (``cart`` / ``logreg`` /
    ``rf`` / ``None``) are selected by name.
    """

    def __init__(self, adaptive: bool = False, **params: Any) -> None:
        known = dict(_OPT_HASH_FIELDS)
        unknown = sorted(set(params) - set(known))
        if unknown:
            raise SpecError(
                f"unknown opt-hash parameter(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        self.adaptive = bool(adaptive)
        for name, default in _OPT_HASH_FIELDS:
            value = params.get(name, default)
            setattr(self, name, _ensure_json_safe(value, f"{self.kind}.{name}"))
        self.validate()

    @property
    def kind(self) -> str:
        return "adaptive_opt_hash" if self.adaptive else "opt_hash"

    def validate(self) -> "OptHashSpec":
        if not isinstance(self.num_buckets, int) or self.num_buckets <= 0:
            raise SpecError(
                f"num_buckets must be a positive int, got {self.num_buckets!r}"
            )
        if not isinstance(self.lam, (int, float)) or not 0.0 <= float(self.lam) <= 1.0:
            raise SpecError(f"lam must lie in [0, 1], got {self.lam!r}")
        if self.solver not in _SOLVERS:
            raise SpecError(
                f"unknown solver {self.solver!r}; expected one of {_SOLVERS}"
            )
        if self.classifier is not None and self.classifier not in _CLASSIFIERS:
            raise SpecError(
                f"unknown classifier {self.classifier!r}; expected one of "
                f"{_CLASSIFIERS} or None"
            )
        if self.solver_options is not None and not isinstance(self.solver_options, dict):
            raise SpecError("solver_options must be a dict or None")
        if self.classifier_options is not None and not isinstance(
            self.classifier_options, dict
        ):
            raise SpecError("classifier_options must be a dict or None")
        if self.max_stored_elements is not None and (
            not isinstance(self.max_stored_elements, int)
            or self.max_stored_elements <= 0
        ):
            raise SpecError(
                "max_stored_elements must be a positive int or None, got "
                f"{self.max_stored_elements!r}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int or None, got {self.seed!r}")
        if self.bloom_bits is not None and (
            not isinstance(self.bloom_bits, int) or self.bloom_bits <= 0
        ):
            raise SpecError(
                f"bloom_bits must be a positive int or None, got {self.bloom_bits!r}"
            )
        from repro.kernels import BACKEND_SCHEMA

        choices = BACKEND_SCHEMA["backend"]["choices"]
        if self.backend not in choices:
            raise SpecError(
                f"unknown kernel backend {self.backend!r}; expected one of {choices}"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for name, default in _OPT_HASH_FIELDS:
            value = getattr(self, name)
            if value != default:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptHashSpec":
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in ("opt_hash", "adaptive_opt_hash"):
            raise SpecError(f"not an opt-hash spec dict (kind={kind!r})")
        adaptive = data.pop("adaptive", None)
        implied = kind == "adaptive_opt_hash"
        if adaptive is not None and bool(adaptive) != implied:
            raise SpecError(
                f"kind {kind!r} conflicts with adaptive={adaptive!r}"
            )
        return cls(adaptive=implied, **data)


class ShardedSpec(EstimatorSpec):
    """Spec of a sharded estimator wrapping an inner spec.

    The inner spec must construct deterministically (an explicit seed for
    every randomized estimator), because all shards — and, in process mode,
    the workers' blank clones — are built independently from it and must be
    merge-compatible.
    """

    MODES = ("key-partition", "round-robin")
    EXECUTORS = ("serial", "thread", "process")
    QUERY_MODES = ("collapse", "fanout")
    TRANSPORTS = ("serialization", "shm")

    def __init__(
        self,
        inner: EstimatorSpec,
        num_shards: int = 4,
        mode: str = "key-partition",
        executor: str = "serial",
        query_mode: str = "collapse",
        transport: str = "serialization",
        partition_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(inner, EstimatorSpec):
            raise SpecError(
                f"inner must be an EstimatorSpec, got {type(inner).__name__} "
                "(use spec_from_dict to lift a plain dict)"
            )
        if isinstance(inner, ShardedSpec):
            raise SpecError("sharded specs cannot nest (inner is already sharded)")
        self.inner = inner
        self.num_shards = num_shards
        self.mode = mode
        self.executor = executor
        self.query_mode = query_mode
        self.transport = transport
        self.partition_seed = partition_seed
        self.validate()

    @property
    def kind(self) -> str:
        return "sharded"

    def validate(self) -> "ShardedSpec":
        if not isinstance(self.num_shards, int) or self.num_shards <= 0:
            raise SpecError(
                f"num_shards must be a positive int, got {self.num_shards!r}"
            )
        if self.mode not in self.MODES:
            raise SpecError(f"mode must be one of {self.MODES}, got {self.mode!r}")
        if self.executor not in self.EXECUTORS:
            raise SpecError(
                f"executor must be one of {self.EXECUTORS}, got {self.executor!r}"
            )
        if self.query_mode not in self.QUERY_MODES:
            raise SpecError(
                f"query_mode must be one of {self.QUERY_MODES}, got "
                f"{self.query_mode!r}"
            )
        if self.query_mode == "fanout" and self.mode != "key-partition":
            raise SpecError("fanout queries require key-partition mode")
        # The training-kind restrictions below must see through a temporal
        # wrapper: a windowed spec over opt-hash still runs a learning phase
        # inside each worker-side build.
        effective_inner_kind = (
            self.inner.inner.kind
            if isinstance(self.inner, WindowedSpec)
            else self.inner.kind
        )
        if self.transport not in self.TRANSPORTS:
            raise SpecError(
                f"transport must be one of {self.TRANSPORTS}, got "
                f"{self.transport!r}"
            )
        if self.partition_seed is not None and not isinstance(self.partition_seed, int):
            raise SpecError(
                f"partition_seed must be an int or None, got {self.partition_seed!r}"
            )
        self.inner.validate()
        from repro.api.registry import (
            check_deterministic_for_sharding,
            kind_requires_training,
            kind_supports_storage,
        )

        check_deterministic_for_sharding(self.inner)
        if self.transport == "shm":
            if self.executor != "process":
                raise SpecError(
                    "transport='shm' requires executor='process' (the other "
                    "executors already share memory)"
                )
            if not kind_supports_storage(self.inner.kind):
                raise SpecError(
                    f"transport='shm' needs an inner kind with pluggable "
                    f"counter storage; {self.inner.kind!r} has no storage= "
                    "field"
                )
            if (
                isinstance(self.inner, SketchSpec)
                and self.inner.params.get("storage") == "mmap"
            ):
                raise SpecError(
                    "mmap-backed shards cannot use the shm transport; pick "
                    "storage='shm' or the serialization transport"
                )
        if self.executor == "process" and kind_requires_training(effective_inner_kind):
            # Fail before build: trained opt-hash shards have no binary form
            # to ship across the process boundary, and discovering that only
            # after the (expensive) learning phase would waste the run.
            raise SpecError(
                f"executor='process' cannot shard kind {self.inner.kind!r}: "
                "trained estimators are not serializable for worker "
                "transport — use the thread or serial executor"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": "sharded",
            "inner": self.inner.to_dict(),
            "num_shards": self.num_shards,
            "mode": self.mode,
            "executor": self.executor,
            "query_mode": self.query_mode,
        }
        if self.transport != "serialization":
            data["transport"] = self.transport
        if self.partition_seed is not None:
            data["partition_seed"] = self.partition_seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardedSpec":
        data = dict(data)
        kind = data.pop("kind", None)
        if kind != "sharded":
            raise SpecError(f"not a sharded spec dict (kind={kind!r})")
        inner = data.pop("inner", None)
        if not isinstance(inner, Mapping):
            raise SpecError("sharded spec dict is missing its 'inner' spec dict")
        unknown = sorted(
            set(data)
            - {
                "num_shards",
                "mode",
                "executor",
                "query_mode",
                "transport",
                "partition_seed",
            }
        )
        if unknown:
            raise SpecError(f"unknown sharded parameter(s) {unknown}")
        return cls(spec_from_dict(inner), **data)


class WindowedSpec(EstimatorSpec):
    """Spec of a temporal (sliding-window / time-decayed) estimator.

    Wraps any mergeable inner spec in a ring of ``num_panes`` sub-sketches
    (see :mod:`repro.temporal.windowed`).  ``decay=None`` describes a
    :class:`~repro.temporal.windowed.SlidingWindowSketch` (kind
    ``"sliding_window"``); a decay factor in ``(0, 1]`` describes a
    :class:`~repro.temporal.windowed.DecayedSketch` (kind ``"decayed"``).
    ``pane_items=None`` rotates only on explicit ``tick()`` calls (the
    wall-clock mode the streaming service drives); a positive value rotates
    every ``pane_items`` weighted arrivals.

    The inner spec must construct deterministically (an explicit seed for
    every randomized estimator): panes are built independently from it at
    every rotation and must stay merge-compatible.
    """

    KINDS = ("sliding_window", "decayed")

    def __init__(
        self,
        inner: EstimatorSpec,
        num_panes: int = 8,
        pane_items: Optional[int] = None,
        decay: Optional[float] = None,
    ) -> None:
        if not isinstance(inner, EstimatorSpec):
            raise SpecError(
                f"inner must be an EstimatorSpec, got {type(inner).__name__} "
                "(use spec_from_dict to lift a plain dict)"
            )
        if isinstance(inner, (ShardedSpec, WindowedSpec)):
            raise SpecError(
                "windowed specs wrap a plain estimator spec; nest the "
                "windowed spec *inside* a sharded spec instead of the "
                "other way around"
            )
        self.inner = inner
        self.num_panes = num_panes
        self.pane_items = pane_items
        self.decay = decay
        self.validate()

    @property
    def kind(self) -> str:
        return "decayed" if self.decay is not None else "sliding_window"

    @property
    def seed(self) -> Optional[int]:
        """The inner spec's seed (the wrapper itself draws no randomness)."""
        seed = getattr(self.inner, "seed", None)
        if seed is None and isinstance(self.inner, SketchSpec):
            seed = self.inner.params.get("seed")
        return seed

    def validate(self) -> "WindowedSpec":
        if not isinstance(self.num_panes, int) or self.num_panes < 2:
            raise SpecError(
                f"num_panes must be an int >= 2, got {self.num_panes!r}"
            )
        if self.pane_items is not None and (
            not isinstance(self.pane_items, int) or self.pane_items <= 0
        ):
            raise SpecError(
                f"pane_items must be a positive int or None, got "
                f"{self.pane_items!r}"
            )
        if self.decay is not None:
            if not isinstance(self.decay, (int, float)) or not (
                0.0 < float(self.decay) <= 1.0
            ):
                raise SpecError(
                    f"decay must lie in (0, 1], got {self.decay!r}"
                )
            self.decay = float(self.decay)
        self.inner.validate()
        from repro.api.registry import check_deterministic_for_sharding

        # Same reproducibility requirement as sharding: every rotation
        # rebuilds a pane from the spec, and all panes must merge.
        check_deterministic_for_sharding(self.inner)
        return self

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "inner": self.inner.to_dict(),
            "num_panes": self.num_panes,
        }
        if self.pane_items is not None:
            data["pane_items"] = self.pane_items
        if self.decay is not None:
            data["decay"] = self.decay
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WindowedSpec":
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in cls.KINDS:
            raise SpecError(f"not a windowed spec dict (kind={kind!r})")
        inner = data.pop("inner", None)
        if not isinstance(inner, Mapping):
            raise SpecError("windowed spec dict is missing its 'inner' spec dict")
        unknown = sorted(set(data) - {"num_panes", "pane_items", "decay"})
        if unknown:
            raise SpecError(f"unknown windowed parameter(s) {unknown}")
        decay = data.get("decay")
        if kind == "decayed" and decay is None:
            raise SpecError("kind 'decayed' requires a 'decay' factor")
        if kind == "sliding_window" and decay is not None:
            raise SpecError("kind 'sliding_window' must not carry a 'decay'")
        return cls(spec_from_dict(inner), **data)


def spec_from_dict(data: Mapping[str, Any]) -> EstimatorSpec:
    """Rebuild any spec from its :meth:`EstimatorSpec.to_dict` form.

    Dispatches on ``data["kind"]``: ``sharded`` → :class:`ShardedSpec`,
    ``opt_hash`` / ``adaptive_opt_hash`` → :class:`OptHashSpec`, any other
    registered kind → :class:`SketchSpec`.  Raises :class:`SpecError` for
    anything else.
    """
    if isinstance(data, EstimatorSpec):
        return data.validate()
    if not isinstance(data, Mapping):
        raise SpecError(
            f"expected a spec dict, got {type(data).__name__}: {data!r}"
        )
    kind = data.get("kind")
    if not isinstance(kind, str):
        raise SpecError(f"spec dict is missing a string 'kind' entry: {data!r}")
    if kind == "sharded":
        return ShardedSpec.from_dict(data)
    if kind in WindowedSpec.KINDS:
        return WindowedSpec.from_dict(data)
    if kind in ("opt_hash", "adaptive_opt_hash"):
        return OptHashSpec.from_dict(data)
    return SketchSpec.from_dict(data)


def iter_spec_grid(kind: str, **axes) -> Iterator[SketchSpec]:
    """Yield a :class:`SketchSpec` per point of a parameter grid.

    Scalar values are broadcast; list/tuple values become grid axes::

        for spec in iter_spec_grid("count_min", total_buckets=[1024, 8192],
                                   depth=[1, 2, 4], seed=0):
            ...  # 6 specs

    This is the "a paper figure is a spec grid" helper the evaluation
    drivers and examples share.
    """
    names = list(axes)
    pools = [
        list(value) if isinstance(value, (list, tuple)) else [value]
        for value in axes.values()
    ]

    def product(index: int, chosen: Dict[str, Any]) -> Iterator[SketchSpec]:
        if index == len(names):
            yield SketchSpec(kind, **chosen)
            return
        for value in pools[index]:
            chosen[names[index]] = value
            yield from product(index + 1, chosen)
            del chosen[names[index]]

    yield from product(0, {})
