"""repro.api — the declarative estimator API.

One spec-driven entry point for every estimator in the library:

* **Specs** (:mod:`repro.api.specs`): :class:`SketchSpec`,
  :class:`OptHashSpec`, :class:`ShardedSpec` — validated, JSON-safe,
  lossless ``to_dict`` / ``from_dict``.
* **Registry** (:mod:`repro.api.registry`): every estimator class
  self-registers its kind (the same name as its serialization tag);
  :func:`build` constructs any of them from a spec or dict, selecting
  solvers (``bcd`` / ``dp`` / ``milp``) and classifiers (``cart`` /
  ``logreg`` / ``rf``) by name; :func:`train` exposes the full opt-hash
  training result.
* **Sessions** (:mod:`repro.api.session`): :func:`open` → ingest /
  estimate / merge / snapshot; :func:`restore` resumes from a snapshot.

A complete round trip::

    import repro.api as api

    spec = api.SketchSpec("count_min", total_buckets=8192, depth=2, seed=1)
    with api.open(spec) as session:
        session.ingest(keys)
        blob = session.snapshot()
    resumed = api.restore(blob)           # bit-identical for linear sketches
"""

from repro.api.options import Options, resolve_options
from repro.api.specs import (
    EstimatorSpec,
    OptHashSpec,
    ShardedSpec,
    SketchSpec,
    SpecError,
    WindowedSpec,
    iter_spec_grid,
    spec_from_dict,
)
from repro.api.registry import (
    build,
    config_from_spec,
    estimator_class_for,
    kind_exists,
    kind_requires_training,
    kind_supports_backend,
    register_estimator,
    registered_kinds,
    spec_with_backend,
    train,
    validate_spec_params,
)

__all__ = [
    "SpecError",
    "EstimatorSpec",
    "SketchSpec",
    "OptHashSpec",
    "ShardedSpec",
    "WindowedSpec",
    "Options",
    "resolve_options",
    "spec_from_dict",
    "iter_spec_grid",
    "register_estimator",
    "registered_kinds",
    "estimator_class_for",
    "kind_exists",
    "kind_requires_training",
    "kind_supports_backend",
    "spec_with_backend",
    "validate_spec_params",
    "config_from_spec",
    "build",
    "train",
    "Session",
    "load",
    "open",
    "restore",
]

# The Session facade imports repro.core (for the replay loop), which imports
# the sketch modules, which import this package to self-register — so the
# session module must load lazily to keep that chain acyclic.
_SESSION_EXPORTS = ("Session", "load", "open", "restore")


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from repro.api import session as _session

        return getattr(_session, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
