"""repro.api.options — one options bundle for the facade entry points.

``repro.open`` / ``load`` / ``restore`` / ``train`` historically grew
divergent keyword sets (``prefix=``, ``featurizer=``, ``metrics=``, and now
the kernel ``backend=``).  :class:`Options` consolidates them into a single
frozen dataclass accepted by all four::

    opts = repro.Options(prefix=prefix, backend="native")
    with repro.open(spec, options=opts) as session:
        ...

Each entry point consumes the subset of fields that applies to it and raises
:class:`~repro.errors.SpecError` for fields that cannot apply (e.g.
``backend`` on :func:`repro.restore` — a snapshot records its own backend),
so a silently ignored option is impossible.  The legacy keywords keep
working through :func:`resolve_options`, which folds them into an
``Options`` while emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Optional

from repro.errors import SpecError

__all__ = ["Options", "resolve_options"]


#: Which Options fields each facade entry point consumes.  ``restore`` and
#: ``load`` rebuild from a snapshot that already records its spec (and any
#: pinned backend), so only instrumentation applies there.
APPLICABLE_FIELDS = {
    "open": ("prefix", "featurizer", "metrics", "backend"),
    "train": ("prefix", "featurizer", "backend"),
    "restore": ("metrics",),
    "load": ("metrics",),
}


@dataclasses.dataclass(frozen=True)
class Options:
    """Construction-time options shared by the facade entry points.

    Parameters
    ----------
    prefix:
        Observed stream prefix for kinds that run a learning phase
        (``open`` / ``train``).
    featurizer:
        Feature extractor handed to the classifier during training
        (``open`` / ``train``).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` instrumenting the session
        (``open`` / ``restore`` / ``load``).
    backend:
        Kernel backend override (``"auto"`` / ``"numpy"`` / ``"native"`` /
        ``"numba"``) rewritten into the spec before construction, drilling
        through sharded/windowed wrappers (``open`` / ``train``).
    """

    prefix: Optional[object] = None
    featurizer: Optional[Callable] = None
    metrics: Optional[object] = None
    backend: Optional[str] = None

    def set_fields(self) -> tuple:
        """Names of the fields explicitly set (non-None)."""
        return tuple(
            field.name
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        )

    def check_applicable(self, entry_point: str) -> "Options":
        """Raise :class:`SpecError` for set fields ``entry_point`` ignores."""
        allowed = APPLICABLE_FIELDS[entry_point]
        stray = [name for name in self.set_fields() if name not in allowed]
        if stray:
            raise SpecError(
                f"Options field(s) {', '.join(sorted(stray))} do not apply to "
                f"repro.{entry_point}() (it consumes: {', '.join(allowed)})"
            )
        return self

    def replace(self, **changes) -> "Options":
        return dataclasses.replace(self, **changes)


def resolve_options(entry_point: str, options: Optional[Options], **legacy) -> Options:
    """Merge legacy keyword arguments into an :class:`Options` instance.

    ``legacy`` holds the entry point's historical keywords (value ``None``
    when unset).  Passing any of them emits a :class:`DeprecationWarning`
    naming the replacement; combining them with ``options=`` is rejected so
    the two spellings can never disagree about the same field.  The merged
    bundle is validated against the entry point's applicable-field set.
    """
    passed = {name: value for name, value in legacy.items() if value is not None}
    if passed:
        if options is not None:
            raise SpecError(
                f"repro.{entry_point}() got both options= and legacy "
                f"keyword(s) {', '.join(sorted(passed))}; pass everything "
                "through Options"
            )
        rendered = ", ".join(f"{name}=..." for name in sorted(passed))
        warnings.warn(
            f"repro.{entry_point}({rendered}) keywords are deprecated; pass "
            f"options=repro.Options({rendered}) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        options = Options(**passed)
    elif options is None:
        options = Options()
    elif not isinstance(options, Options):
        raise SpecError(
            f"options must be a repro.Options, got {type(options).__name__}"
        )
    return options.check_applicable(entry_point)
