"""The estimator registry: one name space for build *and* loads.

Every estimator class self-registers under a *kind* name with
:func:`register_estimator` (applied in its defining module), declaring the
parameter schema its :class:`~repro.api.specs.SketchSpec` accepts and the
builder that turns validated parameters into an instance.  The kind name is
deliberately the same string as the class's serialization tag
(``@register_sketch``) — registration enforces it — so one name covers the
whole lifecycle: ``build({"kind": "count_min", ...})`` constructs,
``describe()["kind"]`` reports, and ``loads(buf)`` rehydrates through the
identical name, and :func:`repro.sketches.serialization.loads` can
cross-check a buffer's tag against this registry instead of trusting the
tag alone.

:func:`build` is the single construction entry point: it accepts a spec
object or a JSON-safe dict, validates strictly (:class:`SpecError` on any
mismatch), and dispatches to the registered builder.  Specs that need a
learning phase (``opt_hash`` / ``adaptive_opt_hash``) take their training
data through the ``prefix`` / ``featurizer`` context arguments;
:func:`train` exposes the full :class:`~repro.core.pipeline.TrainingResult`
for drivers that inspect solver output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.api.specs import (
    EstimatorSpec,
    OptHashSpec,
    ShardedSpec,
    SketchSpec,
    SpecError,
    WindowedSpec,
    spec_from_dict,
)

__all__ = [
    "register_estimator",
    "registered_kinds",
    "estimator_class_for",
    "kind_exists",
    "kind_requires_training",
    "kind_supports_storage",
    "kind_supports_backend",
    "spec_with_backend",
    "validate_spec_params",
    "check_deterministic_for_sharding",
    "build",
    "train",
    "config_from_spec",
]


class _Entry:
    """One registered estimator kind."""

    __slots__ = (
        "kind",
        "cls",
        "spec_cls",
        "schema",
        "builder",
        "requires_training",
        "seedless",
        "check",
    )

    def __init__(self, kind, cls, spec_cls, schema, builder, requires_training, seedless, check):
        self.kind = kind
        self.cls = cls
        self.spec_cls = spec_cls
        self.schema = schema or {}
        self.builder = builder
        self.requires_training = requires_training
        self.seedless = seedless
        self.check = check


_ENTRIES: Dict[str, _Entry] = {}
_CORE_MODULES_LOADED = False


def _default_builder(cls, spec: SketchSpec, context: dict):
    return cls(**spec.params)


def register_estimator(
    kind: str,
    *,
    schema: Optional[Dict[str, dict]] = None,
    builder: Optional[Callable] = None,
    spec_cls: type = SketchSpec,
    requires_training: bool = False,
    seedless: bool = False,
    check: Optional[Callable[[dict], None]] = None,
):
    """Class decorator registering an estimator kind for :func:`build`.

    Parameters
    ----------
    kind:
        Registry name; must equal the class's serialization tag when the
        class has one (one name space for build + loads).
    schema:
        Parameter schema for :class:`SketchSpec` validation: ``name →
        rule`` where a rule is a dict with ``type`` (``"int"`` / ``"float"``
        / ``"bool"`` / ``"str"`` / ``"list"`` / ``"dict"``) and optional
        ``required`` / ``nullable`` / ``choices`` / ``min``.
    builder:
        ``builder(cls, spec, context) → estimator``; defaults to
        ``cls(**spec.params)``.
    spec_cls:
        Which spec class describes this kind (:class:`SketchSpec` for plain
        sketches, :class:`OptHashSpec` / :class:`ShardedSpec` for the
        structured ones).
    requires_training:
        Whether :func:`build` needs a ``prefix`` context (the opt-hash
        estimators).
    seedless:
        True when construction is deterministic without an explicit seed
        (no internal randomness); such kinds may be sharded seedlessly.
    check:
        Optional cross-field validator ``check(params) → None`` raising
        :class:`SpecError`.
    """

    def decorate(cls: type) -> type:
        serial_tag = getattr(cls, "SERIAL_TAG", None)
        if serial_tag is not None and serial_tag != kind:
            raise ValueError(
                f"estimator kind {kind!r} must match serialization tag "
                f"{serial_tag!r} of {cls.__name__} (one name space covers "
                "build + loads)"
            )
        existing = _ENTRIES.get(kind)
        if existing is not None and existing.cls is not cls:
            raise ValueError(f"estimator kind {kind!r} already registered")
        _ENTRIES[kind] = _Entry(
            kind,
            cls,
            spec_cls,
            schema,
            builder or _default_builder,
            requires_training,
            seedless,
            check,
        )
        cls.ESTIMATOR_KIND = kind
        return cls

    return decorate


def _ensure_registered() -> None:
    """Import the estimator modules once so their decorators have run."""
    global _CORE_MODULES_LOADED
    if _CORE_MODULES_LOADED:
        return
    import repro.sketches  # noqa: F401  (registers the sketch kinds)
    import repro.core  # noqa: F401  (registers opt-hash + sharded)
    import repro.temporal  # noqa: F401  (registers sliding_window + decayed)

    _CORE_MODULES_LOADED = True


def _entry(kind: str) -> _Entry:
    entry = _ENTRIES.get(kind)
    if entry is None:
        _ensure_registered()
        entry = _ENTRIES.get(kind)
    if entry is None:
        raise SpecError(
            f"unknown estimator kind {kind!r}; registered kinds: "
            f"{sorted(_ENTRIES)}"
        )
    return entry


def registered_kinds() -> list:
    """Sorted names of every registered estimator kind."""
    _ensure_registered()
    return sorted(_ENTRIES)


def kind_exists(kind: str) -> bool:
    _ensure_registered()
    return kind in _ENTRIES


def estimator_class_for(kind: str) -> type:
    """The estimator class registered under ``kind`` (SpecError if none)."""
    return _entry(kind).cls


def kind_requires_training(kind: str) -> bool:
    """Whether building ``kind`` runs a learning phase (needs a prefix)."""
    return _entry(kind).requires_training


def kind_supports_storage(kind: str) -> bool:
    """Whether ``kind`` accepts the pluggable counter-storage fields.

    A kind supports storage exactly when its spec schema declares the
    ``storage`` parameter (the table sketches merge
    :data:`repro.core.storage.STORAGE_SCHEMA` into their schemas).
    """
    return "storage" in _entry(kind).schema


def kind_supports_backend(kind: str) -> bool:
    """Whether ``kind`` accepts the pluggable kernel-backend field.

    A kind supports kernel dispatch exactly when its spec schema declares
    the ``backend`` parameter (the kernel-capable sketches merge
    :data:`repro.kernels.BACKEND_SCHEMA` into their schemas); the opt-hash
    kinds declare it on :class:`~repro.api.specs.OptHashSpec` directly.
    """
    if kind in ("opt_hash", "adaptive_opt_hash"):
        return True
    return "backend" in _entry(kind).schema


#: Wrapper spec kinds whose kernel work happens in their inner estimator.
_WRAPPER_KINDS = ("sharded", "sliding_window", "decayed")


def spec_with_backend(spec, backend: str):
    """A copy of ``spec`` with its kernel-backend choice set to ``backend``.

    Wrapper specs (sharded / windowed / decayed) delegate the override to
    their innermost estimator spec, which is where the kernels actually run
    — shard workers and window panes rebuild from that inner spec, so the
    choice travels to every process automatically.  Raises
    :class:`~repro.api.specs.SpecError` when the (innermost) kind has no
    kernel-dispatched hot path.
    """
    from repro.api.specs import spec_from_dict

    data = spec.to_dict()
    node = data
    while node.get("kind") in _WRAPPER_KINDS:
        node = node["inner"]
    kind = node.get("kind")
    if not kind_exists(kind) and kind not in ("opt_hash", "adaptive_opt_hash"):
        raise SpecError(f"unknown estimator kind {kind!r}")
    if not kind_supports_backend(kind):
        raise SpecError(
            f"kind {kind!r} has no kernel-dispatched hot path; "
            "backend= does not apply"
        )
    node["backend"] = backend
    return spec_from_dict(data)


# ----------------------------------------------------------------------
# parameter validation
# ----------------------------------------------------------------------
def _type_ok(value: Any, type_name: str) -> bool:
    if type_name == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "float":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "bool":
        return isinstance(value, bool)
    if type_name == "str":
        return isinstance(value, str)
    if type_name == "list":
        return isinstance(value, list)
    if type_name == "dict":
        return isinstance(value, dict)
    raise ValueError(f"unknown schema type {type_name!r}")  # pragma: no cover


def _validate_value(kind: str, name: str, value: Any, rule: dict) -> None:
    if value is None:
        if rule.get("nullable", False):
            return
        raise SpecError(f"{kind}.{name} must not be None")
    type_name = rule.get("type", "int")
    if not _type_ok(value, type_name):
        raise SpecError(
            f"{kind}.{name} must be of type {type_name}, got "
            f"{type(value).__name__} ({value!r})"
        )
    choices = rule.get("choices")
    if choices is not None and value not in choices:
        raise SpecError(
            f"{kind}.{name} must be one of {tuple(choices)}, got {value!r}"
        )
    minimum = rule.get("min")
    if minimum is not None and value < minimum:
        raise SpecError(f"{kind}.{name} must be >= {minimum}, got {value!r}")


def validate_spec_params(kind: str, params: Mapping[str, Any]) -> None:
    """Validate ``params`` against the schema ``kind`` registered.

    Raises :class:`SpecError` on an unknown kind, a kind that needs a
    structured spec class (opt-hash, sharded), unknown parameter names,
    missing required parameters, or type/range/choice violations.
    """
    entry = _entry(kind)
    if entry.spec_cls is not SketchSpec:
        raise SpecError(
            f"kind {kind!r} is described by {entry.spec_cls.__name__}, not a "
            "plain SketchSpec"
        )
    schema = entry.schema
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise SpecError(
            f"unknown parameter(s) {unknown} for kind {kind!r}; expected a "
            f"subset of {sorted(schema)}"
        )
    for name, rule in schema.items():
        if rule.get("required", False) and name not in params:
            raise SpecError(f"{kind} spec is missing required parameter {name!r}")
        if name in params:
            _validate_value(kind, name, params[name], rule)
    if entry.check is not None:
        entry.check(dict(params))


def check_deterministic_for_sharding(spec: EstimatorSpec) -> None:
    """Reject inner shard specs whose construction is not reproducible.

    Shards (and, in process mode, worker-side blank clones) are built
    independently from the same spec and must be merge-compatible, which
    requires identical hash functions / Bloom filters — i.e. an explicit
    seed for every randomized estimator.
    """
    entry = _entry(spec.kind)
    if entry.seedless:
        return
    seed = getattr(spec, "seed", None)
    if seed is None and isinstance(spec, SketchSpec):
        seed = spec.params.get("seed")
    if seed is None:
        raise SpecError(
            f"sharding over kind {spec.kind!r} requires an explicit seed: "
            "shards are constructed independently from the spec and would "
            "draw different hash functions without one"
        )


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build(
    spec,
    *,
    prefix=None,
    featurizer: Optional[Callable] = None,
):
    """Build any registered estimator from a spec or JSON-safe spec dict.

    ``prefix`` (a :class:`~repro.streams.stream.StreamPrefix`) and
    ``featurizer`` are only consulted by kinds that run a learning phase
    (``opt_hash`` / ``adaptive_opt_hash``, or a ``sharded`` spec wrapping
    one); passing them for other kinds is harmless.

    Raises :class:`SpecError` for malformed specs and for training kinds
    invoked without a prefix.
    """
    spec = spec_from_dict(spec)
    spec.validate()
    entry = _entry(spec.kind)
    inner = getattr(spec, "inner", None)
    if isinstance(inner, WindowedSpec):
        inner = inner.inner  # sharded-over-windowed: the training kind is inside
    needs_training = entry.requires_training or (
        isinstance(spec, (ShardedSpec, WindowedSpec))
        and _entry(inner.kind).requires_training
    )
    if needs_training and prefix is None:
        raise SpecError(
            f"kind {spec.kind!r} runs a learning phase: pass the observed "
            "stream prefix, e.g. build(spec, prefix=prefix)"
        )
    context = {"prefix": prefix, "featurizer": featurizer}
    try:
        return entry.builder(entry.cls, spec, context)
    except SpecError:
        raise
    except (ValueError, TypeError) as error:
        raise SpecError(f"building {spec.kind!r} failed: {error}") from error


def config_from_spec(spec: OptHashSpec):
    """Convert an :class:`OptHashSpec` to the pipeline's ``OptHashConfig``."""
    if not isinstance(spec, OptHashSpec):
        raise SpecError(
            f"expected an OptHashSpec, got {type(spec).__name__}"
        )
    from repro.core.pipeline import OptHashConfig

    return OptHashConfig(
        num_buckets=spec.num_buckets,
        lam=float(spec.lam),
        solver=spec.solver,
        solver_options=dict(spec.solver_options or {}),
        classifier=spec.classifier,
        classifier_options=dict(spec.classifier_options or {}),
        tune_classifier=spec.tune_classifier,
        tuning_grid=spec.tuning_grid,
        tuning_folds=spec.tuning_folds,
        max_stored_elements=spec.max_stored_elements,
        sample_proportional_to_frequency=spec.sample_proportional_to_frequency,
        adaptive=spec.adaptive,
        bloom_bits=spec.bloom_bits,
        expected_distinct=spec.expected_distinct,
        seed=spec.seed,
        backend=spec.backend,
    )


def train(spec, prefix=None, featurizer: Optional[Callable] = None, *, options=None):
    """Run the opt-hash learning phase for a spec; full TrainingResult.

    Accepts an :class:`OptHashSpec` or its dict form.  This is the
    spec-level face of :func:`repro.core.pipeline.train_opt_hash` — the
    evaluation drivers use it when they need the solver result and stored
    arrays, not just the estimator.  The prefix (and optional featurizer /
    kernel ``backend`` override) may travel in ``options``
    (a :class:`~repro.api.options.Options`); the bare ``featurizer=``
    keyword is a deprecated alias.
    """
    from repro.api.options import resolve_options

    opts = resolve_options("train", options, featurizer=featurizer)
    if prefix is not None and opts.prefix is not None:
        raise SpecError(
            "train() got a positional prefix and Options.prefix; pass one"
        )
    if prefix is None:
        prefix = opts.prefix
    spec = spec_from_dict(spec)
    if not isinstance(spec, OptHashSpec):
        raise SpecError(
            f"train() takes an opt-hash spec, got kind {spec.kind!r}"
        )
    if opts.backend is not None:
        spec = spec_with_backend(spec, opts.backend)
    if prefix is None or len(prefix) == 0:
        raise SpecError("train() needs a non-empty observed stream prefix")
    from repro.core.pipeline import train_opt_hash

    return train_opt_hash(prefix, config_from_spec(spec), featurizer=opts.featurizer)
