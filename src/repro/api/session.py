"""The Session facade: one object for ingest / query / merge / snapshot.

``repro.api.open(spec)`` builds the estimator a spec describes and wraps it
in a :class:`Session`, which subsumes the previous per-task entry points —
``replay`` / ``replay_sharded`` for ingestion, ``update_batch`` /
``estimate_batch`` for direct access, ``to_bytes`` + ``loads`` for state
transfer — behind a small uniform API:

    session = repro.api.open(
        {"kind": "count_min", "total_buckets": 8192, "depth": 2, "seed": 1}
    )
    session.ingest(keys)                  # streams, arrays, weighted batches
    estimates = session.estimate(keys)    # float64 array
    blob = session.snapshot()             # spec + estimator state, one buffer
    twin = repro.api.restore(blob)        # picks up exactly where blob left off

Snapshots carry the spec *and* the estimator state in one versioned buffer
(the same wire format the sketches use), so a restored session knows its
own configuration; for linear sketches the restored estimator is
bit-identical to the snapshotted one.  Sharded sessions snapshot per-shard
and restore with their layout (including executor pools) rebuilt from the
spec.
"""

from __future__ import annotations

import builtins
import contextlib
import os
from typing import Callable, Optional, Union

import numpy as np

from repro.api.options import Options, resolve_options
from repro.api.registry import build, train  # noqa: F401  (train re-exported)
from repro.api.specs import EstimatorSpec, SpecError, spec_from_dict
from repro.obs import MetricsRegistry
from repro.sketches.serialization import (
    SerializationError,
    loads as _loads,
    pack,
    register_sketch,
    unpack,
)

__all__ = ["Session", "atomic_write", "load", "open", "restore"]

_SESSION_TAG = "session"


def atomic_write(path, blob: bytes) -> None:
    """Durably replace ``path`` with ``blob`` (temp file + fsync + rename).

    The temp file is fsynced before the rename and the parent directory is
    fsynced after it, so after this returns the new contents survive a power
    cut — not just a process crash.  A crash at any point leaves ``path``
    holding either the previous contents or the complete new ones, never a
    truncated mix.
    """
    from repro.resilience import failpoints

    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with builtins.open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        failpoints.fire("session.save")
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    parent = os.path.dirname(path) or "."
    dir_fd = os.open(parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


@register_sketch(_SESSION_TAG)
class Session:
    """A live estimator plus the spec that built it.

    Construct through :func:`open` (or :func:`restore`); the raw estimator
    stays reachable through :attr:`estimator` for APIs the facade does not
    cover (e.g. ``heavy_hitters()`` on the counter summaries).
    """

    def __init__(
        self,
        spec: EstimatorSpec,
        estimator,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._spec = spec
        self._estimator = estimator
        #: JSON-safe sidecar state carried inside snapshots (e.g. the WAL
        #: coverage marks the service embeds); populated by ``from_bytes``.
        self.extra_state: dict = {}
        self._metrics: Optional[MetricsRegistry] = None
        self._m_stage = None
        if metrics is not None:
            self.instrument(metrics)

    def instrument(self, metrics: MetricsRegistry) -> "Session":
        """Record per-stage timings (and the estimator's own metrics) here.

        Registers ``repro_session_stage_seconds{stage=...}`` and cascades to
        the estimator's ``instrument()`` when it has one (the sharded
        estimator forwards further to its worker pool), so one registry
        observes the whole tree.  Instrumentation is opt-in: an
        un-instrumented session has zero overhead on the ingest path.
        """
        self._metrics = metrics
        self._m_stage = metrics.histogram(
            "repro_session_stage_seconds",
            "Session stage latency (ingest/estimate/drain/snapshot).",
            labels=("stage",),
        )
        cascade = getattr(self._estimator, "instrument", None)
        if cascade is not None:
            cascade(metrics)
        return self

    def _timed(self, stage: str):
        if self._m_stage is None:
            return contextlib.nullcontext()
        return self._m_stage.labels(stage=stage).time()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> EstimatorSpec:
        return self._spec

    @property
    def estimator(self):
        return self._estimator

    @property
    def kind(self) -> str:
        return self._spec.kind

    @property
    def size_bytes(self) -> int:
        return int(self._estimator.size_bytes)

    def describe(self) -> dict:
        """The estimator's :meth:`describe` plus the originating spec."""
        info = self._estimator.describe()
        info["spec"] = self._spec.to_dict()
        return info

    def __repr__(self) -> str:
        return f"Session({self._spec!r}, size_bytes={self.size_bytes})"

    # ------------------------------------------------------------------
    # ingestion / queries
    # ------------------------------------------------------------------
    def ingest(self, keys, counts=None, batch_size: Optional[int] = None) -> int:
        """Stream arrivals through the estimator's batch path, chunked.

        ``keys`` may be a :class:`~repro.streams.stream.Stream`, a NumPy
        array of raw keys, or any sequence of keys/elements; ``counts``
        optionally weights each key.  Returns the number of arrivals
        processed (positions, not the weighted total).  This subsumes
        ``repro.core.pipeline.replay`` — same chunking, same fast paths.
        """
        from repro.core.pipeline import DEFAULT_REPLAY_BATCH_SIZE, replay

        self._require_capability("update_batch", "ingest")
        if batch_size is None:
            batch_size = DEFAULT_REPLAY_BATCH_SIZE
        with self._timed("ingest"):
            if counts is None:
                return replay(
                    self._estimator,
                    keys,
                    batch_size=batch_size,
                    metrics=self._metrics,
                )
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")
            items = keys if isinstance(keys, np.ndarray) else list(keys)
            count_array = np.asarray(counts, dtype=np.int64)
            if count_array.shape != (len(items),):
                raise ValueError("counts must align one-to-one with keys")
            for start in range(0, len(items), batch_size):
                self._estimator.update_batch(
                    items[start : start + batch_size],
                    count_array[start : start + batch_size],
                )
            return len(items)

    def _require_capability(self, method: str, operation: str) -> None:
        """Typed error for kinds outside the frequency-estimator protocol.

        ``bloom`` (membership only) and ``ams`` (second-moment queries only)
        are buildable kinds but do not speak the full ingest/estimate
        protocol; surfacing a :class:`SpecError` here keeps the facade's
        typed-error contract instead of leaking an ``AttributeError``.
        """
        if not hasattr(self._estimator, method):
            raise SpecError(
                f"kind {self.kind!r} does not support Session.{operation}(): "
                f"{type(self._estimator).__name__} has no {method}(); use its "
                "native API via session.estimator"
            )

    def estimate(self, keys) -> np.ndarray:
        """Vectorized point queries: a float64 array aligned with ``keys``."""
        self._require_capability("estimate_batch", "estimate")
        with self._timed("estimate"):
            return self._estimator.estimate_batch(keys)

    def estimate_key(self, key) -> float:
        """Point query for a single raw key."""
        return float(self.estimate([key])[0])

    # ------------------------------------------------------------------
    # merge / snapshot
    # ------------------------------------------------------------------
    def merge(self, other: Union["Session", object]) -> "Session":
        """Fold another session's (or bare estimator's) state into this one."""
        estimator = other.estimator if isinstance(other, Session) else other
        self._estimator.merge(estimator)
        return self

    def snapshot(
        self,
        *,
        embed: Optional[bool] = None,
        extra_state: Optional[dict] = None,
    ) -> bytes:
        """Serialize spec + estimator state into one versioned buffer.

        ``extra_state`` — extra JSON-safe keys packed alongside ``"spec"``
        (and surfaced as :attr:`extra_state` on restore).  The service uses
        this to embed the WAL positions a snapshot covers *inside* the
        snapshot itself, so coverage and state can never disagree after a
        crash between the two writes.

        For mmap-backed estimators the default snapshot is *live*: the
        counter table is flushed and referenced by path instead of being
        copied into the buffer — O(1) in the table size — and ``restore``
        reattaches the file in place.  A live snapshot is a recovery
        sidecar, **not** a point-in-time copy: later ingestion keeps
        mutating the file it references, and restoring it aliases the same
        pages the session writes.  For a frozen, portable checkpoint of an
        mmap session pass ``embed=True``; ``embed=False`` demands the
        zero-copy form (raises :class:`SerializationError` for non-mmap
        estimators).

        Raises :class:`SerializationError` for estimators without a binary
        form (the trained opt-hash estimators wrap an arbitrary classifier).
        """
        to_bytes = getattr(self._estimator, "to_bytes", None)
        if to_bytes is None:
            raise SerializationError(
                f"estimator kind {self.kind!r} has no binary serialization; "
                "snapshot() is unavailable for it"
            )
        backend = getattr(self._estimator, "storage_backend", "dense")
        if embed is None:
            embed = backend != "mmap"
        if not embed and backend != "mmap":
            raise SerializationError(
                "zero-copy (embed=False) snapshots require an mmap-backed "
                f"estimator; this one uses {backend!r} storage"
            )
        blob = to_bytes() if embed else to_bytes(live=True)
        state = {"spec": self._spec.to_dict()}
        if extra_state:
            for key in extra_state:
                if key == "spec":
                    raise SerializationError(
                        "extra_state may not shadow the 'spec' key"
                    )
            state.update(extra_state)
        return pack(
            _SESSION_TAG,
            state,
            {"estimator": np.frombuffer(blob, dtype=np.uint8)},
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Session":
        """Rehydrate a :meth:`snapshot` buffer (also used by ``loads``)."""
        _, state, arrays = unpack(data, expect_tag=_SESSION_TAG)
        spec_dict = state.get("spec")
        if not isinstance(spec_dict, dict):
            raise SerializationError("session buffer is missing its spec")
        try:
            spec = spec_from_dict(spec_dict)
        except SpecError as error:
            raise SerializationError(
                f"session buffer holds an invalid spec: {error}"
            ) from error
        if "estimator" not in arrays:
            raise SerializationError("session buffer is missing estimator state")
        estimator = _loads(arrays["estimator"].tobytes(), expect_kind=spec.kind)
        session = cls(spec, estimator)
        session.extra_state = {
            key: value for key, value in state.items() if key != "spec"
        }
        return session

    def to_bytes(self) -> bytes:
        """Alias of :meth:`snapshot` (estimator-style serialization API)."""
        return self.snapshot()

    def drain(self) -> "Session":
        """Block until every in-flight ingestion batch is in shard state.

        Sharded estimators with a process executor ingest asynchronously
        (bounded backlog, lazy drain); this forces the consistency point —
        after it returns, :meth:`estimate` and :meth:`snapshot` reflect
        every batch previously passed to :meth:`ingest`.  A shard worker
        that died mid-stream raises here instead of hanging.  No-op for
        synchronous estimators.
        """
        drain = getattr(self._estimator, "drain", None)
        if drain is not None:
            with self._timed("drain"):
                drain()
        return self

    def save(
        self,
        path,
        *,
        embed: Optional[bool] = None,
        extra_state: Optional[dict] = None,
    ) -> int:
        """Drain, :meth:`snapshot`, and write the buffer to ``path``.

        The write is durable and atomic (:func:`atomic_write`: temp file,
        fsync, ``os.replace``, directory fsync), so a crash — or a SIGTERM
        racing the shutdown snapshot, or a power cut right after — can never
        leave a truncated or unpersisted snapshot behind: ``path`` either
        holds the previous snapshot or the complete new one.  Returns the
        number of bytes written.
        """
        self.drain()
        with self._timed("snapshot"):
            blob = self.snapshot(embed=embed, extra_state=extra_state)
            atomic_write(path, blob)
        return len(blob)

    def hot_swap(self, spec, estimator, *, close_old: bool = True):
        """Replace the live estimator (and its spec) in place; returns the old.

        This is the session half of online re-optimization (see
        :mod:`repro.temporal.reopt`): a freshly trained estimator takes
        over while the session object — and every reference callers hold
        to it — stays valid.  The new estimator inherits the session's
        instrumentation.  With ``close_old=False`` the previous estimator
        is returned still-live (not closed) so the caller can audit or
        archive it; otherwise its pools/storage are released first.
        """
        spec = spec_from_dict(spec)
        old = self._estimator
        self._spec = spec
        self._estimator = estimator
        if self._metrics is not None:
            cascade = getattr(estimator, "instrument", None)
            if cascade is not None:
                cascade(self._metrics)
        if close_old:
            close = getattr(old, "close", None)
            if close is not None:
                close()
        return old

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor pools (no-op for unsharded estimators)."""
        close = getattr(self._estimator, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open(
    spec,
    *,
    options: Optional[Options] = None,
    prefix=None,
    featurizer: Optional[Callable] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Session:
    """Build the estimator ``spec`` describes and wrap it in a Session.

    ``spec`` may be any :class:`~repro.api.specs.EstimatorSpec` or its
    JSON-safe dict form.  Construction options travel in ``options``
    (a :class:`~repro.api.options.Options`): the observed ``prefix`` (and
    optional ``featurizer``) for training kinds, ``metrics`` to instrument
    the session (see :meth:`Session.instrument`), and ``backend`` to
    override the spec's kernel backend.  The bare ``prefix=`` /
    ``featurizer=`` / ``metrics=`` keywords are deprecated aliases.
    """
    opts = resolve_options(
        "open", options, prefix=prefix, featurizer=featurizer, metrics=metrics
    )
    spec = spec_from_dict(spec)
    if opts.backend is not None:
        from repro.api.registry import spec_with_backend

        spec = spec_with_backend(spec, opts.backend)
    return Session(
        spec,
        build(spec, prefix=opts.prefix, featurizer=opts.featurizer),
        metrics=opts.metrics,
    )


def restore(
    data: bytes,
    *,
    options: Optional[Options] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Session:
    """Rebuild a session from a :meth:`Session.snapshot` buffer.

    Only ``Options.metrics`` applies here — the snapshot records its own
    spec (including any pinned kernel backend).  ``metrics=`` is the
    deprecated alias.
    """
    opts = resolve_options("restore", options, metrics=metrics)
    session = Session.from_bytes(data)
    if opts.metrics is not None:
        session.instrument(opts.metrics)
    return session


def load(
    path,
    *,
    options: Optional[Options] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Session:
    """Rebuild a session from a :meth:`Session.save` file.

    Accepts the same options as :func:`restore`.
    """
    opts = resolve_options("load", options, metrics=metrics)
    with builtins.open(os.fspath(path), "rb") as handle:
        return restore(handle.read(), options=opts)
